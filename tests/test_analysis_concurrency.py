"""Tests for the concurrency lint pass: REP010, REP011, REP012."""

import textwrap

from repro.analysis import LintEngine
from repro.analysis.concurrency import (
    DEFAULT_SEED_EDGES,
    LockOrderRule,
    build_class_model,
)
import ast


def lint(source, select, is_test=False, **engine_kwargs):
    engine = LintEngine(select=select, **engine_kwargs)
    return engine.lint_source(
        textwrap.dedent(source), path="snippet.py", is_test=is_test
    )


class TestGuardedAttribute:
    def test_unguarded_read_of_guarded_attribute_flagged(self):
        violations = lint(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def peek(self):
                    return self._count
            """,
            select=["REP010"],
        )
        assert len(violations) == 1
        assert "Counter._count" in violations[0].message
        assert "peek()" in violations[0].message

    def test_consistently_guarded_class_is_clean(self):
        violations = lint(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def peek(self):
                    with self._lock:
                        return self._count
            """,
            select=["REP010"],
        )
        assert violations == []

    def test_init_writes_do_not_establish_guards(self):
        violations = lint(
            """
            import threading

            class Config:
                def __init__(self):
                    self._lock = threading.Lock()
                    with self._lock:
                        self._name = "x"

                def name(self):
                    return self._name
            """,
            select=["REP010"],
        )
        assert violations == []

    def test_locked_suffix_helper_without_call_sites_is_trusted(self):
        violations = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    with self._lock:
                        self._items.append(item)

                def _drain_locked(self):
                    out = list(self._items)
                    self._items = []
                    return out
            """,
            select=["REP010"],
        )
        assert violations == []

    def test_locked_helper_called_without_lock_is_flagged(self):
        violations = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    with self._lock:
                        self._items.append(item)

                def drain(self):
                    return self._drain_locked()

                def _drain_locked(self):
                    out = list(self._items)
                    self._items = []
                    return out
            """,
            select=["REP010"],
        )
        assert violations
        assert all("_drain_locked()" in v.message for v in violations)

    def test_named_lock_factory_recognized(self):
        violations = lint(
            """
            from repro.locks import named_lock

            class Counter:
                def __init__(self):
                    self._lock = named_lock("test.counter")
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def peek(self):
                    return self._count
            """,
            select=["REP010"],
        )
        assert len(violations) == 1

    def test_nested_function_body_not_credited_with_outer_lock(self):
        violations = lint(
            """
            import threading

            class Sched:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = []

                def submit(self, job):
                    with self._lock:
                        self._jobs.append(job)

                def deferred(self):
                    with self._lock:
                        def later():
                            self._jobs.pop()
                        return later
            """,
            select=["REP010"],
        )
        assert len(violations) == 1
        assert "later" not in violations[0].message  # anchored on the access
        assert "deferred()" in violations[0].message

    def test_wait_for_predicate_runs_with_condition_lock(self):
        violations = lint(
            """
            import threading

            class Queue:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._items = []

                def put(self, item):
                    with self._cond:
                        self._items.append(item)
                        self._cond.notify()

                def get(self, timeout):
                    with self._cond:
                        self._cond.wait_for(lambda: self._items, timeout)
                        return self._items.pop()
            """,
            select=["REP010"],
        )
        assert violations == []

    def test_noqa_suppresses(self):
        violations = lint(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def peek(self):
                    return self._count  # repro: noqa[REP010] -- racy read ok
            """,
            select=["REP010"],
        )
        assert violations == []

    def test_test_files_exempt(self):
        violations = lint(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def peek(self):
                    return self._count
            """,
            select=["REP010"],
            is_test=True,
        )
        assert violations == []


class TestBlockingUnderLock:
    def _one(self, body, select=("REP011",)):
        return lint(body, select=list(select))

    def test_sleep_under_lock_flagged(self):
        violations = self._one(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def poll(self):
                    with self._lock:
                        time.sleep(0.1)
            """
        )
        assert len(violations) == 1
        assert "self._lock" in violations[0].message

    def test_open_under_lock_flagged(self):
        violations = self._one(
            """
            import threading

            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()

                def dump(self, path, data):
                    with self._lock:
                        with open(path, "w") as fh:
                            fh.write(data)
            """
        )
        assert len(violations) == 1

    def test_future_result_under_lock_flagged(self):
        violations = self._one(
            """
            import threading

            class Gather:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait_all(self, futures):
                    with self._lock:
                        return [f.result() for f in futures]
            """
        )
        assert len(violations) == 1

    def test_untimed_wait_flagged_but_timed_ok(self):
        flagged = self._one(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._event = threading.Event()

                def block(self):
                    with self._lock:
                        self._event.wait()
            """
        )
        assert len(flagged) == 1
        clean = self._one(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._event = threading.Event()

                def block(self):
                    with self._lock:
                        self._event.wait(1.0)
            """
        )
        assert clean == []

    def test_condition_wait_on_own_lock_not_flagged(self):
        violations = self._one(
            """
            import threading

            class Queue:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._items = []

                def get(self):
                    with self._cond:
                        while not self._items:
                            self._cond.wait(0.5)
                        return self._items.pop()
            """
        )
        assert violations == []

    def test_interprocedural_helper_blocking_flagged_at_call_site(self):
        violations = self._one(
            """
            import threading
            import os

            class Journal:
                def __init__(self):
                    self._lock = threading.Lock()

                def commit(self):
                    with self._lock:
                        self._sync()

                def _sync(self):
                    os.fsync(3)
            """
        )
        assert len(violations) == 1
        assert "self._sync()" in violations[0].message

    def test_blocking_outside_lock_is_clean(self):
        violations = self._one(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def poll(self):
                    time.sleep(0.1)
                    with self._lock:
                        pass
            """
        )
        assert violations == []

    def test_noqa_suppresses(self):
        violations = self._one(
            """
            import threading
            import os

            class Journal:
                def __init__(self):
                    self._lock = threading.Lock()

                def commit(self):
                    with self._lock:
                        os.fsync(3)  # repro: noqa[REP011] -- WAL ordering
            """
        )
        assert violations == []


class TestLockOrder:
    def test_single_file_cycle_detected(self):
        violations = lint(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            select=["REP012"],
        )
        assert len(violations) == 1
        assert "lock-order cycle" in violations[0].message
        assert "Pair._a" in violations[0].message
        assert "Pair._b" in violations[0].message

    def test_consistent_order_is_clean(self):
        violations = lint(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
            """,
            select=["REP012"],
        )
        assert violations == []

    def test_cross_file_cycle_via_annotated_attribute(self, tmp_path):
        (tmp_path / "shard.py").write_text(
            textwrap.dedent(
                """
                import threading

                class Shard:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def ping(self):
                        with self._lock:
                            pass
                """
            ),
            encoding="utf-8",
        )
        (tmp_path / "router.py").write_text(
            textwrap.dedent(
                """
                import threading
                from shard import Shard

                class Router:
                    def __init__(self, shard: Shard):
                        self._lock = threading.Lock()
                        self._shard = shard

                    def route(self):
                        with self._lock:
                            self._shard.ping()
                """
            ),
            encoding="utf-8",
        )
        rule = LockOrderRule(
            seed_edges=(("Shard._lock", "Router._lock"),)
        )
        engine = LintEngine(rules=[rule])
        violations = engine.lint_paths([str(tmp_path)])
        assert len(violations) == 1
        assert "Router._lock" in violations[0].message
        assert "Shard._lock" in violations[0].message
        # The inferred half of the cycle carries a real source location.
        assert violations[0].path.endswith("router.py")

    def test_seed_only_cycle_anchors_at_sentinel_path(self):
        rule = LockOrderRule(
            seed_edges=(("A.x", "B.y"), ("B.y", "A.x"))
        )
        engine = LintEngine(rules=[rule])
        violations = engine.lint_source("", path="empty.py")
        assert len(violations) == 1
        assert violations[0].path == "<lock-order-seeds>"

    def test_default_seed_edges_are_acyclic(self):
        rule = LockOrderRule()
        assert rule.seed_edges == DEFAULT_SEED_EDGES
        engine = LintEngine(rules=[rule])
        assert engine.lint_source("", path="empty.py") == []

    def test_edges_exposes_merged_graph(self):
        rule = LockOrderRule(seed_edges=())
        engine = LintEngine(rules=[rule])
        engine.lint_source(
            textwrap.dedent(
                """
                import threading

                class Pair:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def forward(self):
                        with self._a:
                            with self._b:
                                pass
                """
            ),
            path="pair.py",
        )
        edges = rule.edges()
        assert ("Pair._a", "Pair._b") in edges
        path, line = edges[("Pair._a", "Pair._b")]
        assert path == "pair.py"
        assert line > 0


class TestClassModel:
    def test_model_identifies_locks_and_attr_types(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                import threading
                from repro.locks import named_condition

                class Engine:
                    def __init__(self, store: "Store"):
                        self._lock = threading.Lock()
                        self._cond = named_condition("q")
                        self._store = store
                        self._depth = 0
                """
            )
        )
        classdef = next(
            n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)
        )
        model = build_class_model(classdef)
        assert set(model.locks) == {"_lock", "_cond"}
        assert model.locks["_cond"] == "condition"
        assert "Store" in model.attr_types.get("_store", ())


class TestShippedTree:
    def test_src_tree_has_no_concurrency_findings(self):
        engine = LintEngine(select=["REP010", "REP011", "REP012"])
        violations = engine.lint_paths(["src"])
        assert violations == []
