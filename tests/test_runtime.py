"""Unit tests for the runtime layer: metrics registry and design cache."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.runtime import (
    DesignMatrixCache,
    MetricsRegistry,
    design_cache,
    disable_design_cache,
    fingerprint_array,
    format_snapshot,
    set_design_cache,
    snapshot_delta,
)


class TestMetricsRegistry:
    def test_counter_starts_at_zero(self):
        registry = MetricsRegistry()
        assert registry.count("nope") == 0

    def test_increment_accumulates(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.increment("a", 4)
        assert registry.count("a") == 5

    def test_timer_accumulates_calls(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.timer("t"):
                pass
        stat = registry.timer_stat("t")
        assert stat.calls == 3
        assert stat.seconds >= 0.0

    def test_timer_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.timer("t"):
                raise RuntimeError("boom")
        assert registry.timer_stat("t").calls == 1

    def test_snapshot_flattens_timers(self):
        registry = MetricsRegistry()
        registry.increment("c", 2)
        with registry.timer("t"):
            pass
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["t.calls"] == 1
        assert "t.seconds" in snap

    def test_reset(self):
        registry = MetricsRegistry()
        registry.increment("c")
        with registry.timer("t"):
            pass
        registry.reset()
        assert registry.snapshot() == {}

    def test_snapshot_delta_drops_unchanged(self):
        before = {"a": 1, "b": 2.0}
        after = {"a": 1, "b": 5.0, "c": 3}
        assert snapshot_delta(before, after) == {"b": 3.0, "c": 3}

    def test_format_snapshot(self):
        text = format_snapshot({"x.seconds": 0.5, "y": 3})
        assert "x.seconds" in text and "0.5000" in text and "3" in text
        assert format_snapshot({}).endswith("(none)")


class TestFingerprint:
    def test_same_values_same_fingerprint(self):
        a = np.arange(12, dtype=float).reshape(3, 4)
        b = a.copy()
        assert fingerprint_array(a) == fingerprint_array(b)

    def test_different_values_differ(self):
        a = np.zeros((3, 4))
        b = np.zeros((3, 4))
        b[0, 0] = 1e-300
        assert fingerprint_array(a) != fingerprint_array(b)

    def test_shape_distinguished(self):
        a = np.zeros(12)
        b = np.zeros((3, 4))
        assert fingerprint_array(a) != fingerprint_array(b)


class TestDesignMatrixCache:
    def make_cache(self, **kwargs):
        kwargs.setdefault("min_result_cells", 1)
        return DesignMatrixCache(**kwargs)

    def test_miss_then_hit(self):
        cache = self.make_cache()
        calls = []

        def compute():
            calls.append(1)
            return np.ones((8, 8))

        first = cache.get_or_compute(("k",), compute)
        second = cache.get_or_compute(("k",), compute)
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert np.array_equal(first, second)

    def test_cached_array_is_read_only(self):
        cache = self.make_cache()
        result = cache.get_or_compute(("k",), lambda: np.ones((4, 4)))
        with pytest.raises(ValueError):
            result[0, 0] = 2.0

    def test_small_results_not_stored(self):
        cache = DesignMatrixCache(min_result_cells=1000)
        result = cache.get_or_compute(("k",), lambda: np.ones((2, 2)))
        assert len(cache) == 0
        # Un-stored results stay writable.
        result[0, 0] = 5.0

    def test_lru_eviction_by_count(self):
        cache = self.make_cache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get_or_compute((key,), lambda: np.ones((4, 4)))
        assert len(cache) == 2
        assert cache.evictions == 1
        # "a" was evicted; "b" and "c" still hit.
        cache.get_or_compute(("b",), lambda: np.ones((4, 4)))
        assert cache.hits == 1

    def test_eviction_by_bytes(self):
        one_entry = np.ones((8, 8)).nbytes
        cache = self.make_cache(max_bytes=int(one_entry * 1.5))
        cache.get_or_compute(("a",), lambda: np.ones((8, 8)))
        cache.get_or_compute(("b",), lambda: np.ones((8, 8)))
        assert len(cache) == 1
        assert cache.nbytes == one_entry

    def test_oversized_result_computed_but_not_stored(self):
        cache = self.make_cache(max_bytes=64)
        result = cache.get_or_compute(("big",), lambda: np.ones((8, 8)))
        assert result.shape == (8, 8)
        assert len(cache) == 0

    def test_clear(self):
        cache = self.make_cache()
        cache.get_or_compute(("a",), lambda: np.ones((4, 4)))
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0

    def test_global_cache_swap_and_disable(self):
        replacement = DesignMatrixCache()
        previous = set_design_cache(replacement)
        try:
            assert design_cache() is replacement
            removed = disable_design_cache()
            assert removed is replacement
            assert design_cache() is None
        finally:
            set_design_cache(previous)


class TestDesignMatrixCaching:
    """Integration of the cache with OrthonormalBasis.design_matrix."""

    @pytest.fixture()
    def fresh_cache(self):
        cache = DesignMatrixCache(min_result_cells=1)
        previous = set_design_cache(cache)
        yield cache
        set_design_cache(previous)

    def test_repeated_assembly_hits(self, rng, fresh_cache):
        basis = OrthonormalBasis.total_degree(3, 2)
        x = rng.standard_normal((50, 3))
        first = basis.design_matrix(x)
        second = basis.design_matrix(x)
        assert fresh_cache.hits == 1 and fresh_cache.misses == 1
        assert second is first

    def test_equal_basis_instances_share_entries(self, rng, fresh_cache):
        x = rng.standard_normal((30, 2))
        OrthonormalBasis.total_degree(2, 2).design_matrix(x)
        OrthonormalBasis.total_degree(2, 2).design_matrix(x)
        assert fresh_cache.hits == 1

    def test_different_samples_miss(self, rng, fresh_cache):
        basis = OrthonormalBasis.total_degree(2, 2)
        basis.design_matrix(rng.standard_normal((20, 2)))
        basis.design_matrix(rng.standard_normal((20, 2)))
        assert fresh_cache.hits == 0 and fresh_cache.misses == 2

    def test_column_subset_keyed_separately(self, rng, fresh_cache):
        basis = OrthonormalBasis.total_degree(2, 2)
        x = rng.standard_normal((20, 2))
        full = basis.design_matrix(x)
        subset = basis.design_matrix(x, columns=[0, 2])
        assert np.allclose(subset, full[:, [0, 2]])
        assert fresh_cache.misses == 2

    def test_disabled_cache_still_correct(self, rng):
        previous = set_design_cache(None)
        try:
            basis = OrthonormalBasis.total_degree(2, 2)
            x = rng.standard_normal((25, 2))
            first = basis.design_matrix(x)
            second = basis.design_matrix(x)
            assert first is not second
            assert np.allclose(first, second)
        finally:
            set_design_cache(previous)
