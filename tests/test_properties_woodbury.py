"""Property-based tests for the incremental Woodbury machinery.

Two hundred-plus seeded random configurations drive the rank-k kernel
extension (`KernelMapSolver.extended`) and the bordered Cholesky update
(`CholeskyFactor.append`) against the conventional dense MAP solver
(`map_estimate(..., solver="direct")`), including the missing-prior
(scale = inf) and pinned-prior (scale = 0) sentinel edge cases.
"""

import numpy as np
import pytest

from repro.bmf import GaussianCoefficientPrior, KernelMapSolver, map_estimate
from repro.linalg import CholeskyFactor, SolverError, extend_gram_kernel, gram_kernel

REL_TOL = 1e-8
NUM_CASES = 220


def random_config(seed):
    """One randomized problem: sizes, design, target, prior, eta.

    The seed index deterministically selects the prior flavor so the
    parametrized sweep covers plain, missing-prior (inf scale), pinned
    (zero scale), and mixed configurations.
    """
    rng = np.random.default_rng(900_000 + seed)
    num_old = int(rng.integers(4, 28))
    num_new = int(rng.integers(1, 9))
    num_terms = int(rng.integers(6, 48))
    design = rng.standard_normal((num_old + num_new, num_terms))
    mean = rng.standard_normal(num_terms)
    scale = np.abs(rng.standard_normal(num_terms)) + 0.1
    flavor = seed % 4
    if flavor in (1, 3) and num_terms >= 3:
        missing = rng.choice(num_terms, size=max(1, num_terms // 5), replace=False)
        scale[missing] = np.inf
    if flavor in (2, 3) and num_terms >= 3:
        finite = np.flatnonzero(np.isfinite(scale))
        pinned = rng.choice(finite, size=max(1, finite.size // 6), replace=False)
        scale[pinned] = 0.0
    prior = GaussianCoefficientPrior(mean, scale, name=f"case-{seed}")
    coeffs = rng.standard_normal(num_terms)
    target = design @ coeffs + 0.01 * rng.standard_normal(num_old + num_new)
    eta = float(10.0 ** rng.uniform(-3, 1))
    # A moderate missing-prior stand-in scale keeps the system conditioning
    # comparable between the kernel and dense paths; the default (1e3 x the
    # largest finite scale) is exercised separately by the BMF suites.
    missing_scale = float(10.0 ** rng.uniform(0.5, 1.5))
    return num_old, design, target, prior, eta, missing_scale


def relative_difference(a, b):
    norm = max(float(np.linalg.norm(b)), 1e-300)
    return float(np.linalg.norm(a - b)) / norm


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_incremental_map_matches_direct_dense_solve(seed):
    """extended() + solve() == the conventional M x M MAP solve."""
    num_old, design, target, prior, eta, missing_scale = random_config(seed)
    base = KernelMapSolver(design[:num_old], target[:num_old], prior, missing_scale)
    grown = base.extended(design[num_old:], target[num_old:])
    incremental = grown.solve(eta)
    direct = map_estimate(
        design, target, prior, eta, solver="direct", missing_scale=missing_scale
    )
    assert relative_difference(incremental, direct) <= REL_TOL


@pytest.mark.parametrize("seed", range(0, NUM_CASES, 5))
def test_chained_extensions_match_direct(seed):
    """Growing one row at a time stays exact, not just one big extension."""
    num_old, design, target, prior, eta, missing_scale = random_config(seed)
    solver = KernelMapSolver(design[:num_old], target[:num_old], prior, missing_scale)
    for row in range(num_old, design.shape[0]):
        solver = solver.extended(design[row : row + 1], target[row : row + 1])
    direct = map_estimate(
        design, target, prior, eta, solver="direct", missing_scale=missing_scale
    )
    assert relative_difference(solver.solve(eta), direct) <= REL_TOL


@pytest.mark.parametrize("seed", range(0, NUM_CASES, 4))
def test_extended_kernel_matches_fresh_kernel(seed):
    num_old, design, _, prior, _, missing_scale = random_config(seed)
    scale_sq = prior.effective_scale(missing_scale) ** 2
    fresh = gram_kernel(design, scale_sq)
    extended = extend_gram_kernel(
        gram_kernel(design[:num_old], scale_sq), design[:num_old], design[num_old:],
        scale_sq,
    )
    assert np.allclose(extended, fresh, rtol=1e-12, atol=1e-12)
    # Deterministic mode is *bitwise* reproducible across blockings.
    fresh_det = gram_kernel(design, scale_sq, deterministic=True)
    extended_det = extend_gram_kernel(
        gram_kernel(design[:num_old], scale_sq, deterministic=True),
        design[:num_old],
        design[num_old:],
        scale_sq,
        deterministic=True,
    )
    assert np.array_equal(extended_det, fresh_det)


@pytest.mark.parametrize("seed", range(0, NUM_CASES, 4))
def test_cholesky_border_append_matches_fresh_factorization(seed):
    rng = np.random.default_rng(7_000_000 + seed)
    old = int(rng.integers(3, 20))
    extra = int(rng.integers(1, 6))
    root = rng.standard_normal((old + extra, old + extra))
    matrix = root @ root.T + (old + extra) * np.eye(old + extra)
    factor = CholeskyFactor(matrix[:old, :old])
    factor.append(matrix[:old, old:], matrix[old:, old:])
    assert factor.size == old + extra
    rhs = rng.standard_normal(old + extra)
    assert np.allclose(factor.solve(rhs), np.linalg.solve(matrix, rhs))
    fresh = CholeskyFactor(matrix)
    assert np.allclose(factor.lower, fresh.lower)


def test_cholesky_append_scalar_promotion():
    matrix = np.array([[4.0, 1.0, 0.5], [1.0, 3.0, 0.2], [0.5, 0.2, 2.0]])
    factor = CholeskyFactor(matrix[:2, :2])
    factor.append(matrix[:2, 2], matrix[2, 2])  # 1-D cross, scalar corner
    rhs = np.array([1.0, -2.0, 0.5])
    assert np.allclose(factor.solve(rhs), np.linalg.solve(matrix, rhs))


def test_cholesky_append_rejects_degenerate_schur():
    """Appending a linearly dependent row trips the conditioning guard."""
    rng = np.random.default_rng(42)
    design = rng.standard_normal((6, 10))
    kernel = gram_kernel(design)
    factor = CholeskyFactor(kernel)
    # A duplicated sample row makes the Schur complement (numerically) zero.
    duplicated = extend_gram_kernel(kernel, design, design[:1])
    with pytest.raises(SolverError):
        factor.append(duplicated[:6, 6:], duplicated[6:, 6:])


def test_cholesky_rejects_indefinite_input():
    with pytest.raises(SolverError):
        CholeskyFactor(np.array([[1.0, 2.0], [2.0, 1.0]]))


def test_all_pinned_prior_returns_mean():
    rng = np.random.default_rng(5)
    design = rng.standard_normal((8, 4))
    mean = rng.standard_normal(4)
    prior = GaussianCoefficientPrior(mean, np.zeros(4), name="pinned")
    base = KernelMapSolver(design[:5], design[:5] @ mean, prior)
    grown = base.extended(design[5:], design[5:] @ mean)
    assert np.allclose(grown.solve(0.5), mean)
