"""Unit tests for the behavioral MOSFET array."""

import numpy as np
import pytest

from repro.devices import MosfetArray
from repro.process import ProcessKit, ProcessSpace


@pytest.fixture
def kit():
    return ProcessKit(params_per_device=4, interdie_params=4)


@pytest.fixture
def registered(kit):
    space = ProcessSpace()
    interdie = space.add_block("g", kit.interdie_params, kind="interdie")
    array = MosfetArray("m", 5, vth0=0.3, beta0=1e-4, cap0=1e-16, area=1.0)
    array.register(space, kit)
    return space, array, list(interdie)


class TestRegistration:
    def test_allocates_contiguous_block(self, registered, kit):
        space, array, _interdie = registered
        assert space.size == kit.interdie_params + 5 * kit.params_per_device
        assert array.mismatch_columns()[0] == kit.interdie_params

    def test_device_columns(self, registered, kit):
        _space, array, _interdie = registered
        cols = array.device_columns(2)
        assert len(cols) == kit.params_per_device
        assert cols[0] == kit.interdie_params + 2 * kit.params_per_device

    def test_device_columns_out_of_range(self, registered):
        _space, array, _ = registered
        with pytest.raises(IndexError):
            array.device_columns(5)

    def test_double_registration_rejected(self, registered, kit):
        space, array, _ = registered
        with pytest.raises(RuntimeError, match="already registered"):
            array.register(space, kit)

    def test_unregistered_evaluation_rejected(self, kit, rng):
        array = MosfetArray("x", 2)
        with pytest.raises(RuntimeError, match="not registered"):
            array.electrical(rng.standard_normal((3, 10)), kit, [0])

    def test_variables_tagged_with_device(self, registered):
        space, _array, _ = registered
        assert len(space.indices_of_device("m0")) == 4

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            MosfetArray("x", 0)

    def test_parameter_broadcast(self):
        array = MosfetArray("x", 3, beta0=np.array([1.0, 2.0, 3.0]))
        assert array.beta0.shape == (3,)
        with pytest.raises(ValueError, match="beta0"):
            MosfetArray("x", 3, beta0=np.ones(4))

    def test_non_positive_area_rejected(self):
        with pytest.raises(ValueError, match="areas"):
            MosfetArray("x", 2, area=np.array([1.0, 0.0]))


class TestElectrical:
    def test_nominal_at_zero_variation(self, registered, kit):
        space, array, interdie = registered
        zero = np.zeros((1, space.size))
        electrical = array.electrical(zero, kit, interdie, include_layout_shifts=False)
        assert np.allclose(electrical.vth, 0.3)
        assert np.allclose(electrical.beta, 1e-4)
        assert np.allclose(electrical.cap, 1e-16)
        assert np.allclose(electrical.leak_scale, 1.0)

    def test_vth_statistics(self, registered, kit, rng):
        """Vth std = sqrt(sigma_mm^2 + sigma_g^2) per device."""
        space, array, interdie = registered
        samples = space.sample(100_000, rng)
        electrical = array.electrical(samples, kit, interdie, False)
        expected = np.sqrt(kit.sigma_vth_mm**2 + kit.sigma_vth_g**2)
        assert np.allclose(electrical.vth.std(axis=0), expected, rtol=0.05)
        assert np.allclose(electrical.vth.mean(axis=0), 0.3, atol=1e-3)

    def test_interdie_component_is_common(self, registered, kit, rng):
        """Inter-die variation moves all devices together (correlated)."""
        space, array, interdie = registered
        samples = space.sample(20_000, rng)
        electrical = array.electrical(samples, kit, interdie, False)
        correlation = np.corrcoef(electrical.vth[:, 0], electrical.vth[:, 1])[0, 1]
        expected = kit.sigma_vth_g**2 / (kit.sigma_vth_g**2 + kit.sigma_vth_mm**2)
        assert correlation == pytest.approx(expected, abs=0.05)

    def test_area_scaling_pelgrom(self, kit, rng):
        """Mismatch scales as 1/sqrt(area)."""
        space = ProcessSpace()
        interdie = list(space.add_block("g", kit.interdie_params, kind="interdie"))
        big = MosfetArray("big", 3, area=4.0)
        big.register(space, kit)
        samples = space.sample(100_000, rng)
        electrical = big.electrical(samples, kit, interdie, False)
        expected = np.sqrt((kit.sigma_vth_mm / 2.0) ** 2 + kit.sigma_vth_g**2)
        assert np.allclose(electrical.vth.std(axis=0), expected, rtol=0.05)

    def test_layout_shifts_toggle(self, registered, kit):
        space, array, interdie = registered
        array.layout_beta_shift = np.full(5, 0.1)
        zero = np.zeros((1, space.size))
        with_shift = array.electrical(zero, kit, interdie, True)
        without = array.electrical(zero, kit, interdie, False)
        assert np.allclose(with_shift.beta, 1.1e-4)
        assert np.allclose(without.beta, 1e-4)

    def test_bad_sample_shape_rejected(self, registered, kit):
        _space, array, interdie = registered
        with pytest.raises(ValueError, match="2-D"):
            array.electrical(np.zeros(5), kit, interdie)


class TestCurrents:
    def test_on_current_magnitude(self, registered, kit):
        space, array, interdie = registered
        zero = np.zeros((1, space.size))
        electrical = array.electrical(zero, kit, interdie, False)
        current = array.on_current(electrical, vdd=0.9)
        expected = 1e-4 * (0.9 - 0.3) ** array.alpha
        assert np.allclose(current, expected)

    def test_on_current_decreases_with_vth(self, registered, kit, rng):
        space, array, interdie = registered
        samples = space.sample(2000, rng)
        electrical = array.electrical(samples, kit, interdie, False)
        current = array.on_current(electrical, vdd=0.9)
        correlation = np.corrcoef(
            electrical.vth[:, 0], current[:, 0]
        )[0, 1]
        assert correlation < -0.5

    def test_overdrive_floor(self, registered, kit):
        """Even a pathological Vth above VDD gives a (floored) current."""
        space, array, interdie = registered
        electrical = array.electrical(np.zeros((1, space.size)), kit, interdie, False)
        electrical.vth[:] = 2.0
        current = array.on_current(electrical, vdd=0.9)
        assert np.all(current > 0)

    def test_off_current_exponential_in_vth(self, registered, kit):
        space, array, interdie = registered
        electrical = array.electrical(np.zeros((1, space.size)), kit, interdie, False)
        nominal = array.off_current(electrical, kit).copy()
        electrical.vth += 0.05  # +50 mV
        reduced = array.off_current(electrical, kit)
        expected_ratio = np.exp(-0.05 / (array.subthreshold_slope * kit.thermal_voltage))
        assert np.allclose(reduced / nominal, expected_ratio)
