"""Unit tests for the benchmark-scale configuration and the CLI."""

import numpy as np
import pytest

from repro.circuits import Stage
from repro.experiments import config
from repro.experiments.__main__ import EXPERIMENTS, main


class TestScaleConfig:
    def test_default_scale_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert config.scale() == "small"

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert config.scale() == "medium"

    def test_scale_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "PAPER")
        assert config.scale() == "paper"

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            config.scale()

    def test_repeats_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPEATS", raising=False)
        assert config.repeats() == 3
        assert config.repeats(default=7) == 7

    def test_repeats_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPEATS", "10")
        assert config.repeats() == 10

    def test_invalid_repeats_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPEATS", "0")
        with pytest.raises(ValueError, match="REPRO_REPEATS"):
            config.repeats()

    def test_small_instances_are_small(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        ro = config.make_ring_oscillator()
        assert ro.num_vars(Stage.POST_LAYOUT) < 1000
        sram = config.make_sram()
        assert sram.num_vars(Stage.POST_LAYOUT) < 3000

    def test_medium_larger_than_small(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        small = config.make_ring_oscillator().num_vars(Stage.POST_LAYOUT)
        monkeypatch.setenv("REPRO_SCALE", "medium")
        medium = config.make_ring_oscillator().num_vars(Stage.POST_LAYOUT)
        assert medium > 2 * small

    def test_sample_counts_match_paper(self):
        assert config.table_sample_counts() == tuple(range(100, 1000, 100))

    def test_early_samples_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EARLY_SAMPLES", raising=False)
        assert config.early_samples() == 3000


class TestCli:
    def test_every_table_and_figure_has_a_runner(self):
        expected = {f"table{i}" for i in range(1, 7)}
        expected |= {"fig4", "fig5", "fig7", "fig8"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_fig7_runs(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["fig7"]) == 0
        output = capsys.readouterr().out
        assert "read_delay" in output
        assert "Histogram" in output

    def test_report_subcommand(self, capsys):
        assert main(["report"]) == 0
        output = capsys.readouterr().out
        # Either saved results are echoed or the helpful hint is shown.
        assert "###" in output or "no saved results" in output or "no .txt" in output
