"""Unit tests for the experiment harness (cost model, tables, figures)."""

import numpy as np
import pytest

from repro.circuits import Stage
from repro.experiments import (
    RO_COST_MODEL,
    SRAM_COST_MODEL,
    CostReport,
    SimulationCostModel,
    metric_histogram,
    run_cost_comparison,
    run_error_table,
    run_fitting_cost,
    solver_speedup,
)
from repro.bmf import nonzero_mean_prior


class TestCostModel:
    def test_ro_calibration_matches_table4(self):
        """900 samples -> 12.58 hours, as in the paper's Table IV."""
        assert RO_COST_MODEL.simulation_hours(900) == pytest.approx(12.58)
        assert RO_COST_MODEL.simulation_hours(100) == pytest.approx(
            12.58 / 9.0
        )

    def test_sram_calibration_matches_table6(self):
        assert SRAM_COST_MODEL.simulation_hours(400) == pytest.approx(38.77)
        assert SRAM_COST_MODEL.simulation_hours(100) == pytest.approx(
            38.77 / 4.0
        )

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SimulationCostModel(1.0).simulation_hours(-1)


class TestCostReport:
    def make(self, hours, seconds, method="m", samples=100):
        return CostReport(method, samples, {"f": 0.01}, hours, seconds)

    def test_total_hours(self):
        report = self.make(2.0, 3600.0)
        assert report.total_hours == pytest.approx(3.0)

    def test_speedup(self):
        fast = self.make(1.0, 0.0)
        slow = self.make(9.0, 0.0)
        assert fast.speedup_over(slow) == pytest.approx(9.0)

    def test_zero_cost_speedup_rejected(self):
        zero = self.make(0.0, 0.0)
        with pytest.raises(ValueError, match="positive"):
            zero.speedup_over(self.make(1.0, 0.0))


class TestErrorTable:
    def test_tiny_sweep_structure(self, tiny_ro, rng):
        table = run_error_table(
            tiny_ro,
            "frequency",
            sample_counts=(30, 80),
            repeats=2,
            rng=rng,
            test_size=100,
            early_samples=400,
            early_method="ridge",
        )
        assert table.sample_counts == (30, 80)
        assert set(table.errors) == {"OMP", "BMF-ZM", "BMF-NZM", "BMF-PS"}
        for errors in table.errors.values():
            assert errors.shape == (2,)
            assert np.all(errors > 0)
        # BMF-PS coincides with one of its two variants at every K (it
        # selects by CV error, so it may not be the *test*-optimal one --
        # the paper makes the same observation about Tables I-III).
        for i in range(2):
            ps = table.errors["BMF-PS"][i]
            zm = table.errors["BMF-ZM"][i]
            nzm = table.errors["BMF-NZM"][i]
            assert ps == pytest.approx(zm, rel=1e-9) or ps == pytest.approx(
                nzm, rel=1e-9
            )
            assert ps <= 1.3 * min(zm, nzm)

    def test_method_subset(self, tiny_ro, rng):
        table = run_error_table(
            tiny_ro,
            "power",
            sample_counts=(40,),
            repeats=1,
            rng=rng,
            test_size=50,
            early_samples=300,
            early_method="ridge",
            methods=("OMP", "BMF-PS"),
        )
        assert set(table.errors) == {"OMP", "BMF-PS"}

    def test_unknown_method_rejected(self, tiny_ro, rng):
        with pytest.raises(ValueError, match="unknown method"):
            run_error_table(tiny_ro, "power", methods=("BMF-XL",), rng=rng)

    def test_format_contains_all_rows(self, tiny_ro, rng):
        table = run_error_table(
            tiny_ro,
            "power",
            sample_counts=(30, 60),
            repeats=1,
            rng=rng,
            test_size=50,
            early_samples=300,
            early_method="ridge",
        )
        text = table.format()
        assert "30" in text and "60" in text
        assert "BMF-PS" in text and "OMP" in text

    def test_precomputed_early_coefficients(self, tiny_ro, rng):
        from repro.circuits import FusionProblem

        problem = FusionProblem(tiny_ro, "power")
        alpha = problem.fit_early_model(300, rng, method="ridge")
        table = run_error_table(
            tiny_ro,
            "power",
            sample_counts=(40,),
            repeats=1,
            rng=rng,
            test_size=50,
            alpha_early=alpha,
        )
        assert np.isfinite(table.early_error)

    def test_to_csv(self, tiny_ro, rng):
        table = run_error_table(
            tiny_ro,
            "power",
            sample_counts=(30, 60),
            repeats=1,
            rng=rng,
            test_size=50,
            early_samples=300,
            early_method="ridge",
        )
        csv = table.to_csv()
        lines = csv.splitlines()
        assert lines[0].startswith("samples,")
        assert len(lines) == 3
        assert lines[1].split(",")[0] == "30"
        # Values round-trip as floats.
        float(lines[1].split(",")[1])

    def test_best_method_at(self, tiny_ro, rng):
        table = run_error_table(
            tiny_ro,
            "frequency",
            sample_counts=(40,),
            repeats=1,
            rng=rng,
            test_size=80,
            early_samples=400,
            early_method="ridge",
        )
        assert table.best_method_at(40) in table.errors


class TestCostComparison:
    def test_tiny_comparison(self, tiny_ro, rng):
        comparison = run_cost_comparison(
            tiny_ro,
            ("frequency",),
            RO_COST_MODEL,
            baseline_samples=90,
            fused_samples=30,
            rng=rng,
            test_size=60,
            early_samples=300,
            early_method="ridge",
        )
        assert comparison.baseline.num_samples == 90
        assert comparison.fused.num_samples == 30
        assert comparison.speedup > 2.5  # ~3x from the sample ratio
        text = comparison.format()
        assert "Speedup" in text


class TestFigures:
    def test_histogram(self, tiny_ro, rng):
        histogram = metric_histogram(tiny_ro, "power", 500, rng, bins=10)
        assert histogram.counts.sum() == 500
        assert len(histogram.edges) == 11
        assert "Histogram" in histogram.format()

    def test_fitting_cost_sweep(self, tiny_ro, rng):
        curve = run_fitting_cost(
            tiny_ro,
            "power",
            sample_counts=(30, 60),
            rng=rng,
            include_conventional=True,
            early_samples=200,
        )
        assert set(curve.seconds) == {
            "OMP",
            "BMF-PS (fast solver)",
            "BMF-PS (conventional solver)",
        }
        for seconds in curve.seconds.values():
            assert np.all(seconds > 0)
        assert "Fitting cost" in curve.format()

    def test_solver_speedup_exactness(self, tiny_ro, rng):
        from repro.basis import OrthonormalBasis

        basis = OrthonormalBasis.linear(tiny_ro.num_vars(Stage.POST_LAYOUT))
        x = tiny_ro.sample(Stage.POST_LAYOUT, 30, rng)
        f = tiny_ro.simulate(Stage.POST_LAYOUT, x, "power")
        design = basis.design_matrix(x)
        prior = nonzero_mean_prior(rng.standard_normal(basis.size))
        result = solver_speedup(design, prior, eta=1.0, target=f, repeats=1)
        assert result["max_relative_difference"] < 1e-8
        assert result["fast_seconds"] > 0
        assert result["direct_seconds"] > 0


class TestServingStream:
    def test_stream_runner_end_to_end(self, tiny_ro, rng):
        from repro.experiments import run_serving_stream

        report = run_serving_stream(
            tiny_ro,
            "power",
            batch_sizes=(20, 8, 8),
            requests_per_batch=4,
            rng=rng,
            test_size=40,
            early_samples=300,
        )
        assert len(report.cv_error_history) == 3
        assert report.versions_published == 3
        assert report.refit_modes[0] == "full"
        assert all(m in ("incremental", "fallback") for m in report.refit_modes[1:])
        assert 0 <= report.test_error < 1.0
        assert report.engine_stats["requests"] == 3 * 4 + 1  # bursts + final sweep
        assert report.runtime_metrics.get("serving.publishes") == 3
        assert report.runtime_metrics.get("woodbury.incremental_refits", 0) >= 1
        text = report.format()
        assert "refit modes" in text
        assert "versions published   : 3" in text

    def test_stream_runner_validates_inputs(self, tiny_ro, rng):
        from repro.experiments import run_serving_stream

        with pytest.raises(ValueError, match="batch_sizes"):
            run_serving_stream(tiny_ro, "power", batch_sizes=(), rng=rng)
        with pytest.raises(ValueError, match="requests_per_batch"):
            run_serving_stream(
                tiny_ro, "power", batch_sizes=(10,), requests_per_batch=0, rng=rng
            )
