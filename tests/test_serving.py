"""Tests for the serving layer: registry semantics, engine behavior, and
concurrency (no torn reads under a thread barrier, cache hit rates)."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.bmf import BmfRegressor, SequentialBmf
from repro.regression import FittedModel
from repro.runtime import DesignMatrixCache, set_design_cache
from repro.runtime.metrics import metrics as runtime_metrics
from repro.serving import (
    EngineStoppedError,
    ModelRegistry,
    ModelVersion,
    PredictionEngine,
    model_key,
)


@pytest.fixture(scope="module")
def basis():
    return OrthonormalBasis.total_degree(4, 2)


@pytest.fixture(scope="module")
def fitted(basis):
    rng = np.random.default_rng(11)
    x = rng.normal(size=(60, 4))
    truth = rng.normal(size=basis.size)
    f = basis.design_matrix(x) @ truth + 0.01 * rng.normal(size=60)
    return BmfRegressor(basis, truth, prior_kind="nonzero-mean").fit(x, f)


def version_model(basis, value):
    """A model whose every prediction equals ``value`` (torn reads would
    produce a non-constant vector or a value never published)."""
    constant = float(basis.design_matrix(np.zeros((1, basis.num_vars)))[0, 0])
    coefficients = np.zeros(basis.size)
    coefficients[0] = value / constant
    return FittedModel(basis, coefficients)


class TestModelKey:
    def test_stable_and_sensitive(self, basis, fitted):
        prior = fitted.chosen_prior_
        key = model_key(basis, prior, 0.5)
        assert key == model_key(basis, prior, 0.5)
        assert key != model_key(basis, prior, 0.25)
        assert key != model_key(basis, None, 0.5)
        other = OrthonormalBasis.total_degree(4, 3)
        assert key != model_key(other, prior, 0.5)


class TestModelRegistry:
    def test_publish_and_current(self, basis, fitted):
        registry = ModelRegistry()
        record = registry.publish("gain", fitted)
        assert isinstance(record, ModelVersion)
        assert record.version == 1
        assert registry.current("gain") is record
        assert "gain" in registry
        assert len(registry) == 1
        assert registry.names() == ("gain",)

    def test_snapshot_is_frozen(self, basis, fitted):
        registry = ModelRegistry()
        record = registry.publish("gain", fitted)
        assert not record.model.coefficients.flags.writeable
        with pytest.raises((ValueError, TypeError)):
            record.model.coefficients[0] = 1.0
        # Mutating the source regressor afterwards must not leak through.
        fitted.coefficients_[0] += 100.0
        try:
            assert registry.model("gain").coefficients[0] != fitted.coefficients_[0]
        finally:
            fitted.coefficients_[0] -= 100.0

    def test_accepts_sequential_and_fitted_model(self, basis):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(30, 4))
        f = x[:, 0] + 0.01 * rng.normal(size=30)
        sequential = SequentialBmf(basis, np.zeros(basis.size))
        sequential.add_samples(x, f)
        registry = ModelRegistry()
        registry.publish("seq", sequential)
        registry.publish("plain", version_model(basis, 7.0))
        assert registry.model("seq").coefficients.shape == (basis.size,)

    def test_rejects_unfittable_objects(self):
        registry = ModelRegistry()
        with pytest.raises(TypeError, match="FittedModel"):
            registry.publish("bad", object())

    def test_unknown_name_raises(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.current("missing")
        with pytest.raises(KeyError):
            registry.rollback("missing")

    def test_rollback_steps_back_and_bottoms_out(self, basis):
        registry = ModelRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.publish("m", version_model(basis, value))
        assert registry.current("m").version == 3
        assert registry.rollback("m").version == 2
        assert registry.rollback("m").version == 1
        with pytest.raises(RuntimeError, match="roll back"):
            registry.rollback("m")
        # Publishing after a rollback appends; history stays linear.
        record = registry.publish("m", version_model(basis, 4.0))
        assert record.version == 4
        assert [v.version for v in registry.versions("m")] == [1, 2, 3, 4]

    def test_history_pruning_keeps_active(self, basis):
        registry = ModelRegistry(max_versions=3)
        for value in range(1, 7):
            registry.publish("m", version_model(basis, float(value)))
        versions = [v.version for v in registry.versions("m")]
        assert versions == [4, 5, 6]
        assert registry.current("m").version == 6

    def test_max_versions_validated(self):
        with pytest.raises(ValueError, match="max_versions"):
            ModelRegistry(max_versions=1)


class TestPredictionEngine:
    def test_predict_matches_direct_evaluation(self, basis, fitted):
        rng = np.random.default_rng(5)
        registry = ModelRegistry()
        registry.publish("gain", fitted)
        x = rng.normal(size=(7, 4))
        with PredictionEngine(registry, max_delay_seconds=0.0) as engine:
            out = engine.predict("gain", x)
            single = engine.predict("gain", x[0])
        expected = basis.design_matrix(x) @ registry.model("gain").coefficients
        assert np.allclose(out, expected)
        assert single.shape == (1,)
        assert np.allclose(single, expected[:1])

    def test_unknown_model_rejects_future(self, basis):
        registry = ModelRegistry()
        with PredictionEngine(registry, max_delay_seconds=0.0) as engine:
            with pytest.raises(KeyError):
                engine.predict("missing", np.zeros(4), timeout=10.0)

    def test_evaluation_error_propagates(self, basis, fitted):
        registry = ModelRegistry()
        registry.publish("gain", fitted)
        with PredictionEngine(registry, max_delay_seconds=0.0) as engine:
            with pytest.raises(ValueError):
                engine.predict("gain", np.zeros(3), timeout=10.0)  # wrong width

    def test_submit_when_stopped_raises(self, basis):
        engine = PredictionEngine(ModelRegistry())
        with pytest.raises(EngineStoppedError):
            engine.submit("gain", np.zeros(4))
        engine.start()
        engine.stop()
        engine.stop()  # idempotent
        with pytest.raises(EngineStoppedError):
            engine.submit("gain", np.zeros(4))

    def test_constructor_validation(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="max_batch_size"):
            PredictionEngine(registry, max_batch_size=0)
        with pytest.raises(ValueError, match="max_delay_seconds"):
            PredictionEngine(registry, max_delay_seconds=-1.0)
        with pytest.raises(ValueError, match="workers"):
            PredictionEngine(registry, workers=0)

    def test_requests_coalesce_into_batches(self, basis, fitted):
        rng = np.random.default_rng(6)
        registry = ModelRegistry()
        registry.publish("gain", fitted)
        before = runtime_metrics.snapshot().get("serving.requests", 0)
        with PredictionEngine(registry, max_delay_seconds=0.05) as engine:
            futures = [
                engine.submit("gain", rng.normal(size=(2, 4))) for _ in range(16)
            ]
            for future in futures:
                assert future.result(timeout=10.0).shape == (2,)
            stats = engine.stats()
        after = runtime_metrics.snapshot().get("serving.requests", 0)
        assert after - before == 16
        assert stats["requests"] == 16
        assert stats["rows"] == 32
        # The 50 ms linger must coalesce the burst well below 1 req/batch.
        assert stats["batches"] <= 8
        assert stats["mean_batch_requests"] >= 2.0
        assert stats["mean_latency_seconds"] > 0.0


class TestConcurrency:
    NUM_READERS = 8
    NUM_WRITERS = 3
    PREDICTIONS_PER_READER = 40

    def test_no_torn_reads_under_barrier(self, basis):
        """8 reader + 3 writer + 1 rollback thread hammer one name; every
        prediction must be a constant vector whose value was published."""
        registry = ModelRegistry(max_versions=64)
        published_values = [float(v) for v in range(1, 33)]
        registry.publish("m", version_model(basis, published_values[0]))
        allowed = set(published_values)
        num_threads = self.NUM_READERS + self.NUM_WRITERS + 1
        barrier = threading.Barrier(num_threads)
        x = np.zeros((5, 4))
        failures = []

        def writer(values):
            barrier.wait()
            for value in values:
                registry.publish("m", version_model(basis, value))

        def roller():
            barrier.wait()
            for _ in range(10):
                try:
                    registry.rollback("m")
                except RuntimeError:
                    break  # bottomed out: no earlier version retained

        def reader(engine):
            barrier.wait()
            for _ in range(self.PREDICTIONS_PER_READER):
                out = engine.predict("m", x, timeout=30.0)
                values = set(np.round(out, 9))
                if len(values) != 1 or not values <= allowed:
                    failures.append(out.copy())

        with PredictionEngine(registry, max_delay_seconds=0.0, workers=4) as engine:
            with ThreadPoolExecutor(max_workers=num_threads) as pool:
                jobs = [
                    pool.submit(writer, published_values[1 + w :: self.NUM_WRITERS])
                    for w in range(self.NUM_WRITERS)
                ]
                jobs.append(pool.submit(roller))
                jobs += [
                    pool.submit(reader, engine) for _ in range(self.NUM_READERS)
                ]
                for job in jobs:
                    job.result(timeout=60.0)
        assert not failures

    def test_registry_publish_race_yields_unique_versions(self, basis):
        registry = ModelRegistry(max_versions=128)
        barrier = threading.Barrier(8)

        def publisher(worker):
            barrier.wait()
            return [
                registry.publish("m", version_model(basis, float(worker))).version
                for _ in range(10)
            ]

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [pool.submit(publisher, w) for w in range(8)]
            versions = [v for job in results for v in job.result(timeout=30.0)]
        assert sorted(versions) == list(range(1, 81))
        assert registry.current("m").version == 80

    def test_repeated_batches_hit_design_cache(self, basis, fitted):
        rng = np.random.default_rng(8)
        registry = ModelRegistry()
        registry.publish("gain", fitted)
        x = rng.normal(size=(128, 4))  # 128 x 15 cells > the 1-cell floor
        cache = DesignMatrixCache(min_result_cells=1)
        previous = set_design_cache(cache)
        try:
            with PredictionEngine(registry, max_delay_seconds=0.0) as engine:
                repeats = 10
                for _ in range(repeats):
                    engine.predict("gain", x, timeout=10.0)
            stats = cache.stats()
        finally:
            set_design_cache(previous)
        # One assembly, then cache hits for every identical batch.
        assert stats["misses"] == 1
        assert stats["hits"] == repeats - 1
        hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
        assert hit_rate >= (repeats - 1) / repeats
