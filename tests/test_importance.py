"""Unit tests for mean-shift importance-sampling yield estimation."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.applications import estimate_failure_probability
from repro.basis import OrthonormalBasis
from repro.regression import FittedModel


@pytest.fixture
def linear_model():
    """f(x) = 2 x1 + 1 x2: N(0, 5); P(f > t) = Phi(-t/sqrt(5))."""
    basis = OrthonormalBasis.linear(2)
    return FittedModel(basis, np.array([0.0, 2.0, 1.0]))


class TestImportanceSampling:
    def test_matches_closed_form_at_4_sigma(self, linear_model, rng):
        sigma_f = np.sqrt(5.0)
        spec = 4.0 * sigma_f  # a 4-sigma spec: P ~ 3.2e-5
        result = estimate_failure_probability(
            linear_model, 50_000, rng, spec_high=spec
        )
        expected = norm.sf(4.0)
        assert result.probability == pytest.approx(expected, rel=0.15)

    def test_plain_mc_would_need_billions(self, linear_model, rng):
        """At 5.5 sigma the IS estimator still resolves the probability."""
        sigma_f = np.sqrt(5.0)
        spec = 5.5 * sigma_f
        result = estimate_failure_probability(
            linear_model, 100_000, rng, spec_high=spec
        )
        expected = norm.sf(5.5)  # ~1.9e-8
        assert result.probability == pytest.approx(expected, rel=0.3)
        assert result.std_error < result.probability  # resolved, not noise

    def test_spec_low_direction(self, linear_model, rng):
        sigma_f = np.sqrt(5.0)
        result = estimate_failure_probability(
            linear_model, 50_000, rng, spec_low=-4.0 * sigma_f
        )
        assert result.probability == pytest.approx(norm.sf(4.0), rel=0.15)

    def test_unbiased_for_explicit_shift(self, linear_model, rng):
        """Any shift gives an unbiased estimate (just different variance)."""
        sigma_f = np.sqrt(5.0)
        spec = 3.0 * sigma_f
        shifted = estimate_failure_probability(
            linear_model, 200_000, rng, spec_high=spec,
            shift=np.array([2.0, 1.0]),
        )
        assert shifted.probability == pytest.approx(norm.sf(3.0), rel=0.2)

    def test_sigma_level(self, linear_model, rng):
        sigma_f = np.sqrt(5.0)
        result = estimate_failure_probability(
            linear_model, 50_000, rng, spec_high=4.0 * sigma_f
        )
        assert result.sigma_level() == pytest.approx(4.0, abs=0.1)

    def test_shift_points_toward_failure(self, linear_model, rng):
        result = estimate_failure_probability(
            linear_model, 1000, rng, spec_high=8.0
        )
        # The auto-shift must align with the model gradient (2, 1).
        direction = result.shift / np.linalg.norm(result.shift)
        expected = np.array([2.0, 1.0]) / np.sqrt(5.0)
        assert np.allclose(direction, expected, atol=1e-6)

    def test_validation(self, linear_model, rng):
        with pytest.raises(ValueError, match="num_samples"):
            estimate_failure_probability(linear_model, 0, rng, spec_high=1.0)
        with pytest.raises(ValueError, match="spec"):
            estimate_failure_probability(linear_model, 10, rng)
        with pytest.raises(ValueError, match="shift"):
            estimate_failure_probability(
                linear_model, 10, rng, spec_high=1.0, shift=np.ones(5)
            )

    def test_no_failure_region_returns_tiny_probability(self, linear_model, rng):
        """Spec far beyond the search ball: estimate ~ 0 without crashing."""
        result = estimate_failure_probability(
            linear_model, 20_000, rng, spec_high=100.0, search_sigma=5.0
        )
        assert result.probability < 1e-10
