"""Unit tests for the SRAM read-path testbench."""

import numpy as np
import pytest

from repro.circuits import SramReadPath, Stage


class TestConstruction:
    def test_variable_counts(self, tiny_sram, tiny_kit):
        devices = 6 * tiny_sram.n_cells + 2 + 8 + 2 * tiny_sram.n_timing
        expected = tiny_kit.interdie_params + devices * tiny_kit.params_per_device
        assert tiny_sram.num_vars(Stage.SCHEMATIC) == expected
        assert (
            tiny_sram.num_vars(Stage.POST_LAYOUT)
            == expected + tiny_sram._num_parasitics
        )

    def test_too_few_cells_rejected(self):
        with pytest.raises(ValueError, match="n_cells"):
            SramReadPath(n_cells=1)

    def test_bad_accessed_cell_rejected(self):
        with pytest.raises(ValueError, match="accessed_cell"):
            SramReadPath(n_cells=8, accessed_cell=8)

    def test_paper_scale_dimensionality(self):
        sram = SramReadPath.paper_scale()
        assert 55_000 <= sram.num_vars(Stage.POST_LAYOUT) <= 70_000


class TestSimulation:
    def test_positive_delay(self, tiny_sram, rng):
        x = tiny_sram.sample(Stage.POST_LAYOUT, 500, rng)
        delay = tiny_sram.simulate(Stage.POST_LAYOUT, x, "read_delay")
        assert np.all(delay > 0)
        assert np.all(delay < 1e-6)  # sane magnitude (sub-microsecond)

    def test_deterministic(self, tiny_sram, rng):
        x = tiny_sram.sample(Stage.SCHEMATIC, 5, rng)
        a = tiny_sram.simulate(Stage.SCHEMATIC, x, "read_delay")
        b = tiny_sram.simulate(Stage.SCHEMATIC, x, "read_delay")
        assert np.array_equal(a, b)

    def test_relative_spread(self, tiny_sram, rng):
        x = tiny_sram.sample(Stage.POST_LAYOUT, 3000, rng)
        delay = tiny_sram.simulate(Stage.POST_LAYOUT, x, "read_delay")
        rel = delay.std() / delay.mean()
        assert 0.01 < rel < 0.25

    def test_layout_slows_the_read(self, tiny_sram, rng):
        x_post = tiny_sram.sample(Stage.POST_LAYOUT, 300, rng)
        x_sch = x_post[:, : tiny_sram.num_vars(Stage.SCHEMATIC)]
        t_sch = tiny_sram.simulate(Stage.SCHEMATIC, x_sch, "read_delay")
        t_post = tiny_sram.simulate(Stage.POST_LAYOUT, x_post, "read_delay")
        assert t_post.mean() > t_sch.mean()

    def test_stages_strongly_correlated(self, tiny_sram, rng):
        x_post = tiny_sram.sample(Stage.POST_LAYOUT, 300, rng)
        x_sch = x_post[:, : tiny_sram.num_vars(Stage.SCHEMATIC)]
        t_sch = tiny_sram.simulate(Stage.SCHEMATIC, x_sch, "read_delay")
        t_post = tiny_sram.simulate(Stage.POST_LAYOUT, x_post, "read_delay")
        assert np.corrcoef(t_sch, t_post)[0, 1] > 0.9


class TestPhysics:
    def test_accessed_cell_dominates(self, tiny_sram, tiny_kit, rng):
        """Weakening the accessed cell's devices slows the read far more
        than weakening an unaccessed cell's."""
        space = tiny_sram.space(Stage.POST_LAYOUT)
        x = np.zeros((3, space.size))
        accessed_cols = tiny_sram._access.device_columns(tiny_sram.accessed_cell)
        other_cols = tiny_sram._access.device_columns(tiny_sram.accessed_cell + 1)
        vth_proj = tiny_kit.mismatch_projection("vth")
        x[1, accessed_cols] = 3.0 * vth_proj  # raise accessed-cell Vth
        x[2, other_cols] = 3.0 * vth_proj  # raise another cell's Vth
        delay = tiny_sram.simulate(Stage.POST_LAYOUT, x, "read_delay")
        accessed_effect = abs(delay[1] - delay[0])
        other_effect = abs(delay[2] - delay[0])
        assert accessed_effect > 10 * other_effect

    def test_leakage_race(self, tiny_sram, tiny_kit):
        """Lowering every unaccessed cell's Vth raises leakage -> slower."""
        space = tiny_sram.space(Stage.POST_LAYOUT)
        x = np.zeros((2, space.size))
        vth_proj = tiny_kit.mismatch_projection("vth")
        for cell in range(tiny_sram.n_cells):
            if cell == tiny_sram.accessed_cell:
                continue
            x[1, tiny_sram._access.device_columns(cell)] = -2.5 * vth_proj
        delay = tiny_sram.simulate(Stage.POST_LAYOUT, x, "read_delay")
        assert delay[1] > delay[0]

    def test_sense_amp_offset_shifts_delay(self, tiny_sram, tiny_kit):
        """SA input-pair Vth imbalance changes the required swing."""
        space = tiny_sram.space(Stage.POST_LAYOUT)
        x = np.zeros((3, space.size))
        vth_proj = tiny_kit.mismatch_projection("vth")
        x[1, tiny_sram._senseamp.device_columns(0)] = 3.0 * vth_proj
        x[2, tiny_sram._senseamp.device_columns(1)] = 3.0 * vth_proj
        delay = tiny_sram.simulate(Stage.POST_LAYOUT, x, "read_delay")
        # Offset is antisymmetric in the two input devices.
        assert (delay[1] - delay[0]) * (delay[2] - delay[0]) < 0

    def test_bitline_parasitics_slow_the_read(self, tiny_sram, rng):
        x = tiny_sram.sample(Stage.POST_LAYOUT, 1, rng)
        base = tiny_sram.simulate(Stage.POST_LAYOUT, x, "read_delay")[0]
        loaded = x.copy()
        start = tiny_sram.num_vars(Stage.SCHEMATIC)
        loaded[:, start : start + tiny_sram._num_bl_segments] += 2.0
        slower = tiny_sram.simulate(Stage.POST_LAYOUT, loaded, "read_delay")[0]
        assert slower > base
