"""Unit tests for the linear-algebra kernels (SPD solves, Woodbury)."""

import numpy as np
import pytest

from repro.linalg import (
    posterior_variance_diagonal,
    solve_diag_plus_gram,
    solve_diag_plus_gram_direct,
    solve_least_squares,
    solve_spd,
)


def random_spd(rng, size):
    root = rng.standard_normal((size, size))
    return root @ root.T + size * np.eye(size)


class TestSolveSpd:
    def test_matches_numpy_solve(self, rng):
        matrix = random_spd(rng, 12)
        rhs = rng.standard_normal(12)
        assert np.allclose(solve_spd(matrix, rhs), np.linalg.solve(matrix, rhs))

    def test_identity(self):
        rhs = np.arange(5.0)
        assert np.allclose(solve_spd(np.eye(5), rhs), rhs)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            solve_spd(np.ones((3, 4)), np.ones(3))

    def test_mismatched_rhs_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            solve_spd(np.eye(3), np.ones(4))

    def test_indefinite_fallback_does_not_crash(self, rng):
        """A numerically indefinite matrix falls back to the clipped solve."""
        matrix = np.diag([1.0, 1e-30, -1e-30])
        result = solve_spd(matrix, np.array([1.0, 0.0, 0.0]))
        assert np.isfinite(result).all()
        assert result[0] == pytest.approx(1.0)


class TestLeastSquares:
    def test_overdetermined_recovery(self, rng):
        design = rng.standard_normal((50, 5))
        truth = rng.standard_normal(5)
        solution = solve_least_squares(design, design @ truth)
        assert np.allclose(solution, truth)

    def test_underdetermined_minimum_norm(self, rng):
        design = rng.standard_normal((3, 10))
        target = rng.standard_normal(3)
        solution = solve_least_squares(design, target)
        assert np.allclose(design @ solution, target)
        # Minimum-norm solution lies in the row space.
        null_component = solution - design.T @ np.linalg.solve(
            design @ design.T, design @ solution
        )
        assert np.allclose(null_component, 0.0, atol=1e-10)


class TestWoodbury:
    @pytest.mark.parametrize("num_samples,num_terms", [(5, 20), (20, 5), (10, 10)])
    def test_matches_direct(self, rng, num_samples, num_terms):
        design = rng.standard_normal((num_samples, num_terms))
        diag = rng.uniform(0.1, 10.0, num_terms)
        rhs = rng.standard_normal(num_terms)
        fast = solve_diag_plus_gram(diag, design, rhs, scale=2.5)
        direct = solve_diag_plus_gram_direct(diag, design, rhs, scale=2.5)
        assert np.allclose(fast, direct, atol=1e-10)

    def test_matches_dense_reference(self, rng):
        design = rng.standard_normal((6, 15))
        diag = rng.uniform(0.5, 5.0, 15)
        rhs = rng.standard_normal(15)
        system = np.diag(diag) + 3.0 * design.T @ design
        reference = np.linalg.solve(system, rhs)
        assert np.allclose(
            solve_diag_plus_gram(diag, design, rhs, scale=3.0), reference
        )

    def test_wide_dynamic_range_diag(self, rng):
        """Prior variances spanning many decades (BMF's regime)."""
        design = rng.standard_normal((8, 30))
        diag = 10.0 ** rng.uniform(-6, 6, 30)
        rhs = rng.standard_normal(30)
        fast = solve_diag_plus_gram(diag, design, rhs)
        direct = solve_diag_plus_gram_direct(diag, design, rhs)
        scale = np.max(np.abs(direct))
        assert np.allclose(fast, direct, atol=1e-8 * scale)

    def test_non_positive_diag_rejected(self, rng):
        design = rng.standard_normal((4, 6))
        with pytest.raises(ValueError, match="positive"):
            solve_diag_plus_gram(np.zeros(6), design, np.ones(6))

    def test_non_positive_scale_rejected(self, rng):
        design = rng.standard_normal((4, 6))
        with pytest.raises(ValueError, match="scale"):
            solve_diag_plus_gram(np.ones(6), design, np.ones(6), scale=0.0)

    def test_shape_validation(self, rng):
        design = rng.standard_normal((4, 6))
        with pytest.raises(ValueError, match="diag"):
            solve_diag_plus_gram(np.ones(5), design, np.ones(6))
        with pytest.raises(ValueError, match="rhs"):
            solve_diag_plus_gram(np.ones(6), design, np.ones(5))


class TestPosteriorVariance:
    def test_matches_dense_inverse_diagonal(self, rng):
        design = rng.standard_normal((7, 12))
        diag = rng.uniform(0.2, 3.0, 12)
        system = np.diag(diag) + 1.7 * design.T @ design
        expected = np.diag(np.linalg.inv(system))
        computed = posterior_variance_diagonal(diag, design, scale=1.7)
        assert np.allclose(computed, expected)

    def test_no_data_returns_prior_variance(self):
        diag = np.array([2.0, 4.0])
        design = np.zeros((0, 2))
        assert np.allclose(
            posterior_variance_diagonal(diag, design), 1.0 / diag
        )

    def test_variances_positive_and_shrinking(self, rng):
        """Observing data can only shrink posterior variances."""
        design = rng.standard_normal((10, 8))
        diag = rng.uniform(0.5, 2.0, 8)
        posterior = posterior_variance_diagonal(diag, design)
        assert np.all(posterior > 0)
        assert np.all(posterior <= 1.0 / diag + 1e-12)
