"""Hypothesis property suites for compaction and point-in-time recovery.

Two differential properties pin the tentpole contracts:

* **compaction is invisible to recovery** -- for arbitrary
  publish/compact/crash interleavings, recovering the compacted store
  yields a registry bitwise identical (per ``snapshot()``) to recovering
  an uncompacted mirror that saw the same publishes, provided the
  registry's ``max_versions`` fits inside ``history_window + 1`` (here
  ``max_versions=2`` with windows >= 1);
* **``recover_at(k)`` is prefix replay** -- for every valid global offset
  ``k``, point-in-time recovery of the compacted store equals an
  independent replay of the mirror's first ``k`` journal entries.

Each example builds its stores in a throwaway directory (``tmp_path`` is
per-test, not per-example).
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.basis import OrthonormalBasis, total_degree_index_set
from repro.faults import FaultPlan, SimulatedCrash, inject
from repro.regression import FittedModel
from repro.serving import ModelRegistry
from repro.store import ModelRecord, ModelStore, RecoveryManager, compact

NAMES = ("power", "gain", "delay")
MAX_VERSIONS = 2  # history windows below are >= MAX_VERSIONS - 1

BASIS = OrthonormalBasis(2, total_degree_index_set(2, 1))


def make_record(name, version, seed):
    rng = np.random.default_rng(seed)
    return ModelRecord(
        name=name,
        version=version,
        key="deadbeef" * 4,
        published_at=123.5 + version,
        basis_digest=BASIS.cache_token(),
        basis_num_vars=BASIS.num_vars,
        basis_indices=tuple(BASIS.indices),
        coefficients=rng.normal(size=len(BASIS.indices)),
    )


#: One schedule step: publish to one of the names, or compact with a
#: history window >= 1 and an optional crash at one of the failpoints.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("publish"), st.integers(0, len(NAMES) - 1)),
        st.tuples(
            st.just("compact"),
            st.integers(1, 2),  # history_window
            st.sampled_from(
                [None, "store.compact.swing", "store.compact.retire"]
            ),
        ),
    ),
    min_size=1,
    max_size=18,
)


def apply_schedule(root, ops):
    """Run the schedule; returns (subject, mirror, total_publishes)."""
    subject = ModelStore(root / "subject", use_fsync=False)
    mirror = ModelStore(root / "mirror", use_fsync=False)
    versions = {name: 0 for name in NAMES}
    for step, op in enumerate(ops):
        if op[0] == "publish":
            name = NAMES[op[1]]
            versions[name] += 1
            record = make_record(name, versions[name], seed=step)
            subject.append(record)
            mirror.append(record)
        else:
            _, window, crash_at = op
            if crash_at is None:
                compact(subject, history_window=window)
            else:
                plan = FaultPlan.fail_once(crash_at, error=SimulatedCrash)
                with inject(plan):
                    with pytest.raises(SimulatedCrash):
                        compact(subject, history_window=window)
                # A crashed compaction kills the process: reopen cold.
                subject = ModelStore(root / "subject", use_fsync=False)
    return subject, mirror, sum(versions.values())


def recovered_snapshot(store):
    report = RecoveryManager(store).recover(
        registry=ModelRegistry(max_versions=MAX_VERSIONS),
        quarantine_corrupt=False,
    )
    return report.registry.snapshot(), report


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=OPS)
def test_recovery_from_compacted_is_bitwise_identical(ops):
    root = Path(tempfile.mkdtemp(prefix="compaction-prop-"))
    try:
        subject, mirror, total = apply_schedule(root, ops)
        subject_snapshot, subject_report = recovered_snapshot(subject)
        mirror_snapshot, _ = recovered_snapshot(mirror)
        assert subject_snapshot == mirror_snapshot
        # Compaction never invents damage: nothing quarantined, nothing
        # missing, no torn lines, and the global offsets add up.
        assert subject_report.missing == ()
        assert subject_report.compaction_quarantined == ()
        assert subject_report.torn_journal_lines == 0
        assert subject.journal_view().end_offset == total
    finally:
        shutil.rmtree(root, ignore_errors=True)


def prefix_replay(mirror, k):
    """Independent reference: replay the mirror's first ``k`` entries."""
    entries, torn = mirror.journal_entries()
    assert torn == 0
    registry = ModelRegistry(max_versions=MAX_VERSIONS)
    for entry in entries[:k]:
        record = mirror.read(mirror.records_dir / entry.filename)
        registry.restore(
            record.name,
            record.version,
            record.key,
            record.published_at,
            FittedModel(record.basis(), record.coefficients),
        )
    return registry.snapshot()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=OPS)
def test_recover_at_equals_prefix_replay_for_every_valid_offset(ops):
    root = Path(tempfile.mkdtemp(prefix="pitr-prop-"))
    try:
        subject, mirror, total = apply_schedule(root, ops)
        view = subject.journal_view()
        assert view.end_offset == total
        rm = RecoveryManager(subject)
        for k in range(view.checkpoint_offset, view.end_offset + 1):
            got = rm.recover_at(
                k, registry=ModelRegistry(max_versions=MAX_VERSIONS)
            ).registry.snapshot()
            assert got == prefix_replay(mirror, k), f"offset {k} diverged"
        # Offsets folded into the checkpoint are unreachable, loudly.
        if view.checkpoint_offset > 0:
            with pytest.raises(ValueError, match="compacted away"):
                rm.recover_at(view.checkpoint_offset - 1)
        with pytest.raises(ValueError, match="outside the recoverable range"):
            rm.recover_at(view.end_offset + 1)
    finally:
        shutil.rmtree(root, ignore_errors=True)
