"""Tests for the metric catalog (`repro.runtime.catalog`) and REP013."""

import ast
import textwrap
from pathlib import Path

from repro.analysis import LintEngine
from repro.runtime import catalog
from repro.runtime.catalog import (
    DYNAMIC_PREFIXES,
    METRICS,
    TIMERS,
    all_names,
    is_declared,
    missing_from_docs,
    undeclared,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(source, is_test=False):
    engine = LintEngine(select=["REP013"])
    return engine.lint_source(
        textwrap.dedent(source), path="snippet.py", is_test=is_test
    )


class TestCatalogContents:
    def test_counters_and_timers_are_disjoint_and_described(self):
        assert not set(METRICS) & set(TIMERS)
        for name, desc in {**METRICS, **TIMERS}.items():
            assert name == name.strip()
            assert desc.strip(), f"{name} has no description"

    def test_is_declared_covers_counters_timers_and_prefixes(self):
        assert is_declared("serving.requests")
        assert is_declared("design_matrix")  # timer
        assert is_declared("faults.injected.store.fsync")  # dynamic prefix
        assert not is_declared("serving.bogus")

    def test_undeclared_filters_and_sorts(self):
        names = ["serving.requests", "zzz.new", "aaa.new", "lock.acquires"]
        assert undeclared(names) == ["aaa.new", "zzz.new"]

    def test_all_names_is_sorted_union(self):
        names = all_names()
        assert list(names) == sorted(names)
        assert set(names) == set(METRICS) | set(TIMERS)

    def test_dynamic_prefixes_end_with_dot(self):
        assert DYNAMIC_PREFIXES
        for prefix in DYNAMIC_PREFIXES:
            assert prefix.endswith(".")


class TestCodeCatalogDrift:
    def test_every_metric_literal_in_src_is_declared(self):
        offenders = []
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in ("increment", "timer"):
                    continue
                if not node.args:
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    if not is_declared(arg.value):
                        offenders.append(
                            f"{path.name}:{node.lineno}: {arg.value}"
                        )
        assert offenders == []


class TestDocsGate:
    def test_repo_docs_document_every_declared_name(self):
        text = catalog._docs_text(REPO_ROOT / "docs")
        assert missing_from_docs(text) == []

    def test_missing_from_docs_requires_backticks(self):
        text = " ".join(all_names())  # names present but not back-ticked
        assert missing_from_docs(text) == list(all_names())

    def test_main_docs_exit_zero_on_repo_docs(self, capsys):
        code = catalog.main(["docs", str(REPO_ROOT / "docs")])
        assert code == 0
        assert "documented" in capsys.readouterr().out

    def test_main_docs_exit_one_on_rotten_docs(self, tmp_path, capsys):
        (tmp_path / "only.md").write_text(
            "`serving.requests` is documented here\n", encoding="utf-8"
        )
        code = catalog.main(["docs", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "lock.acquires" in out

    def test_main_usage_error(self, capsys):
        assert catalog.main([]) == 2
        assert catalog.main(["frobnicate"]) == 2


class TestUndeclaredMetricRule:
    def test_undeclared_literal_flagged(self):
        violations = lint(
            """
            from repro.runtime.metrics import metrics

            def f():
                metrics.increment("serving.not_a_real_counter")
            """
        )
        assert len(violations) == 1
        assert "serving.not_a_real_counter" in violations[0].message

    def test_declared_literal_clean(self):
        violations = lint(
            """
            from repro.runtime.metrics import metrics

            def f():
                metrics.increment("serving.requests")
                with metrics.timer("design_matrix"):
                    pass
            """
        )
        assert violations == []

    def test_dynamic_fstring_with_declared_prefix_clean(self):
        violations = lint(
            """
            from repro.runtime.metrics import metrics

            def f(name):
                metrics.increment(f"faults.injected.{name}")
            """
        )
        assert violations == []

    def test_dynamic_fstring_with_unknown_prefix_flagged(self):
        violations = lint(
            """
            from repro.runtime.metrics import metrics

            def f(name):
                metrics.increment(f"serving.dynamic.{name}")
            """
        )
        assert len(violations) == 1

    def test_variable_argument_skipped(self):
        violations = lint(
            """
            from repro.runtime.metrics import metrics

            def f(name):
                metrics.increment(name)
            """
        )
        assert violations == []

    def test_non_metrics_receiver_ignored(self):
        violations = lint(
            """
            def f(registry):
                registry.increment("definitely.not.declared")
            """
        )
        assert violations == []

    def test_tests_exempt(self):
        violations = lint(
            """
            from repro.runtime.metrics import metrics

            def f():
                metrics.increment("tests.scratch_counter")
            """,
            is_test=True,
        )
        assert violations == []

    def test_timer_literal_checked_too(self):
        violations = lint(
            """
            from repro.runtime.metrics import metrics

            def f():
                with metrics.timer("not.a.timer"):
                    pass
            """
        )
        assert len(violations) == 1
