"""Integration: performance modeling of a text-netlist circuit.

Exercises the netlist parser + DC engine as a Monte Carlo "simulator" for
a common-source amplifier whose threshold voltage and load resistor vary,
then fits and uses a performance model -- the workflow a downstream user
would run on their own SPICE decks.
"""

import numpy as np
import pytest

from repro.applications import estimate_yield
from repro.basis import OrthonormalBasis
from repro.regression import LeastSquaresRegressor
from repro.spice import dc_operating_point, parse_netlist

TEMPLATE = """cs amplifier
VDD vdd 0 1.8
VG g 0 0.9
RD vdd d {rd}
M1 d g 0 NMOS kp=2e-4 vth={vth} lambda=0.02
"""


def simulate_output_voltage(samples: np.ndarray) -> np.ndarray:
    """DC output voltage under (vth, rd) variation."""
    out = np.empty(samples.shape[0])
    for k, (x_vth, x_rd) in enumerate(samples):
        netlist = TEMPLATE.format(
            vth=0.5 + 0.02 * x_vth, rd=10e3 * (1 + 0.05 * x_rd)
        )
        circuit = parse_netlist(netlist)
        out[k] = dc_operating_point(circuit).voltage("d")
    return out


class TestNetlistModelingFlow:
    @pytest.fixture(scope="class")
    def model(self):
        rng = np.random.default_rng(31)
        basis = OrthonormalBasis.total_degree(2, 2)
        x = rng.standard_normal((60, 2))
        f = simulate_output_voltage(x)
        regressor = LeastSquaresRegressor(basis).fit(x, f)
        return basis, regressor.fitted_model()

    def test_model_is_accurate(self, model):
        _basis, fitted = model
        rng = np.random.default_rng(32)
        x_test = rng.standard_normal((40, 2))
        f_test = simulate_output_voltage(x_test)
        assert fitted.error_on(x_test, f_test) < 0.01

    def test_sensitivities_have_physical_signs(self, model):
        _basis, fitted = model
        # Higher vth -> less current -> higher Vd: positive coefficient.
        vth_coefficient = fitted.coefficients[1]
        assert vth_coefficient > 0
        # Bigger RD -> more drop -> lower Vd: negative coefficient.
        rd_coefficient = fitted.coefficients[2]
        assert rd_coefficient < 0

    def test_model_supports_yield(self, model):
        _basis, fitted = model
        rng = np.random.default_rng(33)
        nominal = float(fitted.predict(np.zeros(2)))
        estimate = estimate_yield(
            fitted, 50_000, rng, spec_low=nominal - 0.1, spec_high=nominal + 0.1
        )
        assert 0.5 < estimate.probability <= 1.0
