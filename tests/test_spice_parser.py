"""Unit tests for the SPICE-style netlist parser."""

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    CurrentSource,
    Mosfet,
    NetlistSyntaxError,
    PiecewiseLinear,
    Pulse,
    Resistor,
    Sine,
    Vccs,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
    parse_netlist,
    parse_value,
)


class TestParseValue:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("1", 1.0),
            ("2.5", 2.5),
            ("-3e-2", -0.03),
            ("1k", 1e3),
            ("2.2K", 2.2e3),
            ("10meg", 1e7),
            ("5u", 5e-6),
            ("100n", 1e-7),
            ("10p", 1e-11),
            ("3f", 3e-15),
            ("1g", 1e9),
            ("2t", 2e12),
            ("1m", 1e-3),
            ("10pF", 1e-11),  # trailing unit letters ignored
            ("5kOhm", 5e3),
        ],
    )
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_value("abc")


class TestElementCards:
    def test_rc_divider(self):
        circuit = parse_netlist(
            """test divider
            V1 in 0 2.0
            R1 in out 1k
            R2 out 0 3k
            """
        )
        assert circuit.name == "test divider"
        assert len(circuit.elements) == 3
        assert isinstance(circuit.element("R1"), Resistor)
        op = dc_operating_point(circuit)
        assert op.voltage("out") == pytest.approx(1.5)

    def test_capacitor_and_comment_handling(self):
        circuit = parse_netlist(
            """* all comments
            C1 a 0 10p  * ten picofarad
            R1 a 0 1k   ; shunt
            .end
            """
        )
        assert isinstance(circuit.element("C1"), Capacitor)
        assert circuit.element("C1").capacitance == pytest.approx(1e-11)

    def test_pulse_source(self):
        circuit = parse_netlist("V1 n 0 PULSE(0 1 1n 10p 10p 5n)\nR1 n 0 1k\n")
        source = circuit.element("V1")
        assert isinstance(source.waveform, Pulse)
        assert source.waveform.value(3e-9) == pytest.approx(1.0)

    def test_sin_source(self):
        circuit = parse_netlist("I1 n 0 SIN(0 1m 1meg)\nR1 n 0 1k\n")
        assert isinstance(circuit.element("I1").waveform, Sine)

    def test_pwl_source(self):
        circuit = parse_netlist("V1 n 0 PWL(0 0 1n 1 2n 0)\nR1 n 0 1k\n")
        wave = circuit.element("V1").waveform
        assert isinstance(wave, PiecewiseLinear)
        assert wave.value(0.5e-9) == pytest.approx(0.5)

    def test_dc_keyword_and_ac_marker(self):
        circuit = parse_netlist("VIN in 0 DC 0.65 AC\nR1 in 0 1k\n")
        op = dc_operating_point(circuit)
        assert op.voltage("in") == pytest.approx(0.65)

    def test_vccs(self):
        circuit = parse_netlist(
            """G1 0 out c 0 1m
            VC c 0 0.5
            RC c 0 1meg
            RL out 0 2k
            """
        )
        assert isinstance(circuit.element("G1"), Vccs)
        op = dc_operating_point(circuit)
        assert op.voltage("out") == pytest.approx(1.0)

    def test_mosfet_card(self):
        circuit = parse_netlist(
            """VDD vdd 0 1.8
            VG g 0 0.9
            RD vdd d 10k
            M1 d g 0 NMOS kp=2e-4 vth=0.5 lambda=0
            """
        )
        fet = circuit.element("M1")
        assert isinstance(fet, Mosfet)
        assert fet.polarity == "nmos"
        op = dc_operating_point(circuit)
        ids = 0.5 * 2e-4 * 0.4**2
        assert op.voltage("d") == pytest.approx(1.8 - 10e3 * ids, rel=1e-4)

    def test_pmos_card(self):
        circuit = parse_netlist(
            "M2 d g vdd PMOS kp=1m vth=0.4\nVD vdd 0 1.2\nR1 d 0 1k\nVG g 0 0.5\n"
        )
        assert circuit.element("M2").polarity == "pmos"
        assert circuit.element("M2").kp == pytest.approx(1e-3)

    def test_full_amplifier_netlist_runs_ac(self):
        circuit = parse_netlist(
            """common source amp
            VDD vdd 0 1.8
            VG g 0 0.9
            RD vdd d 10k
            CL d 0 1p
            M1 d g 0 NMOS kp=2e-4 vth=0.5 lambda=0.02
            """
        )
        result = ac_analysis(circuit, [1.0], "VG")
        assert result.gain("d")[0] > 0.5


class TestErrors:
    def test_unknown_element(self):
        with pytest.raises(NetlistSyntaxError, match="unknown element"):
            parse_netlist("title\nQ1 c b e model\nR1 a 0 1\n")

    def test_too_few_fields(self):
        with pytest.raises(NetlistSyntaxError, match="at least"):
            parse_netlist("title\nR1 a 0\n")

    def test_bad_value(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("R1 a 0 banana\n")

    def test_mosfet_missing_params(self):
        with pytest.raises(NetlistSyntaxError, match="kp= and vth="):
            parse_netlist("M1 d g s NMOS\n")

    def test_mosfet_unknown_model(self):
        with pytest.raises(NetlistSyntaxError, match="unknown model"):
            parse_netlist("M1 d g s JFET kp=1m vth=0.4\n")

    def test_error_reports_line_number(self):
        try:
            parse_netlist("R1 a 0 1k\nR2 b 0 oops\n")
        except NetlistSyntaxError as error:
            assert error.line_number == 2
        else:  # pragma: no cover
            pytest.fail("expected NetlistSyntaxError")

    def test_pwl_odd_values_rejected(self):
        with pytest.raises(NetlistSyntaxError, match="even number"):
            parse_netlist("V1 a 0 PWL(0 0 1n)\n")


class TestTitleHandling:
    def test_first_line_as_title(self):
        circuit = parse_netlist("my circuit title\nR1 a 0 1k\n")
        assert circuit.name == "my circuit title"

    def test_element_first_line_is_not_a_title(self):
        circuit = parse_netlist("R1 a 0 1k\nR2 a 0 2k\n")
        assert len(circuit.elements) == 2

    def test_explicit_name_overrides(self):
        circuit = parse_netlist("title here\nR1 a 0 1k\n", name="override")
        assert circuit.name == "override"
