"""Overload protection and stats consistency for the prediction engine.

The bounded request queue's admission-control contract, exercised
deterministically by pausing the dispatcher so tests can stage an exact
backlog:

* a full queue sheds its **oldest already-expired** entries first
  (``serving.shed.expired``; their futures fail with
  :class:`~repro.faults.DeadlineExpiredError`),
* if still full, the new submit is rejected immediately with
  :class:`~repro.serving.EngineOverloadedError`
  (``serving.shed.rejected``),
* the queue depth never exceeds the bound (``peak_queue_depth``),
* :meth:`~repro.serving.PredictionEngine.stats` is one
  point-in-time-consistent snapshot carrying the queue fields.
"""

from __future__ import annotations

import queue
import time

import numpy as np
import pytest

from repro.basis import OrthonormalBasis, total_degree_index_set
from repro.faults import Deadline, DeadlineExpiredError
from repro.regression import FittedModel
from repro.runtime.metrics import metrics
from repro.serving import (
    EngineOverloadedError,
    EngineStoppedError,
    ModelRegistry,
    PredictionEngine,
)
from repro.serving.engine import _STOP, _BoundedRequestQueue, _Request

NUM_VARS = 3


def _counter(name):
    return metrics.counters().get(name, 0)


def _expired_deadline():
    deadline = Deadline.after(1e-9)
    while not deadline.expired:  # nanosecond fuse; burns out instantly
        pass
    return deadline


@pytest.fixture
def registry():
    basis = OrthonormalBasis(NUM_VARS, total_degree_index_set(NUM_VARS, 1))
    coeffs = np.arange(1.0, len(basis.indices) + 1.0)
    out = ModelRegistry()
    out.publish("power", FittedModel(basis, coeffs))
    return out


@pytest.fixture
def sample():
    return np.zeros(NUM_VARS)


class TestAdmissionControl:
    def test_full_queue_rejects_live_submits(self, registry, sample):
        with PredictionEngine(registry, max_queue_depth=3, workers=1) as engine:
            engine.pause_dispatch()
            futures = [engine.submit("power", sample) for _ in range(3)]
            before = _counter("serving.shed.rejected")
            with pytest.raises(EngineOverloadedError, match="queue full"):
                engine.submit("power", sample)
            assert _counter("serving.shed.rejected") - before == 1
            stats = engine.stats()
            assert stats["queue_depth"] == 3
            assert stats["shed_rejected"] == 1
            engine.resume_dispatch()
            for future in futures:
                assert future.result(timeout=10.0).shape == (1,)

    def test_oldest_expired_shed_first(self, registry, sample):
        with PredictionEngine(registry, max_queue_depth=3, workers=1) as engine:
            engine.pause_dispatch()
            stale_first = engine.submit(
                "power", sample, deadline=_expired_deadline()
            )
            live = engine.submit("power", sample)
            stale_second = engine.submit(
                "power", sample, deadline=_expired_deadline()
            )
            before = _counter("serving.shed.expired")
            newcomer = engine.submit("power", sample)
            # Exactly one eviction makes room; FIFO order picks the oldest.
            assert _counter("serving.shed.expired") - before == 1
            assert stale_first.done()
            with pytest.raises(DeadlineExpiredError, match="shed under overload"):
                stale_first.result()
            assert not stale_second.done()
            assert engine.stats()["queue_depth"] == 3
            engine.resume_dispatch()
            assert live.result(timeout=10.0).shape == (1,)
            assert newcomer.result(timeout=10.0).shape == (1,)
            with pytest.raises(DeadlineExpiredError):
                stale_second.result(timeout=10.0)

    def test_rejected_only_after_shedding_cannot_make_room(self, registry, sample):
        with PredictionEngine(registry, max_queue_depth=2, workers=1) as engine:
            engine.pause_dispatch()
            engine.submit("power", sample)
            engine.submit("power", sample)
            # All queued entries are live: nothing sheddable, so reject.
            with pytest.raises(EngineOverloadedError):
                engine.submit("power", sample)
            stats = engine.stats()
            assert stats["shed_expired"] == 0
            assert stats["shed_rejected"] == 1
            engine.resume_dispatch()

    def test_peak_depth_never_exceeds_bound(self, registry, sample):
        bound = 4
        with PredictionEngine(
            registry, max_queue_depth=bound, workers=1
        ) as engine:
            engine.pause_dispatch()
            staged = [
                engine.submit("power", sample, deadline=_expired_deadline())
                for _ in range(bound)
            ]
            rejected = 0
            for _ in range(2 * bound):
                try:
                    engine.submit("power", sample)
                except EngineOverloadedError:
                    rejected += 1
            stats = engine.stats()
            assert stats["peak_queue_depth"] <= bound
            assert stats["queue_depth"] == bound
            assert stats["shed_expired"] == bound  # every stale one evicted
            assert rejected == bound
            engine.resume_dispatch()
            for future in staged:
                assert future.done()

    def test_unbounded_queue_never_rejects(self, registry, sample):
        with PredictionEngine(registry, max_queue_depth=None, workers=1) as engine:
            engine.pause_dispatch()
            futures = [engine.submit("power", sample) for _ in range(64)]
            stats = engine.stats()
            assert stats["queue_bound"] is None
            assert stats["queue_depth"] == 64
            engine.resume_dispatch()
            for future in futures:
                assert future.result(timeout=10.0).shape == (1,)

    def test_invalid_bound_rejected(self, registry):
        with pytest.raises(ValueError, match="max_queue_depth"):
            PredictionEngine(registry, max_queue_depth=0)

    def test_rejected_submits_do_not_count_as_admitted(self, registry, sample):
        with PredictionEngine(registry, max_queue_depth=1, workers=1) as engine:
            engine.pause_dispatch()
            stale = engine.submit("power", sample, deadline=_expired_deadline())
            # A full queue of sheddable entries never starves live work:
            # the stale entry is evicted and the newcomer admitted.
            live = engine.submit("power", sample)
            assert stale.done()
            requests_before = engine.stats()["requests"]
            with pytest.raises(EngineOverloadedError):
                engine.submit("power", sample)  # live occupant: no room now
            # The rejected submit never entered the queue, so the admitted
            # request count did not move.
            stats = engine.stats()
            assert stats["requests"] == requests_before
            assert stats["queue_depth"] == 1
            engine.resume_dispatch()
            assert live.result(timeout=10.0).shape == (1,)


class TestPredictTimeoutBudget:
    """Regression: ``predict(timeout=t)`` used to pass ``t`` to both the
    submit deadline and ``Future.result``, restarting the clock at the
    wait -- a request stuck in the queue blocked for ~2t before raising.
    One deadline is computed at entry and the wait gets only what is
    left of it."""

    def test_timeout_is_charged_once(self, registry, sample):
        budget = 0.5
        with PredictionEngine(registry, max_queue_depth=4, workers=1) as engine:
            engine.pause_dispatch()  # the request can never be served
            start = time.perf_counter()
            with pytest.raises(TimeoutError):
                engine.predict("power", sample, timeout=budget)
            elapsed = time.perf_counter() - start
            engine.resume_dispatch()
        # One budget, not two: the double-charge bug took ~2t.
        assert budget * 0.9 <= elapsed < budget * 1.5

    def test_abandoned_request_expires_instead_of_ghost_evaluating(
        self, registry, sample
    ):
        """The deadline travels with the queued request, so after the
        caller gives up the dispatcher drops it -- no ghost evaluation."""
        with PredictionEngine(registry, max_queue_depth=4, workers=1) as engine:
            engine.pause_dispatch()
            before = _counter("serving.expired")
            with pytest.raises(TimeoutError):
                engine.predict("power", sample, timeout=0.05)
            engine.resume_dispatch()
            deadline = Deadline.after(5.0)
            while (
                _counter("serving.expired") == before and not deadline.expired
            ):
                time.sleep(0.005)
            assert _counter("serving.expired") - before == 1
            assert engine.stats()["batches"] == 0  # never evaluated

    def test_timeout_none_blocks_until_served(self, registry, sample):
        with PredictionEngine(registry, max_queue_depth=4, workers=1) as engine:
            assert engine.predict("power", sample, timeout=None).shape == (1,)


class TestBoundedQueuePauseStop:
    """The queue's pause/stop contract, at the queue level and end to end.

    Regression territory: a paused dispatcher never wakes for the stop
    sentinel on its own (``get`` blocks while paused no matter what is
    queued), so ``stop()`` must resume the queue after planting the
    sentinel and then drain-fail whatever the dispatcher left behind."""

    def _request(self, sample, deadline=None):
        return _Request(
            name="power",
            x=sample[None, :],
            enqueued_at=time.perf_counter(),
            deadline=deadline,
        )

    def test_paused_get_times_out_even_with_items_queued(self, sample):
        bounded = _BoundedRequestQueue(bound=4)
        bounded.pause()
        admitted, shed = bounded.offer(self._request(sample))
        assert admitted and shed == []
        bounded.put_sentinel(_STOP)
        with pytest.raises(queue.Empty):
            bounded.get(timeout=0.05)  # pause gates sentinels too

    def test_resume_delivers_backlog_then_sentinel_fifo(self, sample):
        bounded = _BoundedRequestQueue(bound=4)
        bounded.pause()
        first = self._request(sample)
        second = self._request(sample)
        bounded.offer(first)
        bounded.offer(second)
        bounded.put_sentinel(_STOP)
        assert bounded.depth() == 2  # sentinels never count as depth
        bounded.resume()
        assert bounded.get(timeout=1.0) is first
        assert bounded.get(timeout=1.0) is second
        assert bounded.get(timeout=1.0) is _STOP
        assert bounded.depth() == 0

    def test_stop_while_paused_resolves_every_future(self, registry, sample):
        engine = PredictionEngine(registry, max_queue_depth=8, workers=1)
        engine.start()
        engine.pause_dispatch()
        futures = [engine.submit("power", sample) for _ in range(5)]
        engine.stop()  # must not hang on the paused dispatcher
        for future in futures:
            assert future.done()
            if future.exception() is not None:
                assert isinstance(future.exception(), EngineStoppedError)
        with pytest.raises(EngineStoppedError):
            engine.submit("power", sample)

    def test_backlog_behind_the_sentinel_is_drain_failed(
        self, registry, sample
    ):
        """Deterministic drain path: a sentinel planted *ahead* of the
        backlog makes the dispatcher exit before serving it, so stop()'s
        drain must fail every queued request fast."""
        engine = PredictionEngine(registry, max_queue_depth=8, workers=1)
        engine.start()
        engine.pause_dispatch()
        engine._queue.put_sentinel(_STOP)
        futures = [engine.submit("power", sample) for _ in range(3)]
        drops_before = _counter("serving.shutdown_drops")
        engine.stop()
        assert _counter("serving.shutdown_drops") - drops_before == 3
        for future in futures:
            with pytest.raises(EngineStoppedError):
                future.result()


class TestLifecycleWhilePaused:
    def test_stop_drains_a_paused_engine(self, registry, sample):
        engine = PredictionEngine(registry, max_queue_depth=4, workers=1)
        engine.start()
        engine.pause_dispatch()
        future = engine.submit("power", sample)
        engine.stop()  # implies resume: the stop sentinel must be seen
        # The queued request either got flushed or failed fast -- never
        # left dangling.
        assert future.done()
        if future.exception() is None:
            assert future.result().shape == (1,)
        else:
            assert isinstance(future.exception(), EngineStoppedError)
        with pytest.raises(EngineStoppedError):
            engine.submit("power", sample)

    def test_pause_resume_are_idempotent(self, registry, sample):
        with PredictionEngine(registry, max_queue_depth=4) as engine:
            engine.pause_dispatch()
            engine.pause_dispatch()
            future = engine.submit("power", sample)
            engine.resume_dispatch()
            engine.resume_dispatch()
            assert future.result(timeout=10.0).shape == (1,)


class TestStatsSnapshot:
    EXPECTED_KEYS = {
        "requests",
        "rows",
        "batches",
        "mean_batch_requests",
        "mean_latency_seconds",
        "max_latency_seconds",
        "expired",
        "retries",
        "degraded",
        "failed",
        "max_version_lag",
        "shed_expired",
        "shed_rejected",
        "queue_depth",
        "peak_queue_depth",
        "queue_bound",
        "breaker",
        "cancelled",
        "brownout_shed",
        "limit",
        "health_score",
        "live",
        "ready",
        "brownout_active",
    }

    def test_stats_carries_every_field_in_one_snapshot(self, registry, sample):
        with PredictionEngine(registry, max_queue_depth=8) as engine:
            engine.predict("power", sample)
            stats = engine.stats()
        assert set(stats) == self.EXPECTED_KEYS
        assert stats["requests"] == 1
        assert stats["queue_bound"] == 8
        assert isinstance(stats["breaker"], dict)

    def test_queue_fields_reflect_live_state(self, registry, sample):
        with PredictionEngine(registry, max_queue_depth=8) as engine:
            engine.pause_dispatch()
            for _ in range(5):
                engine.submit("power", sample)
            stats = engine.stats()
            assert stats["queue_depth"] == 5
            assert stats["peak_queue_depth"] == 5
            engine.resume_dispatch()

    def test_breaker_disabled_snapshot_is_empty(self, registry, sample):
        with PredictionEngine(registry, breaker=None, max_queue_depth=8) as engine:
            engine.predict("power", sample)
            assert engine.stats()["breaker"] == {}
