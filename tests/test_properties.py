"""Property-based tests (hypothesis) for the core mathematical invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.basis import OrthonormalBasis, hermite_he
from repro.bmf import (
    FingerMap,
    map_estimate,
    map_prior_coefficients,
    nonzero_mean_prior,
    zero_mean_prior,
)
from repro.linalg import solve_diag_plus_gram, solve_diag_plus_gram_direct
from repro.regression import relative_error
from repro.regression.elastic_net import _soft_threshold


finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestHermiteProperties:
    @given(st.integers(min_value=0, max_value=12), finite_floats)
    def test_recurrence_holds_pointwise(self, degree, value):
        """He_{n+1}(x) = x He_n(x) - n He_{n-1}(x) at arbitrary points."""
        x = np.array([value])
        left = hermite_he(degree + 1, x)[0]
        right = value * hermite_he(degree, x)[0]
        if degree >= 1:
            right -= degree * hermite_he(degree - 1, x)[0]
        assert left == pytest.approx(right, rel=1e-9, abs=1e-6)

    @given(st.integers(min_value=0, max_value=10))
    def test_parity(self, degree):
        """He_n is even/odd as n is even/odd."""
        x = np.linspace(0.1, 3.0, 7)
        plus = hermite_he(degree, x)
        minus = hermite_he(degree, -x)
        sign = 1.0 if degree % 2 == 0 else -1.0
        assert np.allclose(minus, sign * plus)


class TestWoodburyProperty:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_fast_equals_direct(self, num_samples, num_terms, seed, scale):
        """The low-rank solve is exact for arbitrary well-posed systems."""
        rng = np.random.default_rng(seed)
        design = rng.standard_normal((num_samples, num_terms))
        diag = rng.uniform(0.1, 10.0, num_terms)
        rhs = rng.standard_normal(num_terms)
        fast = solve_diag_plus_gram(diag, design, rhs, scale)
        direct = solve_diag_plus_gram_direct(diag, design, rhs, scale)
        reference = max(float(np.max(np.abs(direct))), 1e-12)
        assert np.max(np.abs(fast - direct)) < 1e-7 * reference


class TestMapEstimateProperties:
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_posterior_between_prior_and_data(self, num_samples, num_terms, seed):
        """Huge eta returns the prior mean; the MAP estimate never blows up
        beyond what either the prior or the data support."""
        rng = np.random.default_rng(seed)
        design = rng.standard_normal((num_samples, num_terms))
        early = rng.standard_normal(num_terms) + 0.1
        target = design @ early + 0.01 * rng.standard_normal(num_samples)
        prior = nonzero_mean_prior(early)
        strong = map_estimate(design, target, prior, 1e12)
        assert np.allclose(strong, early, atol=1e-3 * (1 + np.abs(early)).max())

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_zero_mean_shrinks_toward_zero_with_eta(self, seed):
        """For the zero-mean prior, larger eta gives smaller coefficients."""
        rng = np.random.default_rng(seed)
        design = rng.standard_normal((8, 20))
        target = rng.standard_normal(8)
        prior = zero_mean_prior(rng.uniform(0.5, 2.0, 20))
        weak = map_estimate(design, target, prior, 1e-3)
        strong = map_estimate(design, target, prior, 1e3)
        assert np.linalg.norm(strong) <= np.linalg.norm(weak) + 1e-9


class TestPriorMappingProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_linear_energy_preserved(self, finger_counts, seed):
        """Eq. (46): alpha^2 = sum_t beta_t^2 for every mapped group."""
        rng = np.random.default_rng(seed)
        num_vars = len(finger_counts)
        basis = OrthonormalBasis.linear(num_vars)
        alpha = rng.standard_normal(basis.size)
        mapping = map_prior_coefficients(basis, alpha, FingerMap(tuple(finger_counts)))
        for m, group in enumerate(mapping.groups):
            energy = sum(mapping.beta[i] ** 2 for i in group)
            assert energy == pytest.approx(alpha[m] ** 2, rel=1e-9, abs=1e-12)

    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=3),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_linear_prediction_equivalence(self, finger_counts, seed):
        """Mapped model on finger samples == early model on projected ones."""
        rng = np.random.default_rng(seed)
        num_vars = len(finger_counts)
        basis = OrthonormalBasis.linear(num_vars)
        alpha = rng.standard_normal(basis.size)
        fmap = FingerMap(tuple(finger_counts))
        mapping = map_prior_coefficients(basis, alpha, fmap)
        late = rng.standard_normal((20, fmap.num_late_vars))
        early_values = basis.evaluate(alpha, fmap.project_samples(late))
        mapped_values = mapping.late_basis.evaluate(mapping.beta, late)
        assert np.allclose(early_values, mapped_values, atol=1e-9)


class TestMetricProperties:
    @given(
        npst.arrays(
            np.float64,
            st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-100, max_value=100),
        ),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_relative_error_scale_invariant(self, actual, factor):
        # Below ~1e-150 the squared elements inside the norm fall into the
        # subnormal range, where sqrt carries only a handful of significant
        # bits and exact scale invariance genuinely breaks down.
        if np.linalg.norm(actual) < 1e-100:
            return
        predicted = actual * 1.1 + 0.5
        original = relative_error(predicted, actual)
        scaled = relative_error(factor * predicted, factor * actual)
        assert scaled == pytest.approx(original, rel=1e-9)

    @given(finite_floats, st.floats(min_value=0, max_value=1e6))
    def test_soft_threshold_properties(self, value, threshold):
        result = _soft_threshold(value, threshold)
        # Shrinks magnitude by at most the threshold, never flips sign.
        assert abs(result) <= max(abs(value) - threshold, 0.0) + 1e-12
        assert result * value >= 0.0


class TestBasisProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_design_matrix_row_independence(self, num_vars, degree, seed):
        """Each design-matrix row depends only on its own sample."""
        rng = np.random.default_rng(seed)
        basis = OrthonormalBasis.total_degree(num_vars, degree)
        x = rng.standard_normal((5, num_vars))
        full = basis.design_matrix(x)
        for k in range(5):
            row = basis.design_matrix(x[k : k + 1])
            assert np.allclose(full[k], row[0])
