"""Tests for generational store compaction and point-in-time recovery.

Covers the generation layout and ``CURRENT``-pointer swing, history-window
selection, crash-at-every-failpoint atomicity (a crash mid-compaction
leaves either the old or the new generation fully live, never a hybrid),
the follower no-skip/no-double-apply contract across a compaction
boundary, the generation-tagged quarantine audit trail, warm sequential
rearm from a compacted store, ``recover_at`` point-in-time recovery, and
a seeded publish/compact/crash fuzz sweep (chaos-marked; also run by the
nightly CI compaction-fuzz step).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.basis import OrthonormalBasis, total_degree_index_set
from repro.bmf import SequentialBmf
from repro.faults import FaultPlan, SimulatedCrash, inject
from repro.runtime.metrics import metrics
from repro.regression import FittedModel
from repro.serving import JournalFollower, ModelRegistry
from repro.store import (
    ModelRecord,
    ModelStore,
    RecoveryManager,
    compact,
    encode_record,
    stale_generations,
)


def _counter(name):
    return metrics.counters().get(name, 0)


def make_basis(num_vars=3, degree=1):
    return OrthonormalBasis(num_vars, total_degree_index_set(num_vars, degree))


def make_model(seed=0):
    basis = make_basis()
    coeffs = np.random.default_rng(seed).normal(size=len(basis.indices))
    return FittedModel(basis, coeffs)


def make_record(name="power", version=1, seed=0, **overrides):
    basis = make_basis()
    rng = np.random.default_rng(seed)
    fields = dict(
        name=name,
        version=version,
        key="deadbeef" * 4,
        published_at=123.5 + version,
        basis_digest=basis.cache_token(),
        basis_num_vars=basis.num_vars,
        basis_indices=tuple(basis.indices),
        coefficients=rng.normal(size=len(basis.indices)),
    )
    fields.update(overrides)
    return ModelRecord(**fields)


@pytest.fixture
def store(tmp_path):
    return ModelStore(tmp_path, use_fsync=False)


def publish_history(store, spec):
    """Append ``{name: num_versions}`` records; returns total appended."""
    total = 0
    for name, versions in spec.items():
        for version in range(1, versions + 1):
            store.append(make_record(name, version, seed=hash(name) % 97 + version))
            total += 1
    return total


def corrupt_file(path):
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestCompactionLayout:
    def test_swing_creates_generation_and_current_pointer(self, store, tmp_path):
        publish_history(store, {"power": 3, "gain": 1})
        report = compact(store, history_window=0)
        assert report.generation == 1
        assert report.previous_generation == 0
        assert (tmp_path / "CURRENT").read_text() == "gen-00000001\n"
        assert store.generation == 1
        assert store.generation_dir == tmp_path / "gen-00000001"
        assert store.records_dir == tmp_path / "gen-00000001" / "records"
        # Generation 0's payload was retired from the root.
        assert not (tmp_path / "records").exists()
        assert not (tmp_path / "journal.log").exists()

    def test_history_window_selects_survivors(self, store):
        publish_history(store, {"power": 5, "gain": 2})
        report = compact(store, history_window=1)
        assert report.kept == (
            ("gain", 1),
            ("gain", 2),
            ("power", 4),
            ("power", 5),
        )
        assert report.dropped == (("power", 1), ("power", 2), ("power", 3))
        assert report.checkpoint_offset == 7
        assert len(store.record_paths()) == 4

    def test_window_zero_keeps_only_latest(self, store):
        publish_history(store, {"power": 4})
        report = compact(store, history_window=0)
        assert report.kept == (("power", 4),)
        assert len(report.dropped) == 3

    def test_negative_window_rejected(self, store):
        with pytest.raises(ValueError, match="history_window"):
            compact(store, history_window=-1)

    def test_appends_land_in_the_new_generation(self, store):
        publish_history(store, {"power": 2})
        compact(store, history_window=0)
        store.append(make_record("power", 3, seed=3))
        assert (store.root / "gen-00000001" / "records" / store.record_filename(
            "power", 3
        )).exists()
        entries, torn = store.journal_entries()
        assert torn == 0
        assert [(e.name, e.version) for e in entries] == [("power", 3)]
        view = store.journal_view()
        assert view.checkpoint_offset == 2
        assert view.end_offset == 3

    def test_stacked_compactions_continue_global_offsets(self, store):
        publish_history(store, {"power": 3})
        compact(store, history_window=1)
        store.append(make_record("power", 4, seed=4))
        report = compact(store, history_window=0)
        assert report.generation == 2
        assert report.checkpoint_offset == 4
        assert report.kept == (("power", 4),)
        view = store.journal_view()
        assert view.generation == 2
        assert view.checkpoint_offset == 4
        assert view.end_offset == 4

    def test_unjournaled_record_is_rejournaled(self, store):
        publish_history(store, {"power": 1})
        # Simulate a crash between rename and journal append: a valid
        # record file the journal never mentions.
        stray = make_record("power", 2, seed=2)
        path = store.records_dir / store.record_filename("power", 2)
        path.write_bytes(encode_record(stray))
        report = compact(store, history_window=1)
        assert ("power", 2) in report.kept
        view = store.journal_view()
        assert [(e.name, e.version) for e in view.snapshot] == [
            ("power", 1),
            ("power", 2),
        ]
        scan = store.scan()
        assert scan.unjournaled == ()  # the audit trail is repaired

    def test_retire_false_leaves_old_generation_stale(self, store, tmp_path):
        publish_history(store, {"power": 2})
        report = compact(store, history_window=0, retire=False)
        assert report.retired == ()
        assert (tmp_path / "journal.log").exists()  # gen-0 payload untouched
        assert store.generation == 1
        # The stale payload is invisible to every read path...
        assert [p.name for p in store.record_paths()] == [
            store.record_filename("power", 2)
        ]
        # ...and the next compaction sweeps it.
        report2 = compact(store, history_window=0)
        assert not (tmp_path / "journal.log").exists()
        assert store.generation == report2.generation == 2

    def test_compaction_metrics_counted(self, store):
        publish_history(store, {"power": 3})
        before = {
            name: _counter(name)
            for name in (
                "store.compaction.runs",
                "store.compaction.kept",
                "store.compaction.dropped",
                "store.compaction.retired",
            )
        }
        compact(store, history_window=0)
        assert _counter("store.compaction.runs") - before["store.compaction.runs"] == 1
        assert _counter("store.compaction.kept") - before["store.compaction.kept"] == 1
        assert (
            _counter("store.compaction.dropped")
            - before["store.compaction.dropped"]
            == 2
        )
        assert (
            _counter("store.compaction.retired")
            - before["store.compaction.retired"]
            == 1
        )

    def test_recovery_from_compacted_matches_uncompacted(self, store, tmp_path):
        publish_history(store, {"power": 3, "gain": 2})
        mirror = ModelStore(tmp_path / "mirror", use_fsync=False)
        publish_history(mirror, {"power": 3, "gain": 2})
        compact(store, history_window=2)  # window covers every version
        recovered = RecoveryManager(store).recover(registry=ModelRegistry())
        baseline = RecoveryManager(mirror).recover(registry=ModelRegistry())
        assert recovered.registry.snapshot() == baseline.registry.snapshot()
        assert recovered.restored == baseline.restored
        assert recovered.generation == 1
        assert baseline.generation == 0


class TestCompactionCrash:
    """A crash mid-compaction leaves old XOR new fully live, never a hybrid."""

    def _baseline_snapshot(self, store):
        return RecoveryManager(store).recover(
            registry=ModelRegistry(max_versions=2), quarantine_corrupt=False
        ).registry.snapshot()

    @pytest.mark.parametrize(
        "failpoint", ["store.compact.swing", "store.compact.retire"]
    )
    def test_crash_leaves_one_generation_fully_live(self, store, failpoint):
        publish_history(store, {"power": 3, "gain": 2})
        before = self._baseline_snapshot(store)
        plan = FaultPlan.fail_once(failpoint, error=SimulatedCrash)
        with inject(plan):
            with pytest.raises(SimulatedCrash):
                compact(store, history_window=1)
        # The reopened store (a fresh process) is fully live either way:
        reopened = ModelStore(store.root, use_fsync=False)
        if failpoint == "store.compact.swing":
            assert reopened.generation == 0  # the swing never happened
        else:
            assert reopened.generation == 1  # the swing committed
        after = self._baseline_snapshot(reopened)
        assert after == before
        # Appends keep working, landing in the live generation.
        reopened.append(make_record("power", 4, seed=4))
        assert reopened.journal_view().end_offset == 6

    @pytest.mark.parametrize(
        "failpoint", ["store.compact.swing", "store.compact.retire"]
    )
    def test_next_compaction_sweeps_crash_garbage(self, store, failpoint):
        publish_history(store, {"power": 2})
        with inject(FaultPlan.fail_once(failpoint, error=SimulatedCrash)):
            with pytest.raises(SimulatedCrash):
                compact(store, history_window=0)
        reopened = ModelStore(store.root, use_fsync=False)
        assert len(stale_generations(reopened)) == 1
        report = compact(reopened, history_window=0)
        assert stale_generations(reopened) == []
        assert report.kept == (("power", 2),)
        recovered = RecoveryManager(reopened).recover()
        assert recovered.restored == (("power", 2),)

    def test_swing_crash_then_append_then_compact(self, store):
        publish_history(store, {"power": 2})
        with inject(
            FaultPlan.fail_once("store.compact.swing", error=SimulatedCrash)
        ):
            with pytest.raises(SimulatedCrash):
                compact(store, history_window=0)
        # Still generation 0: the append extends the original journal.
        store.append(make_record("power", 3, seed=3))
        view = store.journal_view()
        assert view.generation == 0 and view.end_offset == 3
        report = compact(store, history_window=0)
        assert report.kept == (("power", 3),)
        assert report.checkpoint_offset == 3


class TestFollowerAcrossCompaction:
    """Satellite: a follower never skips nor double-applies across a boundary."""

    def test_follower_neither_skips_nor_double_applies(self, store):
        primary = ModelRegistry(store=store)
        replica = ModelRegistry()
        follower = JournalFollower(store, replica)

        primary.publish("power", make_model(seed=1))
        primary.publish("power", make_model(seed=2))
        applied_before = _counter("serving.shard.replica_applied")
        assert follower.poll() == 2
        assert follower.offset == 2
        assert follower.generation == 0

        compact(store, history_window=1)
        primary.publish("power", make_model(seed=3))
        primary.publish("gain", make_model(seed=4))

        # Across the boundary: exactly the two new entries apply; the two
        # snapshot survivors the replica already holds are not re-applied.
        assert follower.poll() == 2
        assert follower.generation == 1
        assert follower.offset == store.journal_view().end_offset == 4
        assert _counter("serving.shard.replica_applied") - applied_before == 4
        assert replica.snapshot() == primary.snapshot()
        assert follower.poll() == 0  # quiescent: nothing applied twice
        assert follower.lag() == 0

    def test_follower_behind_checkpoint_replays_snapshot_once(self, store):
        primary = ModelRegistry(store=store)
        replica = ModelRegistry()
        follower = JournalFollower(store, replica)

        primary.publish("power", make_model(seed=1))
        assert follower.poll() == 1  # offset 1

        primary.publish("power", make_model(seed=2))
        primary.publish("gain", make_model(seed=3))
        compact(store, history_window=0)  # checkpoint offset 3 > follower's 1

        boundary_before = _counter("serving.shard.follower_boundary")
        skipped_before = _counter("serving.shard.replica_skipped")
        # power v2 and gain v1 were folded into the snapshot; they apply
        # exactly once.  power v1 is gone (superseded) -- the replica's
        # held v1 simply stays until v2 replaces it, never re-applied.
        assert follower.poll() == 2
        assert _counter("serving.shard.follower_boundary") - boundary_before == 1
        assert replica.current("power").version == 2
        assert replica.current("gain").version == 1
        assert follower.offset == 3
        # Re-polling after the boundary is quiescent and skip-free.
        assert follower.poll() == 0
        assert (
            _counter("serving.shard.replica_skipped") - skipped_before == 0
        )

    def test_resync_lands_on_global_offsets(self, store):
        primary = ModelRegistry(store=store)
        primary.publish("power", make_model(seed=1))
        primary.publish("power", make_model(seed=2))
        compact(store, history_window=0)
        primary.publish("power", make_model(seed=3))

        follower = JournalFollower(store, ModelRegistry())
        assert follower.resync() == 2  # v2 (snapshot) + v3 (live tail)
        assert follower.offset == 3
        assert follower.generation == 1
        assert follower.lag() == 0
        primary.publish("power", make_model(seed=4))
        assert follower.poll() == 1


class TestQuarantineAudit:
    """Satellite: generation-tagged quarantine evidence survives compaction."""

    def test_corrupt_survivor_quarantined_with_generation_tag(self, store):
        publish_history(store, {"power": 3})
        corrupt_file(store.records_dir / store.record_filename("power", 3))
        before = _counter("store.corrupt_quarantined")
        report = compact(store, history_window=0)
        assert _counter("store.corrupt_quarantined") - before == 1
        # The next-older version was promoted in the corrupt one's place.
        assert report.kept == (("power", 2),)
        assert len(report.quarantined) == 1
        quarantined = report.quarantined[0]
        assert quarantined.parent == store.root / "gen-00000001" / "quarantine"
        reason = quarantined.with_suffix(quarantined.suffix + ".reason")
        text = reason.read_text()
        assert "generation: 0" in text
        assert "checksum" in text or "decodes" in text or "CRC" in text

    def test_recovery_surfaces_compaction_quarantine_audit(self, store):
        publish_history(store, {"power": 3, "gain": 1})
        corrupt_file(store.records_dir / store.record_filename("power", 3))
        compact(store, history_window=0)
        report = RecoveryManager(store).recover()
        filename = store.record_filename("power", 3)
        assert report.compaction_quarantined == (("power", 3, filename),)
        # Quarantined records are neither restored nor double-counted.
        assert ("power", 3) not in report.restored
        assert report.missing == ()
        assert report.restored == (("gain", 1), ("power", 2))
        assert report.generation == 1

    def test_live_quarantine_sidecar_tags_current_generation(self, store):
        publish_history(store, {"power": 1})
        compact(store, history_window=0)
        store.append(make_record("power", 2, seed=2))
        path = store.records_dir / store.record_filename("power", 2)
        corrupt_file(path)
        target = store.quarantine(path, "checksum mismatch")
        text = target.with_suffix(target.suffix + ".reason").read_text()
        assert "generation: 1" in text

    def test_old_generation_quarantine_salvaged_on_retire(self, store):
        publish_history(store, {"power": 2})
        corrupt_file(store.records_dir / store.record_filename("power", 2))
        store.scan()  # quarantines the corrupt record into gen 0
        assert len(list(store.quarantine_dir.iterdir())) >= 1
        compact(store, history_window=0)
        salvaged = sorted(
            p.name for p in (store.generation_dir / "quarantine").iterdir()
        )
        assert any(
            name.startswith(store.record_filename("power", 2)) for name in salvaged
        )


class TestSequentialRearmAcrossCompaction:
    """Satellite: warm-restart state survives compaction at any window."""

    @pytest.mark.parametrize("history_window", [0, 1, 2])
    def test_rearm_from_compacted_store_is_incremental(
        self, tmp_path, history_window
    ):
        basis = make_basis(num_vars=2, degree=2)
        rng = np.random.default_rng(11)
        alpha = rng.normal(size=len(basis.indices))

        def draw(n):
            x = rng.normal(size=(n, basis.num_vars))
            f = basis.design_matrix(x) @ alpha + 0.01 * rng.normal(size=n)
            return x, f

        def fitter():
            return SequentialBmf(basis, alpha, prior_kind="nonzero-mean", eta=1e-3)

        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        crashed = fitter()
        for _ in range(2):
            x, f = draw(25)
            crashed.add_samples(x, f)
            registry.publish("power", crashed)
        del crashed, registry

        compact(store, history_window=history_window)

        recovery = RecoveryManager(ModelStore(tmp_path, use_fsync=False)).recover()
        state = recovery.sequential_state("power")
        assert state is not None

        rearms_before = _counter("sequential.rearms")
        fallbacks_before = _counter("woodbury.fallbacks")
        rearmed = fitter().rearm(state)
        assert rearmed.last_refit_mode == "rearmed"
        x, f = draw(10)
        rearmed.add_samples(x, f)
        assert rearmed.last_refit_mode == "incremental"
        assert _counter("sequential.rearms") - rearms_before == 1
        assert _counter("woodbury.fallbacks") - fallbacks_before == 0


class TestPointInTimeRecovery:
    def test_recover_at_prefixes_and_range(self, store):
        publish_history(store, {"power": 3, "gain": 2})
        rm = RecoveryManager(store)
        assert rm.recover_at(0).restored == ()
        assert rm.recover_at(2).restored == (("power", 1), ("power", 2))
        assert rm.recover_at(5).restored == (
            ("power", 1),
            ("power", 2),
            ("power", 3),
            ("gain", 1),
            ("gain", 2),
        )
        with pytest.raises(ValueError, match="outside the recoverable range"):
            rm.recover_at(6)
        with pytest.raises(ValueError, match="outside the recoverable range"):
            rm.recover_at(-1)

    def test_recover_at_after_compaction(self, store):
        publish_history(store, {"power": 3})
        compact(store, history_window=1)  # checkpoint offset 3
        store.append(make_record("power", 4, seed=4))
        rm = RecoveryManager(store)
        before = _counter("store.pitr.recoveries")
        checkpoint_state = rm.recover_at(3)
        assert checkpoint_state.restored == (("power", 2), ("power", 3))
        assert rm.recover_at(4).restored == (
            ("power", 2),
            ("power", 3),
            ("power", 4),
        )
        assert _counter("store.pitr.recoveries") - before == 2
        with pytest.raises(ValueError, match="compacted away"):
            rm.recover_at(2)

    def test_recover_at_is_read_only(self, store):
        publish_history(store, {"power": 2})
        corrupt_file(store.records_dir / store.record_filename("power", 2))
        rm = RecoveryManager(store)
        report = rm.recover_at(2)
        assert report.restored == (("power", 1),)
        assert [(n, v) for n, v, _ in report.rejected] == [("power", 2)]
        assert report.quarantined == ()
        # The corrupt file is still in place: PITR never mutates the store.
        assert (store.records_dir / store.record_filename("power", 2)).exists()


@pytest.mark.chaos
class TestCompactionFuzz:
    """Random publish/compact/crash schedules: compaction never loses data.

    The mirror store receives every publish but never compacts; after an
    arbitrary schedule the compacted store must recover to the same
    registry state (``max_versions`` small enough that the history window
    covers it).  Part of the nightly CI compaction-fuzz step.
    """

    def _seeds(self):
        raw = os.environ.get("REPRO_CHAOS_SEEDS", "0")
        return tuple(int(s) for s in raw.split(",") if s.strip())

    def test_compaction_fuzz_differential(self, tmp_path):
        for seed in self._seeds():
            self._run_one(tmp_path / f"seed-{seed}", seed)

    def _run_one(self, root, seed):
        rng = np.random.default_rng(seed)
        subject = ModelStore(root / "subject", use_fsync=False)
        mirror = ModelStore(root / "mirror", use_fsync=False)
        names = ["power", "gain", "delay"]
        versions = {name: 0 for name in names}

        for step in range(30):
            op = rng.integers(0, 10)
            if op < 7:  # publish
                name = names[int(rng.integers(0, len(names)))]
                versions[name] += 1
                record = make_record(
                    name, versions[name], seed=1000 * seed + step
                )
                subject.append(record)
                mirror.append(record)
            else:  # compact, sometimes crashing at a random failpoint
                window = int(rng.integers(1, 3))
                crash = int(rng.integers(0, 3))
                if crash == 0:
                    compact(subject, history_window=window)
                else:
                    failpoint = (
                        "store.compact.swing"
                        if crash == 1
                        else "store.compact.retire"
                    )
                    plan = FaultPlan.fail_once(failpoint, error=SimulatedCrash)
                    with inject(plan):
                        with pytest.raises(SimulatedCrash):
                            compact(subject, history_window=window)
                    subject = ModelStore(root / "subject", use_fsync=False)

        recovered = RecoveryManager(subject).recover(
            registry=ModelRegistry(max_versions=2)
        )
        baseline = RecoveryManager(mirror).recover(
            registry=ModelRegistry(max_versions=2)
        )
        assert recovered.registry.snapshot() == baseline.registry.snapshot()
        assert recovered.torn_journal_lines == 0
        # Global offsets survived every boundary: the journal end equals
        # the total number of publishes ever made.
        assert subject.journal_view().end_offset == sum(versions.values())
