"""Unit tests for the fault-injection substrate (repro.faults)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.faults import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExpiredError,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    failpoint,
    inject,
    known_failpoints,
)
from repro.faults.failpoints import registry as failpoint_registry
import repro.faults.failpoints as failpoints_module
from repro.linalg import SolverError
from repro.runtime.metrics import metrics


class FakeClock:
    """Manually advanced monotonic clock for deterministic timing tests."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# FaultPlan construction and validation
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_requires_error_or_latency(self):
        with pytest.raises(ValueError, match="error, latency, or both"):
            FaultPlan(failpoint="x")

    def test_requires_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            FaultPlan(failpoint="", error=InjectedFault)

    def test_probability_requires_seed(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(failpoint="x", error=InjectedFault, probability=0.5)

    def test_probability_bounds(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="probability"):
                FaultPlan(
                    failpoint="x", error=InjectedFault, probability=bad, seed=0
                )

    def test_every_and_probability_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            FaultPlan(
                failpoint="x",
                error=InjectedFault,
                every=2,
                probability=0.5,
                seed=0,
            )

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError, match="every"):
            FaultPlan.fail_every("x", 0)

    def test_max_triggers_must_be_positive(self):
        with pytest.raises(ValueError, match="max_triggers"):
            FaultPlan.fail_every("x", 1, max_triggers=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency_seconds"):
            FaultPlan(failpoint="x", latency_seconds=-0.1, error=InjectedFault)

    def test_build_error_from_class(self):
        plan = FaultPlan.fail_once("pt", error=SolverError)
        err = plan.build_error()
        assert isinstance(err, SolverError)
        assert "pt" in str(err)

    def test_build_error_from_instance(self):
        sentinel = RuntimeError("exact instance")
        plan = FaultPlan.fail_once("pt", error=sentinel)
        assert plan.build_error() is sentinel

    def test_build_error_from_callable(self):
        plan = FaultPlan.fail_once("pt", error=lambda: OSError("made"))
        err = plan.build_error()
        assert isinstance(err, OSError)

    def test_build_error_bad_spec(self):
        plan = FaultPlan(failpoint="pt", latency_seconds=0.001)
        with pytest.raises(TypeError, match="unsupported error spec"):
            plan.build_error()


# ----------------------------------------------------------------------
# Failpoint arming, triggering shapes, and scoping
# ----------------------------------------------------------------------
class TestFailpoints:
    def test_disarmed_hit_is_noop(self):
        point = failpoint("tests.disarmed")
        assert failpoints_module._ACTIVE is None
        point.hit()  # must not raise, must not touch metrics

    def test_known_failpoints_catalog(self):
        failpoint("tests.catalog.entry")
        assert "tests.catalog.entry" in known_failpoints()

    def test_failpoint_identity_is_cached(self):
        assert failpoint("tests.same") is failpoint("tests.same")

    def test_fail_every_nth(self):
        point = failpoint("tests.everynth")
        outcomes = []
        with inject(FaultPlan.fail_every("tests.everynth", 3)):
            for _ in range(9):
                try:
                    point.hit()
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault"] * 3

    def test_fail_once(self):
        point = failpoint("tests.once")
        with inject(FaultPlan.fail_once("tests.once")) as session:
            with pytest.raises(InjectedFault):
                point.hit()
            for _ in range(5):
                point.hit()
            stats = session.stats()["tests.once"][0]
        assert stats == {"hits": 6, "triggers": 1}

    def test_fail_with_probability_reproducible(self):
        point = failpoint("tests.prob")

        def run() -> list:
            outcomes = []
            plan = FaultPlan.fail_with_probability("tests.prob", 0.4, seed=7)
            with inject(plan):
                for _ in range(50):
                    try:
                        point.hit()
                        outcomes.append(0)
                    except InjectedFault:
                        outcomes.append(1)
            return outcomes

        first, second = run(), run()
        assert first == second
        assert 0 < sum(first) < 50

    def test_latency_plan_counts_delays(self):
        point = failpoint("tests.latency")
        before = metrics.counters().get("faults.delays", 0)
        with inject(FaultPlan.latency("tests.latency", 0.001)):
            point.hit()
            point.hit()
        after = metrics.counters().get("faults.delays", 0)
        assert after - before == 2

    def test_scoping_disarms_on_exit(self):
        point = failpoint("tests.scope")
        with inject(FaultPlan.fail_every("tests.scope", 1)):
            with pytest.raises(InjectedFault):
                point.hit()
        point.hit()  # disarmed again
        assert failpoints_module._ACTIVE is None
        assert not failpoint_registry.armed

    def test_disarm_on_exception(self):
        point = failpoint("tests.scope.exc")
        with pytest.raises(RuntimeError, match="escape"):
            with inject(FaultPlan.fail_once("tests.scope.exc")):
                raise RuntimeError("escape")
        assert failpoints_module._ACTIVE is None

    def test_nested_sessions_compose(self):
        point = failpoint("tests.nested")
        with inject(FaultPlan.latency("tests.nested", 0.0001)) as outer:
            with inject(FaultPlan.latency("tests.nested", 0.0001)) as inner:
                point.hit()
            point.hit()
        assert outer.stats()["tests.nested"][0]["hits"] == 2
        assert inner.stats()["tests.nested"][0]["hits"] == 1
        assert failpoints_module._ACTIVE is None

    def test_inject_requires_plans(self):
        with pytest.raises(ValueError, match="at least one"):
            with inject():
                pass

    def test_inject_rejects_non_plans(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            with inject("not a plan"):
                pass

    def test_context_manager_form(self):
        point = failpoint("tests.ctx")
        with inject(FaultPlan.fail_once("tests.ctx")):
            with pytest.raises(InjectedFault):
                with point:
                    pytest.fail("body must not run when the hit raises")

    def test_decorator_form(self):
        point = failpoint("tests.deco")

        @point
        def work(value):
            return value * 2

        with inject(FaultPlan.fail_once("tests.deco")):
            with pytest.raises(InjectedFault):
                work(3)
            assert work(3) == 6
        assert work.__name__ == "work"

    def test_injected_metrics_per_failpoint(self):
        point = failpoint("tests.metricskey")
        key = "faults.injected.tests.metricskey"
        before = metrics.counters().get(key, 0)
        with inject(FaultPlan.fail_once("tests.metricskey")):
            with pytest.raises(InjectedFault):
                point.hit()
        assert metrics.counters().get(key, 0) - before == 1

    def test_unplanned_failpoints_untouched_while_armed(self):
        planned = failpoint("tests.planned")
        bystander = failpoint("tests.bystander")
        with inject(FaultPlan.fail_every("tests.planned", 1)):
            bystander.hit()  # no plan for it: passes through
            with pytest.raises(InjectedFault):
                planned.hit()


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_after_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(2.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_nonpositive_timeout_is_already_expired(self):
        clock = FakeClock()
        assert Deadline.after(0.0, clock=clock).expired
        assert Deadline.after(-1.0, clock=clock).expired

    def test_repr_mentions_remaining(self):
        assert "remaining" in repr(Deadline.after(1.0, clock=FakeClock()))


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_seconds"):
            RetryPolicy(base_seconds=0.0)
        with pytest.raises(ValueError, match="cap_seconds"):
            RetryPolicy(base_seconds=0.5, cap_seconds=0.1)

    def test_delays_within_bounds(self):
        policy = RetryPolicy(max_attempts=8, base_seconds=0.01, cap_seconds=0.05)
        delays = list(policy.delays(policy.make_rng()))
        assert len(delays) == 7
        assert all(policy.base_seconds <= d <= policy.cap_seconds for d in delays)

    def test_delays_reproducible_from_seed(self):
        policy = RetryPolicy(max_attempts=6, seed=99)
        first = list(policy.delays(policy.make_rng()))
        second = list(policy.delays(policy.make_rng()))
        assert first == second

    def test_call_succeeds_after_transients(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "done"

        policy = RetryPolicy(max_attempts=3)
        result = policy.call(flaky, sleep=sleeps.append)
        assert result == "done"
        assert len(attempts) == 3
        assert len(sleeps) == 2
        assert all(
            policy.base_seconds <= s <= policy.cap_seconds for s in sleeps
        )

    def test_call_exhausts_attempts(self):
        attempts = []

        def always_fails():
            attempts.append(1)
            raise RuntimeError("persistent")

        policy = RetryPolicy(max_attempts=4)
        with pytest.raises(RuntimeError, match="persistent"):
            policy.call(always_fails, sleep=lambda s: None)
        assert len(attempts) == 4

    def test_non_retryable_fails_immediately(self):
        attempts = []

        def bad_request():
            attempts.append(1)
            raise ValueError("caller bug")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(ValueError):
            policy.call(bad_request, sleep=lambda s: None)
        assert len(attempts) == 1

    def test_deadline_stops_backoff(self):
        clock = FakeClock()
        deadline = Deadline.after(0.0001, clock=clock)
        attempts = []

        def always_fails():
            attempts.append(1)
            raise RuntimeError("fail")

        policy = RetryPolicy(max_attempts=5, base_seconds=0.01)
        with pytest.raises(RuntimeError):
            policy.call(always_fails, deadline=deadline, sleep=lambda s: None)
        assert len(attempts) == 1  # first backoff would overrun the budget

    def test_on_retry_hook(self):
        seen = []

        def flaky():
            if not seen:
                raise RuntimeError("first")
            return 42

        policy = RetryPolicy(max_attempts=2)
        result = policy.call(
            flaky,
            sleep=lambda s: None,
            on_retry=lambda error, delay: seen.append((type(error), delay)),
        )
        assert result == 42
        assert seen and seen[0][0] is RuntimeError

    def test_shared_rng_with_lock(self):
        policy = RetryPolicy(max_attempts=3)
        rng = policy.make_rng()
        lock = threading.Lock()
        delays = list(policy.delays(rng, lock))
        assert len(delays) == 2

    def test_lazy_draws_align_with_failures(self):
        # A run succeeding on attempt 2 consumes exactly one jitter draw.
        policy = RetryPolicy(max_attempts=5, seed=3)
        state = {"calls": 0}

        def flaky():
            state["calls"] += 1
            if state["calls"] == 1:
                raise RuntimeError("once")
            return "ok"

        rng = policy.make_rng()
        policy.call(flaky, rng=rng, sleep=lambda s: None)
        fresh = policy.make_rng()
        fresh.uniform(policy.base_seconds, 3.0 * policy.base_seconds)
        # Both Generators have now consumed one uniform draw.
        assert rng.random() == fresh.random()


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=1.0):
        return CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout_seconds=reset,
            clock=clock,
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout_seconds"):
            CircuitBreaker(reset_timeout_seconds=0.0)

    def test_unknown_key_is_closed_and_allowed(self):
        breaker = self.make(FakeClock())
        assert breaker.state("k") == "closed"
        assert breaker.allow("k")

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = self.make(FakeClock(), threshold=3)
        breaker.record_failure("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "closed"
        breaker.record_failure("k")
        assert breaker.state("k") == "open"
        assert not breaker.allow("k")

    def test_success_resets_failure_streak(self):
        breaker = self.make(FakeClock(), threshold=2)
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "closed"

    def test_half_open_after_reset_timeout(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=1.0)
        breaker.record_failure("k")
        assert not breaker.allow("k")
        clock.advance(0.5)
        assert not breaker.allow("k")
        clock.advance(0.6)
        assert breaker.allow("k")  # the single half-open probe
        assert breaker.state("k") == "half_open"

    def test_single_probe_while_half_open(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=1.0)
        breaker.record_failure("k")
        clock.advance(1.1)
        assert breaker.allow("k")
        # Until the probe's outcome lands, everyone else is rejected.
        assert not breaker.allow("k")
        assert not breaker.allow("k")

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=1.0)
        breaker.record_failure("k")
        clock.advance(1.1)
        assert breaker.allow("k")
        breaker.record_success("k")
        assert breaker.state("k") == "closed"
        assert breaker.allow("k")
        assert breaker.allow("k")

    def test_probe_failure_reopens_and_restarts_timer(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=1.0)
        breaker.record_failure("k")
        clock.advance(1.1)
        assert breaker.allow("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "open"
        assert not breaker.allow("k")
        clock.advance(0.9)
        assert not breaker.allow("k")  # timer restarted at probe failure
        clock.advance(0.2)
        assert breaker.allow("k")

    def test_keys_are_independent(self):
        breaker = self.make(FakeClock(), threshold=1)
        breaker.record_failure("bad")
        assert not breaker.allow("bad")
        assert breaker.allow("good")

    def test_snapshot_and_reset(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1)
        breaker.record_failure("k")
        clock.advance(0.25)
        snap = breaker.snapshot()
        assert snap["k"]["state"] == "open"
        assert snap["k"]["open_for_seconds"] == pytest.approx(0.25)
        breaker.reset("k")
        assert breaker.state("k") == "closed"
        breaker.record_failure("other")
        breaker.reset()
        assert breaker.snapshot() == {}

    def test_transition_metrics(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=1.0)
        before = metrics.counters("serving.breaker.")
        breaker.record_failure("k")  # opened
        breaker.allow("k")  # rejected
        clock.advance(1.1)
        breaker.allow("k")  # half_opened
        breaker.record_success("k")  # closed
        after = metrics.counters("serving.breaker.")

        def delta(name: str) -> int:
            return after.get(name, 0) - before.get(name, 0)

        assert delta("serving.breaker.opened") == 1
        assert delta("serving.breaker.rejected") == 1
        assert delta("serving.breaker.half_opened") == 1
        assert delta("serving.breaker.closed") == 1


# ----------------------------------------------------------------------
# Metrics counters view
# ----------------------------------------------------------------------
class TestCountersView:
    def test_counters_excludes_timers(self):
        metrics.increment("tests.counters.a")
        with metrics.timer("tests.counters.timer"):
            pass
        counters = metrics.counters("tests.counters.")
        assert "tests.counters.a" in counters
        assert all(".seconds" not in k and not k.endswith(".calls") for k in counters)

    def test_counters_prefix_filter_and_order(self):
        metrics.increment("tests.prefix.b")
        metrics.increment("tests.prefix.a")
        counters = metrics.counters("tests.prefix.")
        assert list(counters) == sorted(counters)
        assert set(counters) == {"tests.prefix.a", "tests.prefix.b"}

    def test_all_counter_values_are_ints(self):
        metrics.increment("tests.ints.x", 3)
        assert all(isinstance(v, int) for v in metrics.counters("tests.ints.").values())


def test_circuit_open_error_is_runtime_error():
    assert issubclass(CircuitOpenError, RuntimeError)


def test_injected_fault_is_not_solver_error():
    # The sequential fitter distinguishes the two; keep the hierarchy flat.
    assert not issubclass(InjectedFault, SolverError)
    assert not issubclass(SolverError, InjectedFault)


def test_deadline_expired_error_is_timeout():
    assert issubclass(DeadlineExpiredError, TimeoutError)
