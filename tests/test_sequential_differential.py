"""Differential tests: SequentialBmf must not depend on sample batching.

The same stream of late-stage samples is fed one at a time, in uneven
chunks, and all at once; with ``deterministic=True`` the recorded
``cv_error_history`` and the final coefficients must be **bitwise**
identical at matching sample counts, and in the default (BLAS) mode they
must agree to tight tolerances.  Also pins down the incremental-vs-full
refit equivalence, the conditioning fallback, and the frozen-config
regression (constructor arrays snapshotted, not captured by reference).
"""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.bmf import GaussianCoefficientPrior, SequentialBmf
from repro.runtime.metrics import metrics as runtime_metrics

BATCHINGS = [
    [4] + [1] * 20,          # one sample at a time
    [4, 7, 3, 10],           # uneven chunks
    [24],                    # all at once
]


@pytest.fixture(scope="module")
def stream():
    """A fixed synthetic late-stage sample stream with an early-stage prior."""
    rng = np.random.default_rng(20130603)
    basis = OrthonormalBasis.total_degree(4, 2)
    x = rng.normal(size=(24, 4))
    truth = rng.normal(size=basis.size)
    f = basis.design_matrix(x) @ truth + 0.02 * rng.normal(size=24)
    alpha_early = truth + 0.05 * rng.normal(size=basis.size)
    return basis, x, f, alpha_early


def drive(stream, batches, **kwargs):
    basis, x, f, alpha_early = stream
    sequential = SequentialBmf(basis, alpha_early, **kwargs)
    offset = 0
    for batch in batches:
        sequential.add_samples(x[offset : offset + batch], f[offset : offset + batch])
        offset += batch
    return sequential


def history_by_count(sequential):
    return dict(zip(sequential.sample_count_history, sequential.cv_error_history))


class TestBitwiseDeterministic:
    @pytest.mark.parametrize("mode", ["cv", "fixed-eta"])
    def test_batching_invariance_is_bitwise(self, stream, mode):
        if mode == "cv":
            kwargs = dict(deterministic=True)
        else:
            kwargs = dict(deterministic=True, prior_kind="nonzero-mean", eta=0.5)
        runs = [drive(stream, batches, **kwargs) for batches in BATCHINGS]
        reference = runs[0]
        reference_history = history_by_count(reference)
        for other in runs[1:]:
            # Coefficients: bitwise, not just close.
            assert np.array_equal(
                reference.model.coefficients_, other.model.coefficients_
            )
            assert reference.model.chosen_eta_ == other.model.chosen_eta_
            assert reference.model.chosen_prior_.name == other.model.chosen_prior_.name
            # CV history: bitwise equal wherever the sample counts line up.
            other_history = history_by_count(other)
            common = set(reference_history) & set(other_history)
            assert common  # the final count always lines up
            for count in common:
                assert reference_history[count] == other_history[count]

    def test_deterministic_matches_default_mode_closely(self, stream):
        det = drive(stream, BATCHINGS[1], deterministic=True)
        blas = drive(stream, BATCHINGS[1], deterministic=False)
        assert np.allclose(
            det.model.coefficients_, blas.model.coefficients_, rtol=1e-9, atol=1e-12
        )

    def test_default_mode_batchings_agree_within_tolerance(self, stream):
        runs = [drive(stream, batches) for batches in BATCHINGS]
        for other in runs[1:]:
            assert np.allclose(
                runs[0].model.coefficients_,
                other.model.coefficients_,
                rtol=1e-8,
                atol=1e-11,
            )


class TestIncrementalEquivalence:
    def test_incremental_matches_full_refits(self, stream):
        incremental = drive(stream, BATCHINGS[1], incremental=True)
        full = drive(stream, BATCHINGS[1], incremental=False)
        assert incremental.last_refit_mode == "incremental"
        assert full.last_refit_mode == "full"
        assert np.allclose(
            incremental.model.coefficients_,
            full.model.coefficients_,
            rtol=1e-9,
            atol=1e-12,
        )
        assert np.allclose(
            incremental.cv_error_history, full.cv_error_history, rtol=1e-9
        )

    def test_incremental_refit_metric_increments(self, stream):
        before = runtime_metrics.snapshot().get("woodbury.incremental_refits", 0)
        sequential = drive(stream, BATCHINGS[1], incremental=True)
        after = runtime_metrics.snapshot().get("woodbury.incremental_refits", 0)
        # First batch builds from scratch; the three that follow extend.
        assert after - before >= len(BATCHINGS[1]) - 1
        assert sequential.sample_count_history == [4, 11, 14, 24]

    def test_evidence_selection_disables_incremental_path(self, stream):
        sequential = drive(
            stream, [8, 8], prior_kind="nonzero-mean", selection="evidence"
        )
        assert sequential.last_refit_mode == "full"


class TestConditioningFallback:
    def test_degenerate_new_row_falls_back_to_full_refit(self):
        rng = np.random.default_rng(99)
        basis = OrthonormalBasis.total_degree(2, 1)  # terms: 1, x1, x2
        prior = GaussianCoefficientPrior(
            np.array([1.0, 0.0, 0.0]), np.array([0.0, 1.0, 1.0]), name="pinned"
        )
        sequential = SequentialBmf(basis, priors=[prior])
        x = rng.normal(size=(8, 2))
        f = 1.0 + x @ np.array([0.5, -0.3]) + 0.01 * rng.normal(size=8)
        sequential.add_samples(x, f)
        assert sequential.last_refit_mode == "full"
        before = runtime_metrics.snapshot().get("woodbury.fallbacks", 0)
        # The constant term is pinned (zero prior scale), so a sample at the
        # origin has an exactly zero scaled-kernel diagonal entry: the
        # conditioning guard must reject the border update.
        sequential.add_samples(np.zeros((1, 2)), np.array([1.0]))
        after = runtime_metrics.snapshot().get("woodbury.fallbacks", 0)
        assert sequential.last_refit_mode == "fallback"
        assert after - before >= 1
        # The fallback still produced a usable model.
        assert np.isfinite(sequential.cv_error_history[-1])
        healthy = rng.normal(size=(1, 2))
        sequential.add_samples(healthy, 1.0 + healthy @ np.array([0.5, -0.3]))
        assert sequential.last_refit_mode == "incremental"


class TestFrozenConfig:
    def test_constructor_arrays_are_snapshotted(self, stream):
        basis, x, f, alpha_early = stream
        mutable_alpha = alpha_early.copy()
        mutable_missing = [1, 2]
        clean = SequentialBmf(basis, alpha_early.copy(), missing_indices=[1, 2])
        dirty = SequentialBmf(basis, mutable_alpha, missing_indices=mutable_missing)
        # Mutate the caller-owned inputs *after* construction; the old
        # lambda-closure factory would have seen these on every refit.
        mutable_alpha[:] = 1e6
        mutable_missing.append(3)
        for sequential in (clean, dirty):
            sequential.add_samples(x[:10], f[:10])
        assert np.array_equal(
            clean.model.coefficients_, dirty.model.coefficients_
        )

    def test_config_is_immutable(self, stream):
        basis, x, f, alpha_early = stream
        sequential = SequentialBmf(basis, alpha_early, missing_indices=[0])
        config = sequential.config
        assert not config.alpha_early.flags.writeable
        assert config.missing_indices == (0,)
        with pytest.raises(Exception):
            config.n_folds = 2  # frozen dataclass
        with pytest.raises((TypeError, ValueError)):
            config.alpha_early[0] = 5.0  # read-only array
        with pytest.raises(TypeError):
            config.regressor_kwargs["eta"] = 1.0  # mapping proxy
