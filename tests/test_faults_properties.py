"""Property-based tests for the fault substrate (hypothesis).

Two surfaces get the randomized treatment because their contracts are
range/sequence invariants rather than single examples:

* :meth:`repro.faults.RetryPolicy.delays` -- every decorrelated-jitter
  delay lies in ``[base, cap]`` and the whole schedule is a pure function
  of the seed.
* :class:`repro.faults.CircuitBreaker` -- model-based: a reference state
  machine is driven with random request/outcome/clock-advance sequences
  and the real breaker must agree call-for-call (never admitting traffic
  while open, admitting exactly one half-open probe).
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.faults import CircuitBreaker, RetryPolicy  # noqa: E402


class FakeClock:
    def __init__(self, start: float = 100.0):
        self._now = start

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        self._now += dt


# ----------------------------------------------------------------------
# Retry backoff
# ----------------------------------------------------------------------
policy_params = st.tuples(
    st.integers(min_value=2, max_value=8),           # max_attempts
    st.floats(min_value=1e-4, max_value=0.5),        # base_seconds
    st.floats(min_value=1.0, max_value=100.0),       # cap multiplier
    st.integers(min_value=0, max_value=2**31),       # seed
)


class TestBackoffProperties:
    @given(policy_params)
    @settings(max_examples=200, deadline=None)
    def test_delays_stay_within_bounds(self, params):
        attempts, base, cap_mult, seed = params
        policy = RetryPolicy(
            max_attempts=attempts,
            base_seconds=base,
            cap_seconds=base * cap_mult,
            seed=seed,
        )
        delays = list(policy.delays(policy.make_rng()))
        assert len(delays) == attempts - 1
        for delay in delays:
            assert policy.base_seconds <= delay <= policy.cap_seconds

    @given(policy_params)
    @settings(max_examples=100, deadline=None)
    def test_schedule_is_a_pure_function_of_the_seed(self, params):
        attempts, base, cap_mult, seed = params
        policy = RetryPolicy(
            max_attempts=attempts,
            base_seconds=base,
            cap_seconds=base * cap_mult,
            seed=seed,
        )
        first = list(policy.delays(policy.make_rng()))
        second = list(policy.delays(policy.make_rng()))
        assert first == second

    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 8))
    @settings(max_examples=100, deadline=None)
    def test_decorrelated_jitter_recurrence(self, seed, attempts):
        """Each delay obeys ``delay_i = min(cap, U[base, 3 * prev])``."""
        policy = RetryPolicy(max_attempts=attempts, seed=seed)
        previous = policy.base_seconds
        for delay in policy.delays(policy.make_rng()):
            assert delay <= min(policy.cap_seconds, 3.0 * previous)
            assert delay >= policy.base_seconds
            previous = delay


# ----------------------------------------------------------------------
# Circuit breaker (model-based)
# ----------------------------------------------------------------------
class BreakerModel:
    """Reference implementation of the documented breaker contract."""

    def __init__(self, threshold: int, timeout: float, clock: FakeClock):
        self.threshold = threshold
        self.timeout = timeout
        self.clock = clock
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False

    def allow(self) -> bool:
        if self.state == "closed":
            return True
        if self.probing:
            return False  # exactly one half-open probe at a time
        if self.clock() - self.opened_at >= self.timeout:
            self.probing = True
            return True
        return False

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0
        self.probing = False

    def record_failure(self) -> None:
        if self.probing:  # failed probe: reopen, restart the window
            self.state = "open"
            self.opened_at = self.clock()
            self.probing = False
            return
        if self.state == "closed":
            self.failures += 1
            if self.failures >= self.threshold:
                self.state = "open"
                self.opened_at = self.clock()
                self.failures = 0


events = st.lists(
    st.one_of(
        st.sampled_from(["request_ok", "request_fail"]),
        st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=2.0)),
    ),
    min_size=10,
    max_size=80,
)


class TestBreakerProperties:
    @given(
        events,
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.1, max_value=1.5),
    )
    @settings(max_examples=200, deadline=None)
    def test_breaker_agrees_with_reference_model(self, seq, threshold, timeout):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout_seconds=timeout,
            clock=clock,
        )
        model = BreakerModel(threshold, timeout, clock)
        key = "model"
        for event in seq:
            if isinstance(event, tuple):
                clock.advance(event[1])
                continue
            allowed = breaker.allow(key)
            assert allowed == model.allow()
            if not allowed:
                # Invariant: traffic is only ever rejected while the window
                # is open or a probe is outstanding -- never when closed.
                assert model.state == "open"
                continue
            if event == "request_ok":
                breaker.record_success(key)
                model.record_success()
            else:
                breaker.record_failure(key)
                model.record_failure()

    @given(
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_exactly_one_half_open_probe(self, threshold, timeout, extra_allows):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout_seconds=timeout,
            clock=clock,
        )
        key = "probe"
        for _ in range(threshold):
            assert breaker.allow(key)
            breaker.record_failure(key)
        assert not breaker.allow(key)  # open: no traffic inside the window
        clock.advance(timeout * 1.01)
        assert breaker.allow(key)  # the single probe
        for _ in range(extra_allows):
            assert not breaker.allow(key)  # everyone else waits on its outcome
        breaker.record_success(key)
        assert breaker.allow(key)  # closed again
