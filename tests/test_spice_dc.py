"""Unit tests for DC operating-point analysis."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    CurrentSource,
    Mosfet,
    Resistor,
    Vccs,
    VoltageSource,
    dc_operating_point,
)


class TestLinearCircuits:
    def test_voltage_divider(self):
        ckt = Circuit("divider")
        ckt.add(VoltageSource("V1", "in", "0", dc=2.0))
        ckt.add(Resistor("R1", "in", "out", 1e3))
        ckt.add(Resistor("R2", "out", "0", 3e3))
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(1.5, rel=1e-6)
        assert op.source_currents["V1"] == pytest.approx(-0.5e-3, rel=1e-4)

    def test_current_source_into_resistor(self):
        ckt = Circuit("ir")
        ckt.add(CurrentSource("I1", "0", "n", dc=1e-3))
        ckt.add(Resistor("R1", "n", "0", 2e3))
        op = dc_operating_point(ckt)
        assert op.voltage("n") == pytest.approx(2.0, rel=1e-6)

    def test_resistor_ladder(self):
        ckt = Circuit("ladder")
        ckt.add(VoltageSource("V1", "n0", "0", dc=1.0))
        for i in range(5):
            ckt.add(Resistor(f"R{i}", f"n{i}", f"n{i + 1}", 1e3))
        ckt.add(Resistor("Rend", "n5", "0", 1e3))
        op = dc_operating_point(ckt)
        # Equal resistors: uniform voltage steps.
        for i in range(6):
            assert op.voltage(f"n{i}") == pytest.approx(1.0 - i / 6.0, rel=1e-6)

    def test_vccs(self):
        ckt = Circuit("vccs")
        ckt.add(VoltageSource("V1", "c", "0", dc=0.5))
        ckt.add(Resistor("Rc", "c", "0", 1e6))
        ckt.add(Vccs("G1", "0", "out", "c", "0", gm=1e-3))
        ckt.add(Resistor("RL", "out", "0", 2e3))
        op = dc_operating_point(ckt)
        # i = gm * 0.5 = 0.5 mA into RL -> 1.0 V
        assert op.voltage("out") == pytest.approx(1.0, rel=1e-6)

    def test_two_voltage_sources(self):
        ckt = Circuit("two-sources")
        ckt.add(VoltageSource("VA", "a", "0", dc=1.0))
        ckt.add(VoltageSource("VB", "b", "0", dc=2.0))
        ckt.add(Resistor("R", "a", "b", 1e3))
        op = dc_operating_point(ckt)
        assert op.source_currents["VA"] == pytest.approx(1e-3, rel=1e-4)
        assert op.source_currents["VB"] == pytest.approx(-1e-3, rel=1e-4)

    def test_ground_aliases(self):
        ckt = Circuit("gnd")
        ckt.add(VoltageSource("V1", "n", "gnd", dc=1.0))
        ckt.add(Resistor("R1", "n", "0", 1e3))
        op = dc_operating_point(ckt)
        assert op.voltage("n") == pytest.approx(1.0)
        assert op.voltage("gnd") == 0.0


class TestMosfetBias:
    def test_nmos_saturation_bias(self):
        """Common-source stage; compare against the analytic solution."""
        ckt = Circuit("cs")
        ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        ckt.add(VoltageSource("VG", "g", "0", dc=0.9))
        ckt.add(Resistor("RD", "vdd", "d", 10e3))
        ckt.add(Mosfet("M1", "d", "g", "0", kp=2e-4, vth=0.5, lambda_=0.0))
        op = dc_operating_point(ckt)
        ids = 0.5 * 2e-4 * (0.9 - 0.5) ** 2
        assert op.voltage("d") == pytest.approx(1.8 - 10e3 * ids, rel=1e-4)

    def test_pmos_mirror_of_nmos(self):
        ckt = Circuit("pmos")
        ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        ckt.add(VoltageSource("VG", "g", "0", dc=0.9))
        ckt.add(Resistor("RD", "d", "0", 10e3))
        ckt.add(
            Mosfet("M1", "d", "g", "vdd", kp=2e-4, vth=0.5, polarity="pmos",
                   lambda_=0.0)
        )
        op = dc_operating_point(ckt)
        ids = 0.5 * 2e-4 * (1.8 - 0.9 - 0.5) ** 2
        assert op.voltage("d") == pytest.approx(10e3 * ids, rel=1e-4)

    def test_diode_connected_nmos(self):
        """Diode-connected device: Vgs settles where I_R = I_D."""
        ckt = Circuit("diode")
        ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        ckt.add(Resistor("R", "vdd", "d", 20e3))
        ckt.add(Mosfet("M1", "d", "d", "0", kp=5e-4, vth=0.4, lambda_=0.0))
        op = dc_operating_point(ckt)
        vd = op.voltage("d")
        ids = 0.5 * 5e-4 * (vd - 0.4) ** 2
        assert (1.8 - vd) / 20e3 == pytest.approx(ids, rel=1e-3)

    def test_cmos_inverter_transfer_extremes(self):
        for vin, expect_high in ((0.0, True), (1.0, False)):
            ckt = Circuit("inv")
            ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.0))
            ckt.add(VoltageSource("VIN", "in", "0", dc=vin))
            ckt.add(Mosfet("MN", "out", "in", "0", kp=4e-4, vth=0.3))
            ckt.add(
                Mosfet("MP", "out", "in", "vdd", kp=3e-4, vth=0.3,
                       polarity="pmos")
            )
            ckt.add(Resistor("RL", "out", "0", 1e9))  # leak path for DC
            op = dc_operating_point(ckt)
            if expect_high:
                assert op.voltage("out") > 0.95
            else:
                assert op.voltage("out") < 0.05


class TestRobustness:
    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError, match="no elements"):
            dc_operating_point(Circuit("empty"))

    def test_floating_circuit_rejected(self):
        ckt = Circuit("floating")
        ckt.add(Resistor("R1", "a", "b", 1e3))
        with pytest.raises(ValueError, match="ground"):
            dc_operating_point(ckt)

    def test_duplicate_element_names_rejected(self):
        ckt = Circuit("dups")
        ckt.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(ValueError, match="duplicate"):
            ckt.add(Resistor("R1", "a", "0", 1e3))

    def test_bad_initial_guess_shape_rejected(self):
        ckt = Circuit("d")
        ckt.add(VoltageSource("V1", "a", "0", dc=1.0))
        ckt.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(ValueError, match="initial guess"):
            dc_operating_point(ckt, initial=np.zeros(10))

    def test_unknown_node_lookup_rejected(self):
        ckt = Circuit("d")
        ckt.add(VoltageSource("V1", "a", "0", dc=1.0))
        ckt.add(Resistor("R1", "a", "0", 1e3))
        op = dc_operating_point(ckt)
        with pytest.raises(KeyError):
            op.voltage("zz")
