"""Tests for the tail-tolerance layer (``repro.serving.health``):

latency digest, health scoring, AIMD concurrency limiting, brownout
shedding, hedged requests, the cancellation-aware request lifecycle,
and the liveness-checked ``predict()`` wait (the no-timeout hang
regression).
"""

import time

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.faults import FaultPlan, ManualClock, inject
from repro.regression import FittedModel
from repro.runtime.metrics import counters_delta, metrics
from repro.serving import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AIMDLimiter,
    BrownoutController,
    BrownoutShedError,
    EngineStoppedError,
    HealthTracker,
    HedgedFuture,
    HedgePolicy,
    LatencyDigest,
    ModelRegistry,
    PredictionEngine,
    ShardRouter,
)
from repro.serving.engine import _STOP


@pytest.fixture(scope="module")
def basis():
    return OrthonormalBasis.total_degree(3, 2)


@pytest.fixture(scope="module")
def model(basis):
    rng = np.random.default_rng(7)
    return FittedModel(basis, rng.normal(size=basis.size))


def make_engine(basis, model, **kwargs):
    registry = ModelRegistry()
    registry.publish("m", model)
    kwargs.setdefault("max_delay_seconds", 0.0)
    kwargs.setdefault("workers", 1)
    return PredictionEngine(registry, **kwargs)


class TestManualClock:
    def test_starts_at_start_and_advances(self):
        clock = ManualClock(start=5.0)
        assert clock() == 5.0
        clock.advance(2.5)
        assert clock() == 7.5
        clock.set(10.0)
        assert clock() == 10.0

    def test_rejects_time_travel(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        clock.advance(3.0)
        with pytest.raises(ValueError):
            clock.set(1.0)

    def test_repr_mentions_now(self):
        assert "3" in repr(ManualClock(start=3.0))


class TestLatencyDigest:
    def test_empty_digest_has_no_quantiles(self):
        digest = LatencyDigest()
        assert digest.count == 0
        assert digest.quantile(0.5) is None
        snap = digest.snapshot()
        assert snap["count"] == 0

    def test_quantile_is_conservative_upper_edge(self):
        digest = LatencyDigest()
        for value in [0.001, 0.002, 0.003, 0.010, 0.100]:
            digest.observe(value)
        assert digest.count == 5
        p50 = digest.quantile(0.5)
        p99 = digest.quantile(0.99)
        # Bucketed quantiles never under-report (the hedge delay must not
        # fire earlier than the true quantile).
        assert p50 >= 0.003
        assert p99 >= 0.100
        assert p50 <= p99

    def test_quantiles_are_monotone_in_q(self):
        digest = LatencyDigest()
        rng = np.random.default_rng(0)
        for value in rng.uniform(1e-4, 1.0, size=200):
            digest.observe(float(value))
        quantiles = [digest.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)

    def test_out_of_range_observations_clamp(self):
        digest = LatencyDigest(min_seconds=1e-3, max_seconds=1.0)
        digest.observe(0.0)  # underflow bucket
        digest.observe(100.0)  # overflow bucket
        assert digest.count == 2
        assert digest.quantile(0.99) is not None

    def test_invalid_q_raises(self):
        digest = LatencyDigest()
        digest.observe(0.01)
        with pytest.raises(ValueError):
            digest.quantile(-0.1)
        with pytest.raises(ValueError):
            digest.quantile(1.1)
        # Boundary quantiles are well-defined: min and max bucket edges.
        assert digest.quantile(0.0) <= digest.quantile(1.0)


class TestHealthTracker:
    def test_fresh_tracker_is_perfectly_healthy(self):
        tracker = HealthTracker()
        assert tracker.error_rate() == 0.0
        assert tracker.score() == 1.0

    def test_errors_drag_the_score_down(self):
        tracker = HealthTracker(window=8)
        for _ in range(8):
            tracker.observe_outcome(False)
        assert tracker.error_rate() == 1.0
        assert tracker.score() == 0.0

    def test_window_evicts_old_outcomes(self):
        tracker = HealthTracker(window=4)
        for _ in range(4):
            tracker.observe_outcome(False)
        for _ in range(4):
            tracker.observe_outcome(True)
        assert tracker.error_rate() == 0.0
        assert tracker.score() == 1.0

    def test_queue_and_breaker_pressure_penalize(self):
        tracker = HealthTracker()
        full = tracker.score(queue_fraction=1.0)
        breaker = tracker.score(breaker_open_fraction=1.0)
        assert full < 1.0
        assert breaker < 1.0
        assert tracker.score() == 1.0  # pure function of its inputs

    def test_latency_penalty_needs_a_target(self):
        lax = HealthTracker(target_latency_seconds=None)
        strict = HealthTracker(target_latency_seconds=0.001)
        for t in (lax, strict):
            for _ in range(32):
                t.observe_latency(0.1)
                t.observe_outcome(True)
        assert lax.score() == 1.0
        assert strict.score() < 1.0

    def test_score_clamped_to_unit_interval(self):
        tracker = HealthTracker(target_latency_seconds=0.001)
        for _ in range(32):
            tracker.observe_latency(10.0)
            tracker.observe_outcome(False)
        score = tracker.score(queue_fraction=1.0, breaker_open_fraction=1.0)
        assert score == 0.0

    def test_snapshot_shape(self):
        tracker = HealthTracker()
        tracker.observe_latency(0.01)
        tracker.observe_outcome(True)
        snap = tracker.snapshot()
        assert set(snap) >= {"score", "error_rate", "count"}


class TestAIMDLimiter:
    def test_validation(self):
        with pytest.raises(ValueError):
            AIMDLimiter(target_latency_seconds=0.0)
        with pytest.raises(ValueError):
            AIMDLimiter(target_latency_seconds=0.1, min_limit=0)
        with pytest.raises(ValueError):
            AIMDLimiter(target_latency_seconds=0.1, min_limit=10, max_limit=5)
        with pytest.raises(ValueError):
            AIMDLimiter(target_latency_seconds=0.1, decrease_factor=1.5)

    def test_decreases_multiplicatively_when_slow(self):
        limiter = AIMDLimiter(
            target_latency_seconds=0.01,
            min_limit=2,
            max_limit=64,
            initial_limit=64,
            window=4,
            clock=ManualClock(),
        )
        for _ in range(4):
            limiter.observe(0.1)
        assert limiter.current_limit() == 32
        stats = limiter.stats()
        assert stats["decreases"] == 1
        assert stats["increases"] == 0

    def test_increases_additively_when_fast(self):
        limiter = AIMDLimiter(
            target_latency_seconds=0.01,
            min_limit=2,
            max_limit=64,
            initial_limit=8,
            increase=2,
            window=4,
            clock=ManualClock(),
        )
        for _ in range(8):
            limiter.observe(0.001)
        assert limiter.current_limit() == 12
        assert limiter.stats()["increases"] == 2

    def test_cooldown_rate_limits_decreases(self):
        clock = ManualClock()
        limiter = AIMDLimiter(
            target_latency_seconds=0.01,
            min_limit=2,
            max_limit=64,
            initial_limit=64,
            window=2,
            cooldown_seconds=10.0,
            clock=clock,
        )
        for _ in range(2):
            limiter.observe(0.1)
        assert limiter.current_limit() == 32
        # Second slow window inside the cooldown: no further decrease.
        for _ in range(2):
            limiter.observe(0.1)
        assert limiter.current_limit() == 32
        clock.advance(11.0)
        for _ in range(2):
            limiter.observe(0.1)
        assert limiter.current_limit() == 16

    def test_engine_queue_bound_follows_limiter(self, basis, model):
        limiter = AIMDLimiter(
            target_latency_seconds=0.01,
            min_limit=2,
            max_limit=16,
            initial_limit=16,
            window=4,
            clock=ManualClock(),
        )
        engine = make_engine(basis, model, limiter=limiter)
        assert engine.queue_bound() == 16
        for _ in range(4):
            limiter.observe(0.1)
        assert engine.queue_bound() == 8
        assert engine.stats()["limit"] == 8


class TestBrownoutController:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BrownoutController(low_threshold=0.4, normal_threshold=0.7)
        with pytest.raises(ValueError):
            BrownoutController(low_threshold=1.5, normal_threshold=0.4)

    def test_min_priority_regimes(self):
        controller = BrownoutController(low_threshold=0.7, normal_threshold=0.4)
        assert controller.min_priority(0.9) == PRIORITY_LOW
        assert controller.min_priority(0.5) == PRIORITY_NORMAL
        assert controller.min_priority(0.1) == PRIORITY_HIGH

    def test_admit_sheds_below_floor_and_counts_transitions(self):
        controller = BrownoutController(low_threshold=0.7, normal_threshold=0.4)
        assert controller.admit(PRIORITY_LOW, 0.9)
        assert not controller.active
        assert not controller.admit(PRIORITY_LOW, 0.5)
        assert controller.active
        assert controller.admit(PRIORITY_NORMAL, 0.5)
        assert not controller.admit(PRIORITY_NORMAL, 0.1)
        assert controller.admit(PRIORITY_HIGH, 0.1)
        assert controller.admit(PRIORITY_LOW, 0.9)
        assert not controller.active
        stats = controller.stats()
        assert stats["entered"] == 1
        assert stats["exited"] == 1
        assert stats["shed"] == 2


class TestEngineHealthProbes:
    def test_fresh_engine_is_live_and_ready(self, basis, model):
        with make_engine(basis, model) as engine:
            assert engine.live()
            assert engine.ready()
            assert engine.health_score() == 1.0
        assert not engine.live()
        assert not engine.ready()

    def test_ready_threshold_validated(self, basis, model):
        with pytest.raises(ValueError):
            make_engine(basis, model, ready_threshold=1.5)

    def test_degraded_health_flips_ready(self, basis, model):
        health = HealthTracker(window=8)
        for _ in range(8):
            health.observe_outcome(False)
        before = metrics.counters()
        with make_engine(basis, model, health=health) as engine:
            assert engine.live()
            assert not engine.ready()
            # Recovery: refill the window with successes.
            for _ in range(8):
                health.observe_outcome(True)
            assert engine.ready()
        delta = counters_delta(before, metrics.counters())
        assert delta.get("serving.health.degraded", 0) >= 1
        assert delta.get("serving.health.recovered", 0) >= 1

    def test_stats_exposes_health_fields(self, basis, model):
        with make_engine(basis, model) as engine:
            stats = engine.stats()
        for key in ("health_score", "live", "ready", "cancelled",
                    "brownout_shed", "limit", "brownout_active"):
            assert key in stats


class TestBrownoutShedding:
    def test_low_priority_shed_when_degraded(self, basis, model):
        health = HealthTracker(window=8)
        for _ in range(8):
            health.observe_outcome(False)  # score 0: deep brownout
        engine = make_engine(
            basis,
            model,
            health=health,
            brownout=BrownoutController(),
        )
        x = np.zeros((1, basis.num_vars))
        with engine:
            with pytest.raises(BrownoutShedError):
                engine.submit("m", x, priority=PRIORITY_NORMAL)
            # High-priority work is still admitted and answered.
            result = engine.submit("m", x, priority=PRIORITY_HIGH).result(
                timeout=5.0
            )
            assert result.shape == (1,)
            assert engine.stats()["brownout_shed"] == 1
            assert engine.stats()["brownout_active"]

    def test_healthy_engine_admits_low_priority(self, basis, model):
        engine = make_engine(basis, model, brownout=BrownoutController())
        x = np.zeros((1, basis.num_vars))
        with engine:
            result = engine.submit("m", x, priority=PRIORITY_LOW).result(
                timeout=5.0
            )
            assert result.shape == (1,)
            assert engine.stats()["brownout_shed"] == 0


class TestCancellationLifecycle:
    def test_cancelled_requests_are_dropped_not_evaluated(self, basis, model):
        before = metrics.counters()
        engine = make_engine(basis, model)
        x = np.zeros((1, basis.num_vars))
        with engine:
            engine.pause_dispatch()
            doomed = engine.submit("m", x)
            survivor = engine.submit("m", x)
            assert doomed.cancel()
            engine.resume_dispatch()
            assert survivor.result(timeout=5.0).shape == (1,)
            assert doomed.cancelled()
            deadline = time.monotonic() + 5.0
            while engine.stats()["cancelled"] < 1:
                assert time.monotonic() < deadline, "cancelled drop not counted"
                time.sleep(0.01)
        delta = counters_delta(before, metrics.counters())
        assert delta.get("serving.cancelled", 0) == 1


class TestPredictHangRegression:
    def test_untimed_predict_fails_fast_when_dispatcher_dies(self, basis, model):
        engine = make_engine(basis, model)
        x = np.zeros((1, basis.num_vars))
        with engine:
            assert engine.predict("m", x).shape == (1,)
            # Kill the dispatcher out from under the engine: `running`
            # stays True but nothing will ever drain the queue -- the
            # exact state that used to hang an un-timed predict() forever.
            engine._queue.put_sentinel(_STOP)
            engine._dispatcher.join(timeout=5.0)
            assert not engine._dispatcher.is_alive()
            assert engine.running  # the engine believes it is up
            assert not engine.live()
            start = time.monotonic()
            with pytest.raises(EngineStoppedError):
                engine.predict("m", x, timeout=None)  # must not hang
            assert time.monotonic() - start < 5.0

    def test_router_untimed_predict_fails_fast_too(self, basis, model, tmp_path):
        router = ShardRouter(tmp_path, num_shards=2, replication_factor=2,
                             engine_kwargs={"workers": 1})
        x = np.zeros((1, basis.num_vars))
        with router:
            router.publish("m", model)
            assert router.predict("m", x).shape == (1,)
            shard = router.primary("m")
            engine = router._shards[shard].engine
            engine._queue.put_sentinel(_STOP)
            engine._dispatcher.join(timeout=5.0)
            start = time.monotonic()
            with pytest.raises(EngineStoppedError):
                router.predict("m", x, timeout=None)
            assert time.monotonic() - start < 5.0


def hedged_router(tmp_path, model, **policy_kwargs):
    policy_kwargs.setdefault("budget_fraction", 1.0)
    policy_kwargs.setdefault("min_samples", 10_000)  # pin delay at initial
    policy_kwargs.setdefault("initial_delay_seconds", 0.01)
    router = ShardRouter(
        tmp_path,
        num_shards=2,
        replication_factor=2,
        engine_kwargs={"workers": 1, "max_delay_seconds": 0.0},
        hedge=HedgePolicy(**policy_kwargs),
    )
    router.publish("m", model)
    return router


class TestHedgedRequests:
    def test_backup_wins_when_primary_stalls(self, basis, model, tmp_path):
        with hedged_router(tmp_path, model) as router:
            x = np.zeros((1, basis.num_vars))
            primary = router.primary("m")
            router._shards[primary].engine.pause_dispatch()
            try:
                future = router.submit("m", x)
                assert isinstance(future, HedgedFuture)
                result = future.result(timeout=5.0)
                assert result.shape == (1,)
            finally:
                router._shards[primary].engine.resume_dispatch()
            stats = router.hedge_stats()
            assert stats["attempts"] == 1
            assert stats["wins"] == 1
            assert stats["primary_wins"] == 0

    def test_fast_primary_wins_without_hedging(self, basis, model, tmp_path):
        with hedged_router(
            tmp_path, model, initial_delay_seconds=5.0
        ) as router:
            x = np.zeros((1, basis.num_vars))
            future = router.submit("m", x)
            assert future.result(timeout=5.0).shape == (1,)
            stats = router.hedge_stats()
            assert stats["attempts"] == 0
            assert stats["wins"] == 0

    def test_budget_caps_hedge_volume(self, basis, model, tmp_path):
        with hedged_router(
            tmp_path, model, budget_fraction=0.01, burst=1.0
        ) as router:
            x = np.zeros((1, basis.num_vars))
            primary = router.primary("m")
            engine = router._shards[primary].engine
            engine.pause_dispatch()
            futures = [router.submit("m", x) for _ in range(5)]
            results = []
            for future in futures:
                try:
                    results.append(future.result(timeout=0.2))
                except Exception:
                    results.append(None)
            engine.resume_dispatch()
            for future in futures:
                future.result(timeout=5.0)
            stats = router.hedge_stats()
            # One burst token only: 5 stalled requests, at most 1 hedge.
            assert stats["attempts"] <= 1
            assert stats["budget_denied"] >= 4

    def test_hedge_disabled_returns_plain_future(self, basis, model, tmp_path):
        router = ShardRouter(tmp_path, num_shards=2, replication_factor=2,
                             engine_kwargs={"workers": 1})
        with router:
            router.publish("m", model)
            future = router.submit("m", np.zeros((1, basis.num_vars)))
            assert not isinstance(future, HedgedFuture)
            assert future.result(timeout=5.0).shape == (1,)
            assert router.hedge_stats() is None

    def test_router_health_reports_every_live_shard(self, basis, model, tmp_path):
        with hedged_router(tmp_path, model) as router:
            health = router.health()
            assert set(health) == {0, 1}
            for entry in health.values():
                assert entry["live"]
                assert entry["ready"]
                assert 0.0 <= entry["score"] <= 1.0


class TestTagScopedFailpoints:
    def test_latency_plan_scopes_to_matching_tag(self, basis, model, tmp_path):
        """A tag-scoped plan stalls exactly one shard's evaluations."""
        router = ShardRouter(tmp_path, num_shards=2, replication_factor=2,
                             engine_kwargs={"workers": 1,
                                            "max_delay_seconds": 0.0})
        with router:
            router.publish("m", model)
            slow = router.primary("m")
            fast_engine = router._shards[1 - slow].engine
            x = np.zeros((1, basis.num_vars))
            plan = FaultPlan.latency(
                "engine.evaluate", 0.05, tag=f"shard-{slow}"
            )
            with inject(plan) as session:
                start = time.perf_counter()
                router.predict("m", x)
                slow_elapsed = time.perf_counter() - start
                # The other shard holds a replica; drive it directly.
                start = time.perf_counter()
                fast_engine.predict("m", x)
                fast_elapsed = time.perf_counter() - start
                (plan_stats,) = session.stats()["engine.evaluate"]
                assert plan_stats["triggers"] == 1
            assert slow_elapsed >= 0.05
            assert fast_elapsed < 0.05

    def test_untagged_plan_matches_tagged_hits(self, basis, model):
        engine = make_engine(basis, model, fault_tag="shard-0")
        x = np.zeros((1, basis.num_vars))
        with engine:
            plan = FaultPlan.latency("engine.evaluate", 0.02)
            with inject(plan) as session:
                engine.predict("m", x)
                (plan_stats,) = session.stats()["engine.evaluate"]
                assert plan_stats["triggers"] == 1
