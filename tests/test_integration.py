"""Integration tests: the paper's full flow on laptop-sized circuits.

These exercise the complete pipeline -- schematic Monte Carlo, early-stage
fit, prior construction (with missing-prior handling / prior mapping),
late-stage fusion, and the downstream applications -- and assert the
paper's qualitative claims end-to-end.
"""

import numpy as np
import pytest

from repro import (
    BmfRegressor,
    FusionProblem,
    OrthogonalMatchingPursuit,
    Stage,
    fuse,
)
from repro.applications import estimate_yield, worst_case_corner
from repro.basis import OrthonormalBasis
from repro.bmf import map_prior_coefficients, uninformative_prior
from repro.montecarlo import simulate_dataset
from repro.regression import LeastSquaresRegressor, relative_error


class TestRingOscillatorFlow:
    @pytest.fixture(scope="class")
    def fused(self, tiny_ro):
        rng = np.random.default_rng(77)
        problem = FusionProblem(tiny_ro, "frequency")
        alpha_early = problem.fit_early_model(800, rng, method="omp")
        aligned = problem.align_early_coefficients(alpha_early)
        train = simulate_dataset(tiny_ro, Stage.POST_LAYOUT, 60, rng, ["frequency"])
        test = simulate_dataset(tiny_ro, Stage.POST_LAYOUT, 300, rng, ["frequency"])
        bmf = BmfRegressor(
            problem.late_basis,
            aligned,
            prior_kind="select",
            missing_indices=problem.missing_indices(),
        ).fit(train.x, train.metric("frequency"))
        return problem, train, test, bmf

    def test_bmf_beats_omp_at_equal_samples(self, fused, tiny_ro):
        problem, train, test, bmf = fused
        f = train.metric("frequency")
        omp = OrthogonalMatchingPursuit(problem.late_basis).fit(train.x, f)
        bmf_error = relative_error(bmf.predict(test.x), test.metric("frequency"))
        omp_error = relative_error(omp.predict(test.x), test.metric("frequency"))
        assert bmf_error < 0.8 * omp_error

    def test_bmf_few_samples_rivals_omp_many(self, fused, tiny_ro):
        """The 9x claim in miniature: BMF@60 vs OMP@300."""
        problem, _train, test, bmf = fused
        rng = np.random.default_rng(78)
        big = simulate_dataset(tiny_ro, Stage.POST_LAYOUT, 300, rng, ["frequency"])
        omp = OrthogonalMatchingPursuit(problem.late_basis).fit(
            big.x, big.metric("frequency")
        )
        bmf_error = relative_error(bmf.predict(test.x), test.metric("frequency"))
        omp_error = relative_error(omp.predict(test.x), test.metric("frequency"))
        assert bmf_error < 2.0 * omp_error

    def test_fused_model_supports_yield_estimation(self, fused):
        _problem, _train, test, bmf = fused
        rng = np.random.default_rng(79)
        model = bmf.fitted_model()
        f_test = test.metric("frequency")
        spec = float(np.mean(f_test) - 2 * np.std(f_test))
        estimate = estimate_yield(model, 100_000, rng, spec_low=spec)
        true_fraction = float(np.mean(f_test >= spec))
        assert estimate.probability == pytest.approx(true_fraction, abs=0.05)

    def test_fused_model_supports_corner_extraction(self, fused, tiny_ro):
        _problem, _train, _test, bmf = fused
        corner = worst_case_corner(bmf.fitted_model(), sigma=3.0, direction="min")
        simulated = tiny_ro.simulate(
            Stage.POST_LAYOUT, corner.x[np.newaxis, :], "frequency"
        )[0]
        # The model-predicted worst corner is genuinely slow in simulation.
        nominal = tiny_ro.simulate(
            Stage.POST_LAYOUT, np.zeros((1, corner.x.size)), "frequency"
        )[0]
        assert simulated < nominal
        assert corner.value == pytest.approx(simulated, rel=0.05)


class TestSramFlow:
    def test_fusion_beats_no_prior(self, tiny_sram):
        rng = np.random.default_rng(80)
        problem = FusionProblem(tiny_sram, "read_delay")
        alpha_early = problem.fit_early_model(900, rng, method="ridge")
        aligned = problem.align_early_coefficients(alpha_early)
        train = simulate_dataset(tiny_sram, Stage.POST_LAYOUT, 50, rng)
        test = simulate_dataset(tiny_sram, Stage.POST_LAYOUT, 200, rng)
        f = train.metric("read_delay")

        bmf = BmfRegressor(
            problem.late_basis,
            aligned,
            prior_kind="select",
            missing_indices=problem.missing_indices(),
        ).fit(train.x, f)
        blind = BmfRegressor(
            problem.late_basis,
            priors=[uninformative_prior(problem.late_basis.size)],
            prior_kind="zero-mean",
        ).fit(train.x, f)

        reference = test.metric("read_delay")
        fused_error = relative_error(bmf.predict(test.x), reference)
        blind_error = relative_error(blind.predict(test.x), reference)
        assert fused_error < 0.8 * blind_error
        assert fused_error < 0.02


class TestDiffPairMappingFlow:
    def test_mapped_prior_enables_underdetermined_fit(self, diffpair):
        """Section IV-A end-to-end: schematic LS fit -> finger mapping ->
        BMF from fewer samples than coefficients."""
        rng = np.random.default_rng(81)
        metric = "offset_voltage"
        early_basis = OrthonormalBasis.linear(diffpair.num_vars(Stage.SCHEMATIC))
        x_early = diffpair.sample(Stage.SCHEMATIC, 150, rng)
        f_early = diffpair.simulate(Stage.SCHEMATIC, x_early, metric)
        early = LeastSquaresRegressor(early_basis).fit(x_early, f_early)

        mapping = map_prior_coefficients(
            early_basis, early.coefficients_, diffpair.finger_map()
        )
        x_late = diffpair.sample(Stage.POST_LAYOUT, 5, rng)
        f_late = diffpair.simulate(Stage.POST_LAYOUT, x_late, metric)
        model = fuse(x_late, f_late, mapping.late_basis, mapping.beta)

        x_test = diffpair.sample(Stage.POST_LAYOUT, 150, rng)
        f_test = diffpair.simulate(Stage.POST_LAYOUT, x_test, metric)
        assert relative_error(model.predict(x_test), f_test) < 0.1
