"""Property-based tests for the AIMD concurrency limiter (hypothesis).

The limiter's contract is a set of trajectory invariants, not single
examples, so it gets the randomized treatment:

* the limit never leaves ``[min_limit, max_limit]`` under any
  observation sequence;
* sustained over-target latency is monotone non-increasing (and reaches
  ``min_limit`` given enough windows);
* sustained under-target latency recovers the limit to ``max_limit``;
* the whole trajectory is a pure function of the observation sequence
  and the injected clock -- replaying the same trace yields the same
  limits at every step.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.faults import ManualClock  # noqa: E402
from repro.serving import AIMDLimiter  # noqa: E402

TARGET = 0.01

limiter_params = st.tuples(
    st.integers(min_value=1, max_value=8),      # min_limit
    st.integers(min_value=8, max_value=128),    # max_limit (>= min)
    st.integers(min_value=1, max_value=8),      # window
    st.integers(min_value=1, max_value=4),      # increase
    st.floats(min_value=0.1, max_value=0.9),    # decrease_factor
)

latency_trace = st.lists(
    st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    min_size=0,
    max_size=200,
)


def build(params, clock=None, cooldown=0.0):
    min_limit, max_limit, window, increase, decrease_factor = params
    return AIMDLimiter(
        target_latency_seconds=TARGET,
        min_limit=min_limit,
        max_limit=max_limit,
        window=window,
        increase=increase,
        decrease_factor=decrease_factor,
        cooldown_seconds=cooldown,
        clock=clock if clock is not None else ManualClock(),
    )


class TestClampInvariant:
    @settings(max_examples=100, deadline=None)
    @given(params=limiter_params, trace=latency_trace)
    def test_limit_stays_in_bounds_for_any_trace(self, params, trace):
        limiter = build(params)
        min_limit, max_limit = params[0], params[1]
        for latency in trace:
            limiter.observe(latency)
            assert min_limit <= limiter.current_limit() <= max_limit


class TestMonotoneDecrease:
    @settings(max_examples=60, deadline=None)
    @given(
        params=limiter_params,
        windows=st.integers(min_value=1, max_value=40),
    )
    def test_sustained_over_target_never_increases(self, params, windows):
        limiter = build(params)
        window = params[2]
        previous = limiter.current_limit()
        for _ in range(windows * window):
            limiter.observe(TARGET * 10)
            current = limiter.current_limit()
            assert current <= previous
            previous = current

    @settings(max_examples=60, deadline=None)
    @given(params=limiter_params)
    def test_enough_slow_windows_reach_min_limit(self, params):
        limiter = build(params)
        min_limit, max_limit, window = params[0], params[1], params[2]
        # Each closed window multiplies by decrease_factor < 1, so
        # max_limit windows are far more than enough to bottom out.
        for _ in range(max_limit * window):
            limiter.observe(TARGET * 10)
        assert limiter.current_limit() == min_limit


class TestRecovery:
    @settings(max_examples=60, deadline=None)
    @given(params=limiter_params)
    def test_sustained_under_target_recovers_to_max(self, params):
        limiter = build(params)
        min_limit, max_limit, window, increase, _ = params
        for _ in range(max_limit * window):
            limiter.observe(TARGET * 10)
        assert limiter.current_limit() == min_limit
        # Additive increase of >= 1 per fast window: (max - min) windows
        # of under-target traffic are enough to climb all the way back.
        for _ in range((max_limit - min_limit) * window + window):
            limiter.observe(TARGET / 10)
        assert limiter.current_limit() == max_limit


class TestTraceDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(
        params=limiter_params,
        trace=latency_trace,
        cooldown=st.floats(min_value=0.0, max_value=5.0),
        step=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_same_trace_same_clock_same_limits(self, params, trace, cooldown, step):
        """Replaying a trace against an identical injected clock schedule
        reproduces the limit trajectory bit for bit."""
        trajectories = []
        for _ in range(2):
            clock = ManualClock()
            limiter = build(params, clock=clock, cooldown=cooldown)
            seen = []
            for latency in trace:
                limiter.observe(latency)
                seen.append(limiter.current_limit())
                clock.advance(step)
            trajectories.append((seen, limiter.stats()))
        assert trajectories[0] == trajectories[1]
