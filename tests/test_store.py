"""Unit tests for the crash-safe model store (`repro.store`).

Covers the record codec's validation surface, the atomic append /
journal / scan protocol (including simulated write and lost-fsync
crashes at the ``store.*`` failpoints), quarantine of damaged records,
warm-restart recovery into a registry, and the registry's write-ahead
durability modes.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.basis import OrthonormalBasis, total_degree_index_set
from repro.bmf import SequentialBmf
from repro.faults import FaultPlan, SimulatedCrash, inject
from repro.regression import FittedModel
from repro.runtime.metrics import metrics
from repro.serving import ModelRegistry, PublishRejectedError
from repro.store import (
    MAGIC,
    CorruptRecordError,
    ModelRecord,
    ModelStore,
    RecoveryManager,
    StoreWriteError,
    decode_record,
    encode_record,
    record_crc,
)


def _counter(name):
    return metrics.counters().get(name, 0)


def make_basis(num_vars=3, degree=1):
    return OrthonormalBasis(num_vars, total_degree_index_set(num_vars, degree))


def make_record(name="power", version=1, seed=0, **overrides):
    basis = make_basis()
    rng = np.random.default_rng(seed)
    fields = dict(
        name=name,
        version=version,
        key="deadbeef" * 4,
        published_at=123.5,
        basis_digest=basis.cache_token(),
        basis_num_vars=basis.num_vars,
        basis_indices=tuple(basis.indices),
        coefficients=rng.normal(size=len(basis.indices)),
    )
    fields.update(overrides)
    return ModelRecord(**fields)


class TestRecordFormat:
    def test_round_trip_is_bitwise_identical(self):
        coeffs = np.array([1.0, -0.0, np.nan, np.inf, 5e-324])
        record = make_record(
            coefficients=coeffs,
            prior_name="nonzero-mean",
            prior_mean=np.array([0.5, 0.25]),
            prior_scale=np.array([1.0, np.inf]),
            eta=1e-3,
            chol_lower=np.tril(np.ones((3, 3))),
            chol_prior_index=0,
            train_x=np.zeros((4, 3)),
            train_f=np.arange(4.0),
        )
        decoded = decode_record(encode_record(record))
        assert decoded.equals_bitwise(record)
        # NaN payload and signed zero survive exactly.
        assert decoded.coefficients.tobytes() == coeffs.tobytes()

    def test_blob_layout_and_stored_crc(self):
        blob = encode_record(make_record())
        assert blob[:4] == MAGIC
        assert record_crc(blob) == zlib.crc32(blob[8:]) & 0xFFFFFFFF

    def test_optional_fields_round_trip_as_none(self):
        decoded = decode_record(encode_record(make_record()))
        assert decoded.prior_mean is None
        assert decoded.chol_lower is None
        assert decoded.eta is None
        assert decoded.prior() is None

    def test_basis_rebuilds_identically(self):
        basis = make_basis(num_vars=4, degree=2)
        record = make_record(
            basis_digest=basis.cache_token(),
            basis_num_vars=basis.num_vars,
            basis_indices=tuple(basis.indices),
            coefficients=np.ones(len(basis.indices)),
        )
        rebuilt = decode_record(encode_record(record)).basis()
        assert rebuilt.cache_token() == basis.cache_token()

    def test_wrong_magic_rejected(self):
        blob = bytearray(encode_record(make_record()))
        blob[0] ^= 0xFF
        with pytest.raises(CorruptRecordError, match="magic"):
            decode_record(bytes(blob))

    def test_truncation_rejected(self):
        blob = encode_record(make_record())
        for cut in (0, 4, 15, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CorruptRecordError):
                decode_record(blob[:cut])

    def test_trailing_garbage_rejected(self):
        blob = encode_record(make_record())
        with pytest.raises(CorruptRecordError):
            decode_record(blob + b"\x00")

    def test_unsupported_format_version_rejected(self):
        blob = encode_record(make_record())
        body = bytearray(blob[8:])
        struct.pack_into("<I", body, 0, 999)
        forged = (
            MAGIC
            + struct.pack("<I", zlib.crc32(bytes(body)) & 0xFFFFFFFF)
            + bytes(body)
        )
        with pytest.raises(CorruptRecordError, match="version"):
            decode_record(forged)

    def test_equals_bitwise_detects_differences(self):
        record = make_record()
        assert record.equals_bitwise(make_record())
        assert not record.equals_bitwise(make_record(version=2))
        other = make_record(coefficients=record.coefficients + 1e-16)
        assert not record.equals_bitwise(other)
        assert not record.equals_bitwise(object())

    def test_record_validation(self):
        with pytest.raises(ValueError):
            make_record(name="")
        with pytest.raises(ValueError):
            make_record(version=0)
        with pytest.raises(ValueError):
            make_record(coefficients=None)
        with pytest.raises(TypeError):
            encode_record("not a record")


class TestModelStore:
    def test_append_read_scan_round_trip(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        record = make_record()
        path = store.append(record)
        assert path.exists()
        assert store.read(path).equals_bitwise(record)
        entries, torn = store.journal_entries()
        assert torn == 0
        assert [(e.name, e.version) for e in entries] == [("power", 1)]
        assert entries[0].record_crc == record_crc(path.read_bytes())
        scan = store.scan()
        assert len(scan.records) == 1
        assert scan.records[0].equals_bitwise(record)
        assert scan.quarantined == () and scan.missing == ()
        assert scan.unjournaled == () and scan.torn_journal_lines == 0

    def test_record_filenames_are_deterministic_and_distinct(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        assert store.record_filename("power", 1) == store.record_filename("power", 1)
        # Names that sanitize to the same slug stay distinct via the digest.
        assert store.record_filename("a/b", 1) != store.record_filename("a:b", 1)

    def test_scan_sorts_by_name_then_version(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        store.append(make_record(name="power", version=2))
        store.append(make_record(name="delay", version=1))
        store.append(make_record(name="power", version=1))
        scan = store.scan()
        assert [(r.name, r.version) for r in scan.records] == [
            ("delay", 1),
            ("power", 1),
            ("power", 2),
        ]

    def test_torn_journal_tail_stops_parse(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        store.append(make_record(version=1))
        store.append(make_record(version=2))
        with open(store.journal_path, "ab") as handle:
            handle.write(b"v1 00000000 {torn")  # crashed append: no newline
        entries, torn = store.journal_entries()
        assert len(entries) == 2
        assert torn == 1

    def test_unjournaled_record_still_recovered(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        record = make_record()
        store.append(record)
        store.journal_path.unlink()  # crash between rename and journal append
        scan = store.scan()
        assert len(scan.records) == 1
        assert [(r.name, r.version) for r in scan.unjournaled] == [("power", 1)]

    def test_missing_record_reported_not_fabricated(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        path = store.append(make_record())
        path.unlink()
        scan = store.scan()
        assert scan.records == ()
        assert [(m.name, m.version) for m in scan.missing] == [("power", 1)]

    def test_corrupt_record_quarantined_with_reason(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        path = store.append(make_record())
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        before = _counter("store.corrupt_quarantined")
        scan = store.scan()
        assert scan.records == ()
        assert len(scan.quarantined) == 1
        quarantined = scan.quarantined[0]
        assert quarantined.parent == store.quarantine_dir
        reason = quarantined.with_suffix(quarantined.suffix + ".reason")
        assert "checksum" in reason.read_text()
        assert _counter("store.corrupt_quarantined") - before == 1
        # Quarantined records never reappear on later scans.
        assert store.scan().records == ()

    def test_write_crash_leaves_nothing_visible(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        plan = FaultPlan.fail_once("store.write", error=SimulatedCrash)
        with inject(plan):
            with pytest.raises(SimulatedCrash):
                store.append(make_record())
        assert store.record_paths() == []
        assert store.journal_entries() == ([], 0)

    def test_fsync_crash_leaves_torn_record(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        before = _counter("store.torn_writes")
        plan = FaultPlan.fail_once("store.fsync", error=SimulatedCrash)
        with inject(plan):
            with pytest.raises(SimulatedCrash):
                store.append(make_record())
        assert _counter("store.torn_writes") - before == 1
        paths = store.record_paths()
        assert len(paths) == 1  # the rename landed...
        with pytest.raises(CorruptRecordError):
            store.read(paths[0])  # ...but the tail pages did not
        scan = store.scan()
        assert scan.records == ()
        assert len(scan.quarantined) == 1

    def test_non_crash_write_failure_wrapped_and_cleaned(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        before = _counter("store.write_failures")
        with inject(FaultPlan.fail_once("store.write")):
            with pytest.raises(StoreWriteError):
                store.append(make_record())
        assert _counter("store.write_failures") - before == 1
        assert store.record_paths() == []
        assert list(store.records_dir.iterdir()) == []  # temp cleaned up

    def test_injected_load_fault_is_corrupt_record(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        path = store.append(make_record())
        with inject(FaultPlan.fail_once("store.load")):
            with pytest.raises(CorruptRecordError, match="unreadable"):
                store.read(path)
        assert store.read(path).name == "power"  # fault was one-shot


class TestRecovery:
    def _publish_fitted(self, registry, name, seed=0):
        basis = make_basis()
        coeffs = np.random.default_rng(seed).normal(size=len(basis.indices))
        return registry.publish(name, FittedModel(basis, coeffs))

    def test_recovery_is_bitwise_identical(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        self._publish_fitted(registry, "power", seed=1)
        self._publish_fitted(registry, "power", seed=2)
        self._publish_fitted(registry, "delay", seed=3)
        snapshot = registry.snapshot()

        recovery = RecoveryManager(ModelStore(tmp_path, use_fsync=False)).recover()
        assert recovery.registry.snapshot() == snapshot
        assert recovery.restored == (("delay", 1), ("power", 1), ("power", 2))
        assert recovery.rejected == () and recovery.quarantined == ()
        assert recovery.registry.current("power").version == 2

    def test_corrupt_record_not_restored(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        self._publish_fitted(registry, "power", seed=1)
        self._publish_fitted(registry, "power", seed=2)
        # Corrupt v2 on disk; recovery must fall back to v1.
        path = store.records_dir / store.record_filename("power", 2)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        recovery = RecoveryManager(ModelStore(tmp_path, use_fsync=False)).recover()
        assert recovery.restored == (("power", 1),)
        assert len(recovery.quarantined) == 1
        assert recovery.registry.current("power").version == 1

    def test_nonfinite_record_rejected_and_quarantined(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        store.append(
            make_record(coefficients=np.array([1.0, np.nan, 0.0, 2.0]))
        )
        recovery = RecoveryManager(store).recover()
        assert recovery.restored == ()
        assert len(recovery.rejected) == 1
        assert "non-finite" in recovery.rejected[0][2]
        assert len(recovery.quarantined) == 1
        assert "power" not in recovery.registry

    def test_sequential_state_none_without_samples(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        self._publish_fitted(registry, "power")  # plain FittedModel publish
        recovery = RecoveryManager(ModelStore(tmp_path, use_fsync=False)).recover()
        assert recovery.sequential_state("power") is None
        assert recovery.sequential_state("unknown") is None

    def test_sequential_warm_restart_matches_uncrashed_fitter(self, tmp_path):
        basis = make_basis(num_vars=2, degree=2)
        rng = np.random.default_rng(7)
        alpha = rng.normal(size=len(basis.indices))

        def draw(n):
            x = rng.normal(size=(n, basis.num_vars))
            f = basis.design_matrix(x) @ alpha + 0.01 * rng.normal(size=n)
            return x, f

        def fitter():
            return SequentialBmf(
                basis, alpha, prior_kind="nonzero-mean", eta=1e-3
            )

        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        crashed = fitter()
        survivor = fitter()
        x1, f1 = draw(30)
        crashed.add_samples(x1, f1)
        survivor.add_samples(x1, f1)
        registry.publish("power", crashed)
        del crashed  # the "kill"

        recovery = RecoveryManager(ModelStore(tmp_path, use_fsync=False)).recover()
        state = recovery.sequential_state("power")
        assert state is not None
        rearmed = fitter().rearm(state)
        assert rearmed.last_refit_mode == "rearmed"
        np.testing.assert_allclose(
            rearmed.model.coefficients_, survivor.model.coefficients_
        )
        # The restored factor keeps border-updating on the next batch.
        x2, f2 = draw(10)
        rearmed.add_samples(x2, f2)
        survivor.add_samples(x2, f2)
        assert rearmed.last_refit_mode == "incremental"
        np.testing.assert_allclose(
            rearmed.model.coefficients_, survivor.model.coefficients_
        )


class TestRegistryStoreIntegration:
    def _model(self, seed=0):
        basis = make_basis()
        coeffs = np.random.default_rng(seed).normal(size=len(basis.indices))
        return FittedModel(basis, coeffs)

    def test_invalid_durability_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="durability"):
            ModelRegistry(store=ModelStore(tmp_path), durability="maybe")

    def test_required_durability_rejects_on_store_failure(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        with inject(FaultPlan.fail_once("store.write")):
            with pytest.raises(PublishRejectedError, match="durable"):
                registry.publish("power", self._model())
        assert "power" not in registry
        assert store.record_paths() == []
        # The registry heals: the next publish lands normally as v1... no,
        # version numbers are never reused -- the failed allocate burned v1.
        record = registry.publish("power", self._model())
        assert record.version == 2

    def test_best_effort_durability_serves_without_persisting(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store, durability="best-effort")
        before = _counter("serving.publish_persist_skipped")
        with inject(FaultPlan.fail_once("store.write")):
            record = registry.publish("power", self._model())
        assert record.version == 1
        assert registry.current("power").version == 1
        assert store.record_paths() == []
        assert _counter("serving.publish_persist_skipped") - before == 1

    def test_crash_mid_publish_never_announces(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        registry.publish("power", self._model(seed=1))
        snapshot = registry.snapshot()
        plan = FaultPlan.fail_once("store.fsync", error=SimulatedCrash)
        with inject(plan):
            with pytest.raises(SimulatedCrash):
                registry.publish("power", self._model(seed=2))
        # Write-ahead ordering: the crash may leave a durable (here: torn)
        # record, but the in-memory registry never moved.
        assert registry.snapshot() == snapshot
        assert registry.current("power").version == 1
        recovery = RecoveryManager(ModelStore(tmp_path, use_fsync=False)).recover()
        assert recovery.restored == (("power", 1),)
        assert len(recovery.quarantined) == 1
        assert recovery.registry.snapshot() == snapshot

    def test_restore_out_of_order_rejected(self):
        registry = ModelRegistry()
        model = self._model()
        registry.restore("power", 3, "key", 1.0, model)
        with pytest.raises(ValueError, match="out of order"):
            registry.restore("power", 3, "key", 2.0, model)
        # Publishing after a restore continues the version sequence.
        assert registry.publish("power", model).version == 4


class TestJournalTornMetric:
    """Regression: ``store.journal_torn`` was charged on *every* scan of
    the same torn tail, so any poll-driven consumer (recovery retries, a
    replication follower tailing the journal) inflated the damage count
    without any new damage occurring.  The counter is keyed on the torn
    tail's offset + content and charged once per distinct damage state."""

    def _corrupt_tail(self, store, garbage=b"v1 00000000 {torn"):
        with open(store.journal_path, "ab") as handle:
            handle.write(garbage)  # crashed append: no trailing newline

    def test_two_consecutive_scans_count_once(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        store.append(make_record(version=1))
        store.append(make_record(version=2))
        self._corrupt_tail(store)
        before = _counter("store.journal_torn")
        first = store.journal_entries()
        second = store.journal_entries()
        assert first[1] == second[1] == 1  # torn count still reported...
        assert _counter("store.journal_torn") - before == 1  # ...charged once
        # Full scans route through the same parse: still no re-charge.
        assert store.scan().torn_journal_lines == 1
        assert _counter("store.journal_torn") - before == 1

    def test_new_damage_is_charged_again(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        store.append(make_record(version=1))
        self._corrupt_tail(store)
        before = _counter("store.journal_torn")
        store.journal_entries()
        assert _counter("store.journal_torn") - before == 1
        self._corrupt_tail(store, garbage=b" more")  # the tail grew: new state
        store.journal_entries()
        assert _counter("store.journal_torn") - before == 2

    def test_repair_resets_the_fingerprint(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        store.append(make_record(version=1))
        clean = store.journal_path.read_bytes()
        self._corrupt_tail(store)
        before = _counter("store.journal_torn")
        store.journal_entries()
        assert _counter("store.journal_torn") - before == 1
        store.journal_path.write_bytes(clean)  # operator repaired the tail
        assert store.journal_entries()[1] == 0
        assert _counter("store.journal_torn") - before == 1
        # Identical damage after a repair is a *new* event: charge again.
        self._corrupt_tail(store)
        store.journal_entries()
        assert _counter("store.journal_torn") - before == 2


class TestVersionGaps:
    """The allocate-then-persist gap, pinned as an invariant: version
    numbers are allocated exactly once and never reused, so a publish
    that fails after allocation burns its number and nothing -- later
    publishes, durable-but-unannounced leftovers, or recovery -- can
    ever collide on a version."""

    def _model(self, seed=0):
        basis = make_basis()
        coeffs = np.random.default_rng(seed).normal(size=len(basis.indices))
        return FittedModel(basis, coeffs)

    def test_failed_publish_gap_survives_recovery(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        registry.publish("power", self._model(seed=1))
        with inject(FaultPlan.fail_once("store.write")):
            with pytest.raises(PublishRejectedError):
                registry.publish("power", self._model(seed=2))  # burns v2
        assert registry.publish("power", self._model(seed=3)).version == 3
        recovery = RecoveryManager(ModelStore(tmp_path, use_fsync=False)).recover()
        assert recovery.restored == (("power", 1), ("power", 3))
        # The recovered allocator resumes above the highest durable
        # version: the gap persists, no number is ever handed out twice.
        assert recovery.registry.publish("power", self._model(seed=4)).version == 4
        assert [r.version for r in store.scan().records] == [1, 3]  # the gap

    def test_durable_but_unannounced_record_never_collides(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        v1 = registry.publish("power", self._model(seed=1))
        # A crash between persist and announce leaves exactly this state:
        # an intact durable v2 the in-memory registry never saw.
        store.append_model(
            "power", 2, "ab" * 16, v1.published_at + 1.0, self._model(seed=2)
        )
        assert registry.current("power").version == 1
        recovery = RecoveryManager(ModelStore(tmp_path, use_fsync=False)).recover()
        # Recovery admits the unannounced record and resumes above it.
        assert recovery.restored == (("power", 1), ("power", 2))
        assert recovery.registry.current("power").version == 2
        assert recovery.registry.publish("power", self._model(seed=3)).version == 3

    def test_torn_leftover_is_skipped_not_reused(self, tmp_path):
        store = ModelStore(tmp_path, use_fsync=False)
        registry = ModelRegistry(store=store)
        registry.publish("power", self._model(seed=1))
        plan = FaultPlan.fail_once("store.fsync", error=SimulatedCrash)
        with inject(plan):
            with pytest.raises(SimulatedCrash):
                registry.publish("power", self._model(seed=2))  # torn v2
        # The survivor (same process) keeps publishing past the gap...
        assert registry.publish("power", self._model(seed=3)).version == 3
        # ...and recovery quarantines the torn v2 instead of resurrecting
        # its number.
        recovery = RecoveryManager(ModelStore(tmp_path, use_fsync=False)).recover()
        assert recovery.restored == (("power", 1), ("power", 3))
        assert len(recovery.quarantined) == 1
        assert recovery.registry.publish("power", self._model(seed=4)).version == 4
