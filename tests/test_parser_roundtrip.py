"""Round-trip tests: parsed netlists behave exactly like Python-built ones."""

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    Mosfet,
    Pulse,
    Resistor,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
    parse_netlist,
    transient,
)


class TestTransientRoundTrip:
    def test_rc_pulse_matches_python_circuit(self):
        parsed = parse_netlist(
            """rc
            VIN in 0 PULSE(0 1 1n 1p 1p 1m)
            R1 in out 1k
            C1 out 0 1p
            """
        )
        built = Circuit("rc")
        built.add(
            VoltageSource(
                "VIN", "in", "0",
                waveform=Pulse(0, 1, delay=1e-9, rise=1e-12, fall=1e-12,
                               width=1e-3),
            )
        )
        built.add(Resistor("R1", "in", "out", 1e3))
        built.add(Capacitor("C1", "out", "0", 1e-12))

        parsed_result = transient(parsed, 5e-9, 1e-11, initial="zero")
        built_result = transient(built, 5e-9, 1e-11, initial="zero")
        assert np.allclose(
            parsed_result.voltage("out"), built_result.voltage("out")
        )


class TestAcRoundTrip:
    def test_cs_amp_matches_python_circuit(self):
        parsed = parse_netlist(
            """cs
            VDD vdd 0 1.8
            VG g 0 0.9
            RD vdd d 10k
            CL d 0 1p
            M1 d g 0 NMOS kp=2e-4 vth=0.5 lambda=0.02
            """
        )
        built = Circuit("cs")
        built.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        built.add(VoltageSource("VG", "g", "0", dc=0.9))
        built.add(Resistor("RD", "vdd", "d", 10e3))
        built.add(Capacitor("CL", "d", "0", 1e-12))
        built.add(Mosfet("M1", "d", "g", "0", kp=2e-4, vth=0.5, lambda_=0.02))

        frequencies = np.geomspace(1e3, 1e9, 10)
        parsed_gain = ac_analysis(parsed, frequencies, "VG").gain("d")
        built_gain = ac_analysis(built, frequencies, "VG").gain("d")
        assert np.allclose(parsed_gain, built_gain)

    def test_operating_points_identical(self):
        text = """bias
        VDD vdd 0 1.2
        R1 vdd mid 2k
        R2 mid 0 1k
        """
        op_a = dc_operating_point(parse_netlist(text))
        op_b = dc_operating_point(parse_netlist(text))
        assert op_a.voltage("mid") == op_b.voltage("mid")
        assert op_a.voltage("mid") == pytest.approx(0.4)
