"""Unit tests for sparse multi-index sets."""

import pytest

from repro.basis import (
    index_set_size,
    linear_index_set,
    total_degree_index_set,
    validate_index_set,
)


class TestLinearIndexSet:
    def test_size_with_constant(self):
        assert len(linear_index_set(10)) == 11

    def test_size_without_constant(self):
        assert len(linear_index_set(10, include_constant=False)) == 10

    def test_constant_first(self):
        assert linear_index_set(3)[0] == ()

    def test_variables_in_order(self):
        indices = linear_index_set(4)
        assert indices[1:] == [((0, 1),), ((1, 1),), ((2, 1),), ((3, 1),)]

    def test_zero_vars(self):
        assert linear_index_set(0) == [()]

    def test_negative_vars_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            linear_index_set(-1)


class TestTotalDegreeIndexSet:
    def test_degree_zero_is_constant_only(self):
        assert total_degree_index_set(5, 0) == [()]

    def test_degree_one_equals_linear(self):
        assert total_degree_index_set(5, 1) == linear_index_set(5)

    @pytest.mark.parametrize(
        "num_vars,degree", [(2, 2), (3, 2), (2, 3), (4, 2), (5, 3)]
    )
    def test_size_is_binomial(self, num_vars, degree):
        indices = total_degree_index_set(num_vars, degree)
        assert len(indices) == index_set_size(num_vars, degree)

    def test_2d_degree2_matches_paper_eq5(self):
        """Eq. (5): 1, x1, x2, (x1^2-1)/sqrt2, x1*x2, ... graded order."""
        indices = total_degree_index_set(2, 2)
        assert indices[0] == ()
        assert indices[1] == ((0, 1),)
        assert indices[2] == ((1, 1),)
        # Degree-2 block contains x1^2, x2^2 and the cross term x1*x2.
        degree2 = set(indices[3:])
        assert degree2 == {((0, 2),), ((1, 2),), ((0, 1), (1, 1))}

    def test_graded_ordering(self):
        indices = total_degree_index_set(3, 3)
        degrees = [sum(d for _, d in idx) for idx in indices]
        assert degrees == sorted(degrees)

    def test_no_duplicates(self):
        indices = total_degree_index_set(4, 3)
        assert len(indices) == len(set(indices))

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            total_degree_index_set(3, -1)


class TestValidation:
    def test_accepts_valid_set(self):
        validate_index_set([(), ((0, 1),), ((1, 2),)], num_vars=2)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_index_set([((0, 1),), ((0, 1),)], num_vars=2)

    def test_rejects_out_of_range_variable(self):
        with pytest.raises(ValueError, match="outside"):
            validate_index_set([((5, 1),)], num_vars=3)

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError, match="non-positive degree"):
            validate_index_set([((0, 0),)], num_vars=2)

    def test_rejects_unsorted_variables(self):
        with pytest.raises(ValueError, match="unsorted"):
            validate_index_set([((1, 1), (0, 1))], num_vars=2)

    def test_rejects_repeated_variable_in_one_index(self):
        with pytest.raises(ValueError, match="unsorted or repeated"):
            validate_index_set([((0, 1), (0, 2))], num_vars=2)
