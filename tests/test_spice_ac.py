"""Unit tests for small-signal AC analysis."""

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    Resistor,
    VoltageSource,
    ac_analysis,
)


def rc_lowpass():
    ckt = Circuit("lp")
    ckt.add(VoltageSource("VIN", "in", "0", dc=0.0))
    ckt.add(Resistor("R", "in", "out", 1e3))
    ckt.add(Capacitor("C", "out", "0", 1e-9))  # pole at ~159 kHz
    return ckt


class TestRcLowpass:
    def test_dc_gain_is_unity(self):
        result = ac_analysis(rc_lowpass(), [1.0], "VIN")
        assert result.gain("out")[0] == pytest.approx(1.0, rel=1e-6)

    def test_pole_frequency(self):
        pole = 1.0 / (2 * np.pi * 1e3 * 1e-9)
        result = ac_analysis(rc_lowpass(), [pole], "VIN")
        assert result.gain("out")[0] == pytest.approx(1 / np.sqrt(2), rel=1e-3)
        assert result.phase("out")[0] == pytest.approx(-np.pi / 4, rel=1e-3)

    def test_rolloff_20db_per_decade(self):
        pole = 1.0 / (2 * np.pi * 1e3 * 1e-9)
        freqs = [100 * pole, 1000 * pole]
        result = ac_analysis(rc_lowpass(), freqs, "VIN")
        drop = result.gain_db("out")[0] - result.gain_db("out")[1]
        assert drop == pytest.approx(20.0, abs=0.1)

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ac_analysis(rc_lowpass(), [0.0], "VIN")

    def test_unknown_source_rejected(self):
        with pytest.raises(KeyError):
            ac_analysis(rc_lowpass(), [1.0], "VX")

    def test_non_source_input_rejected(self):
        with pytest.raises(TypeError, match="independent source"):
            ac_analysis(rc_lowpass(), [1.0], "R")


class TestCommonSourceAmp:
    def build(self):
        ckt = Circuit("cs")
        ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        ckt.add(VoltageSource("VG", "g", "0", dc=0.9))
        ckt.add(Resistor("RD", "vdd", "d", 10e3))
        ckt.add(Mosfet("M1", "d", "g", "0", kp=2e-4, vth=0.5, lambda_=0.02))
        return ckt

    def test_low_frequency_gain_matches_gm_ro_rd(self):
        ckt = self.build()
        result = ac_analysis(ckt, [1.0], "VG")
        # Hand analysis at the operating point.
        fet = ckt.element("M1")
        from repro.spice import dc_operating_point

        op = dc_operating_point(ckt)
        _ids, gm, gds = fet.ids(0.9, op.voltage("d"))
        expected = gm / (gds + 1e-4)  # RD = 10k -> 1e-4 S
        assert result.gain("d")[0] == pytest.approx(expected, rel=1e-4)

    def test_inverting_phase(self):
        result = ac_analysis(self.build(), [1.0], "VG")
        assert abs(result.phase("d")[0]) == pytest.approx(np.pi, abs=1e-3)

    def test_output_pole_from_load_cap(self):
        ckt = self.build()
        ckt.add(Capacitor("CL", "d", "0", 1e-12))
        low = ac_analysis(ckt, [1e3], "VG").gain("d")[0]
        high = ac_analysis(ckt, [1e9], "VG").gain("d")[0]
        assert high < 0.2 * low


class TestCurrentSourceInput:
    def test_transimpedance(self):
        ckt = Circuit("ti")
        ckt.add(CurrentSource("IIN", "0", "n", dc=0.0))
        ckt.add(Resistor("R", "n", "0", 5e3))
        result = ac_analysis(ckt, [1.0], "IIN")
        assert result.gain("n")[0] == pytest.approx(5e3, rel=1e-6)
