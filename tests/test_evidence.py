"""Unit tests for evidence-based (type-II ML) prior/eta selection."""

import numpy as np
import pytest

from repro.bmf import (
    BmfRegressor,
    KernelMapSolver,
    log_evidence,
    nonzero_mean_prior,
    select_prior_and_eta_by_evidence,
    zero_mean_prior,
)
from repro.basis import OrthonormalBasis
from repro.regression import relative_error


@pytest.fixture
def fusion_data(rng):
    num_samples, num_terms = 60, 150
    design = rng.standard_normal((num_samples, num_terms))
    truth = rng.standard_normal(num_terms) * (rng.random(num_terms) < 0.3)
    truth[0] = 5.0
    target = design @ truth + 0.02 * rng.standard_normal(num_samples)
    early = truth * (1 + 0.05 * rng.standard_normal(num_terms))
    return design, target, truth, early


class TestLogEvidence:
    def test_matches_dense_marginal_likelihood(self, fusion_data):
        """Cross-check the eigen-decomposed form against brute force."""
        design, target, _truth, early = fusion_data
        prior = nonzero_mean_prior(early)
        solver = KernelMapSolver(design, target, prior)
        etas = np.array([0.1, 1.0, 10.0])
        values = log_evidence(solver, etas)

        residual = solver.centered_target
        num_samples = residual.shape[0]
        for eta, value in zip(etas, values):
            covariance = solver.kernel + eta * np.eye(num_samples)
            tau_sq = float(residual @ np.linalg.solve(covariance, residual))
            tau_sq /= num_samples
            sign, log_det = np.linalg.slogdet(covariance)
            assert sign > 0
            expected = (
                -0.5 * num_samples * (np.log(2 * np.pi * tau_sq) + 1.0)
                - 0.5 * log_det
            )
            assert value == pytest.approx(expected, rel=1e-9)

    def test_peaks_in_the_interior(self, fusion_data):
        """The evidence curve has a maximum away from the grid edges."""
        design, target, _truth, early = fusion_data
        prior = nonzero_mean_prior(early)
        solver = KernelMapSolver(design, target, prior)
        scale = float(np.mean(early**2)) * 60
        grid = np.geomspace(1e-6, 1e10, 25) * scale
        values = log_evidence(solver, grid)
        best = int(np.argmax(values))
        assert 0 < best < len(grid) - 1

    def test_invalid_eta_rejected(self, fusion_data):
        design, target, _truth, early = fusion_data
        solver = KernelMapSolver(design, target, zero_mean_prior(early))
        with pytest.raises(ValueError, match="positive"):
            log_evidence(solver, [1.0, 0.0])


class TestSelectByEvidence:
    def test_good_prior_wins(self, fusion_data):
        design, target, _truth, early = fusion_data
        report = select_prior_and_eta_by_evidence(
            design,
            target,
            [zero_mean_prior(early), nonzero_mean_prior(early)],
        )
        assert report.prior.name == "nonzero-mean"
        assert np.isfinite(report.log_evidence)

    def test_scrambled_prior_flips_choice(self, fusion_data, rng):
        design, target, _truth, early = fusion_data
        scrambled = np.abs(early) * rng.choice([-1.0, 1.0], early.shape)
        report = select_prior_and_eta_by_evidence(
            design,
            target,
            [zero_mean_prior(scrambled), nonzero_mean_prior(scrambled)],
        )
        assert report.prior.name == "zero-mean"

    def test_empty_priors_rejected(self, fusion_data):
        design, target, *_ = fusion_data
        with pytest.raises(ValueError, match="at least one"):
            select_prior_and_eta_by_evidence(design, target, [])


class TestEvidenceSelectionInRegressor:
    def test_comparable_accuracy_to_cv(self, fusion_data, rng):
        design, target, truth, early = fusion_data
        basis = OrthonormalBasis.linear(149)  # 150 terms incl constant
        x_test = rng.standard_normal((500, 149))
        reference = basis.design_matrix(x_test) @ truth

        def error_with(selection):
            model = BmfRegressor(
                basis, early, prior_kind="select", selection=selection
            )
            model.fit_design(design, target)
            return relative_error(
                basis.design_matrix(x_test) @ model.coefficients_, reference
            )

        cv_error = error_with("cv")
        evidence_error = error_with("evidence")
        assert evidence_error < 3 * cv_error
        assert evidence_error < 0.05

    def test_reports_stored(self, fusion_data):
        design, target, _truth, early = fusion_data
        basis = OrthonormalBasis.linear(149)
        model = BmfRegressor(
            basis, early, prior_kind="select", selection="evidence"
        )
        model.fit_design(design, target)
        assert model.evidence_report_ is not None
        assert model.cv_report_ is None

    def test_invalid_selection_rejected(self, fusion_data):
        _design, _target, _truth, early = fusion_data
        basis = OrthonormalBasis.linear(149)
        with pytest.raises(ValueError, match="selection"):
            BmfRegressor(basis, early, selection="aic")
