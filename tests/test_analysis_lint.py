"""Tests for the AST lint engine, rules REP001-REP009/REP013-REP014, noqa, and baseline."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    LintEngine,
    Severity,
    filter_baselined,
    load_baseline,
    registered_rules,
    write_baseline,
)
from repro.analysis.baseline import fingerprint
from repro.analysis.cli import main
from repro.analysis.engine import iter_python_files

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(source, is_test=False, **engine_kwargs):
    engine = LintEngine(**engine_kwargs)
    return engine.lint_source(source, path="snippet.py", is_test=is_test)


def rule_ids(violations):
    return [v.rule_id for v in violations]


class TestRep001GlobalStateRng:
    def test_seed_flagged(self):
        out = lint("import numpy as np\nnp.random.seed(0)\n")
        assert rule_ids(out) == ["REP001"]
        assert out[0].line == 2

    def test_sampling_functions_flagged(self):
        for call in ("np.random.rand(3)", "np.random.randn(2)", "numpy.random.normal()"):
            out = lint(f"import numpy as np\nimport numpy\nx = {call}\n")
            assert rule_ids(out) == ["REP001"], call

    def test_generator_api_not_flagged(self):
        clean = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.normal(size=3)\n"
            "def f(g: np.random.Generator): ...\n"
        )
        assert lint(clean) == []

    def test_applies_in_tests_too(self):
        out = lint("import numpy as np\nnp.random.seed(1)\n", is_test=True)
        assert rule_ids(out) == ["REP001"]


class TestRep002UnseededDefaultRng:
    def test_unseeded_flagged(self):
        out = lint("import numpy as np\nrng = np.random.default_rng()\n")
        assert rule_ids(out) == ["REP002"]

    def test_none_seed_flagged(self):
        out = lint("import numpy as np\nrng = np.random.default_rng(None)\n")
        assert rule_ids(out) == ["REP002"]
        out = lint("import numpy as np\nrng = np.random.default_rng(seed=None)\n")
        assert rule_ids(out) == ["REP002"]

    def test_seeded_ok(self):
        assert lint("import numpy as np\nrng = np.random.default_rng(42)\n") == []
        assert lint("import numpy as np\nrng = np.random.default_rng(seed=3)\n") == []
        assert lint("from numpy.random import default_rng\nr = default_rng(9)\n") == []

    def test_variable_seed_ok(self):
        assert lint("import numpy as np\ndef f(s):\n    return np.random.default_rng(s)\n") == []

    def test_skipped_in_tests(self):
        assert lint("import numpy as np\nrng = np.random.default_rng()\n", is_test=True) == []


class TestRep003FloatEquality:
    def test_eq_and_ne_flagged(self):
        assert rule_ids(lint("x = 1\ny = x == 0.0\n")) == ["REP003"]
        assert rule_ids(lint("x = 1\ny = x != 1.5\n")) == ["REP003"]

    def test_literal_on_left_and_negative(self):
        assert rule_ids(lint("x = 1\ny = 0.5 == x\n")) == ["REP003"]
        assert rule_ids(lint("x = 1\ny = x == -0.5\n")) == ["REP003"]

    def test_int_literal_and_ordering_ok(self):
        assert lint("x = 1\ny = x == 0\n") == []
        assert lint("x = 1.0\ny = x <= 0.5\n") == []

    def test_variable_comparison_ok(self):
        assert lint("a = 1.0\nb = 2.0\nc = a == b\n") == []

    def test_skipped_in_tests(self):
        assert lint("x = 1\ny = x == 0.0\n", is_test=True) == []


class TestRep004MutableDefault:
    def test_list_dict_set_defaults_flagged(self):
        for default in ("[]", "{}", "set()", "dict()", "list()"):
            out = lint(f"def f(a, b={default}):\n    return b\n")
            assert rule_ids(out) == ["REP004"], default

    def test_keyword_only_default_flagged(self):
        out = lint("def f(*, b=[]):\n    return b\n")
        assert rule_ids(out) == ["REP004"]

    def test_immutable_defaults_ok(self):
        assert lint("def f(a=(), b=None, c=1, d='x', e=frozenset()):\n    return a\n") == []

    def test_applies_in_tests(self):
        assert rule_ids(lint("def f(a=[]):\n    return a\n", is_test=True)) == ["REP004"]


class TestRep005UnlockedModuleState:
    def test_module_dict_without_lock_flagged(self):
        out = lint("registry = {}\n")
        assert rule_ids(out) == ["REP005"]

    def test_module_dict_with_lock_ok(self):
        src = "import threading\n_lock = threading.Lock()\nregistry = {}\n"
        assert lint(src) == []

    def test_upper_case_constant_ok(self):
        assert lint("TABLE = {'a': 1}\n_PRIVATE_TABLE = {'b': 2}\n") == []

    def test_dunder_ok(self):
        assert lint("__all__ = ['x']\n") == []

    def test_function_local_ok(self):
        assert lint("def f():\n    local = {}\n    return local\n") == []

    def test_annotated_assignment_flagged(self):
        out = lint("cache: dict = {}\n")
        assert rule_ids(out) == ["REP005"]


class TestRep006SwallowedException:
    def test_bare_except_flagged(self):
        out = lint("try:\n    x = 1\nexcept:\n    x = 2\n")
        assert rule_ids(out) == ["REP006"]

    def test_pass_only_handler_flagged(self):
        out = lint("try:\n    x = 1\nexcept ValueError:\n    pass\n")
        assert rule_ids(out) == ["REP006"]

    def test_handled_exception_ok(self):
        src = "try:\n    x = 1\nexcept ValueError:\n    x = 2\n"
        assert lint(src) == []

    def test_reraise_ok(self):
        src = "try:\n    x = 1\nexcept ValueError:\n    raise\n"
        assert lint(src) == []


class TestRep007AssertValidation:
    def test_assert_in_src_flagged(self):
        out = lint("def f(x):\n    assert x > 0\n    return x\n")
        assert rule_ids(out) == ["REP007"]

    def test_assert_in_tests_ok(self):
        assert lint("def test_f():\n    assert 1 > 0\n", is_test=True) == []


class TestRep008SleepInLibrary:
    @staticmethod
    def _lint_at(source, path, is_test=False):
        return LintEngine().lint_source(source, path=path, is_test=is_test)

    def test_time_sleep_flagged(self):
        out = lint("import time\ntime.sleep(0.1)\n")
        assert "REP008" in rule_ids(out)

    def test_bare_sleep_name_flagged(self):
        out = lint("from time import sleep\nsleep(1)\n")
        assert "REP008" in rule_ids(out)

    def test_unrelated_sleep_method_ok(self):
        assert "REP008" not in rule_ids(lint("driver.sleep(1)\n"))

    def test_sanctioned_faults_module_exempt(self):
        out = self._lint_at(
            "import time\ntime.sleep(0.1)\n", "src/repro/faults/retry.py"
        )
        assert "REP008" not in rule_ids(out)

    def test_backslash_paths_normalized(self):
        out = self._lint_at(
            "import time\ntime.sleep(0.1)\n", "src\\repro\\faults\\failpoints.py"
        )
        assert "REP008" not in rule_ids(out)

    def test_tests_exempt(self):
        assert "REP008" not in rule_ids(
            lint("import time\ntime.sleep(0.1)\n", is_test=True)
        )


class TestRep009UnmanagedFileHandle:
    def test_bare_open_flagged(self):
        out = lint("f = open('x.txt')\ndata = f.read()\nf.close()\n")
        assert rule_ids(out) == ["REP009"]
        assert out[0].line == 1

    def test_io_open_flagged(self):
        out = lint("import io\nf = io.open('x.txt')\n")
        assert rule_ids(out) == ["REP009"]

    def test_named_temporary_file_flagged(self):
        out = lint("import tempfile\nt = tempfile.NamedTemporaryFile()\n")
        assert rule_ids(out) == ["REP009"]
        out = lint("from tempfile import NamedTemporaryFile\nt = NamedTemporaryFile()\n")
        assert rule_ids(out) == ["REP009"]

    def test_with_block_ok(self):
        assert lint("with open('x.txt') as f:\n    f.read()\n") == []
        assert lint(
            "import tempfile\nwith tempfile.NamedTemporaryFile() as t:\n    t.write(b'x')\n"
        ) == []

    def test_call_nested_in_with_item_ok(self):
        src = (
            "import contextlib\n"
            "with contextlib.closing(open('x.txt')) as f:\n"
            "    f.read()\n"
        )
        assert lint(src) == []

    def test_open_in_expression_flagged(self):
        out = lint("data = open('x.txt').read()\n")
        assert rule_ids(out) == ["REP009"]

    def test_os_open_and_method_open_ok(self):
        assert lint("import os\nfd = os.open('x', os.O_RDONLY)\n") == []
        assert lint("h = path.open()\n") == []

    def test_skipped_in_tests(self):
        assert lint("f = open('x.txt')\n", is_test=True) == []

    def test_noqa_suppresses(self):
        assert lint("f = open('x.txt')  # repro: noqa[REP009]\n") == []


class TestRep014UntimedBlockingWait:
    @staticmethod
    def _lint_at(source, path, is_test=False):
        return LintEngine().lint_source(source, path=path, is_test=is_test)

    def test_untimed_result_flagged(self):
        out = lint("value = future.result()\n")
        assert rule_ids(out) == ["REP014"]

    def test_untimed_join_and_wait_flagged(self):
        for call in ("thread.join()", "event.wait()", "cond.wait()"):
            out = lint(f"{call}\n")
            assert "REP014" in rule_ids(out), call

    def test_timed_positional_ok(self):
        for call in ("future.result(5.0)", "thread.join(1)", "event.wait(0.1)"):
            assert lint(f"{call}\n") == [], call

    def test_timed_keyword_ok(self):
        assert lint("future.result(timeout=5.0)\n") == []
        assert lint("thread.join(timeout=None)\n") == []

    def test_str_join_with_args_ok(self):
        assert lint("s = ', '.join(parts)\n") == []

    def test_opaque_kwargs_given_benefit_of_doubt(self):
        assert lint("future.result(**kwargs)\n") == []

    def test_bare_function_call_not_flagged(self):
        # Only attribute calls: a local helper named wait()/join() is not
        # the concurrency primitive this rule targets.
        assert lint("wait()\njoin()\n") == []

    def test_sanctioned_faults_module_exempt(self):
        out = self._lint_at(
            "value = future.result()\n", "src/repro/faults/retry.py"
        )
        assert "REP014" not in rule_ids(out)

    def test_backslash_paths_normalized(self):
        out = self._lint_at(
            "value = future.result()\n", "src\\repro\\faults\\retry.py"
        )
        assert "REP014" not in rule_ids(out)

    def test_tests_exempt(self):
        assert lint("value = future.result()\n", is_test=True) == []

    def test_noqa_suppresses(self):
        assert (
            lint("t.join()  # repro: noqa[REP014] -- bounded by sentinel\n")
            == []
        )


class TestSuppressions:
    def test_targeted_noqa_suppresses(self):
        out = lint("x = 1\ny = x == 0.0  # repro: noqa[REP003]\n")
        assert out == []

    def test_bare_noqa_suppresses_everything(self):
        out = lint("x = 1\ny = x == 0.0  # repro: noqa\n")
        assert out == []

    def test_wrong_rule_noqa_keeps_violation(self):
        out = lint("x = 1\ny = x == 0.0  # repro: noqa[REP001]\n")
        assert rule_ids(out) == ["REP003"]

    def test_multiple_rules_in_one_comment(self):
        src = "import numpy as np\nz = np.random.rand(2) == 0.0  # repro: noqa[REP001, REP003]\n"
        assert lint(src) == []

    def test_flake8_style_noqa_is_ignored(self):
        # Plain `# noqa` (without the repro: prefix) must NOT suppress.
        out = lint("x = 1\ny = x == 0.0  # noqa\n")
        assert rule_ids(out) == ["REP003"]


class TestEngine:
    def test_syntax_error_reported_as_parse(self):
        out = lint("def broken(:\n")
        assert rule_ids(out) == ["PARSE"]
        assert out[0].severity == Severity.ERROR

    def test_select_and_ignore(self):
        src = "x = 1\ny = x == 0.0\nz = np.random.seed\nimport numpy as np\n"
        assert rule_ids(lint(src, select=["REP003"])) == ["REP003"]
        assert "REP003" not in rule_ids(lint(src, ignore=["REP003"]))

    def test_unknown_select_raises(self):
        with pytest.raises(ValueError):
            LintEngine(select=["REP999"])

    def test_registry_has_all_thirteen_rules(self):
        ids = set(registered_rules())
        expected = {f"REP00{i}" for i in range(1, 10)}
        expected |= {"REP010", "REP011", "REP012", "REP013", "REP014"}
        assert expected <= ids

    def test_violations_sorted_by_location(self):
        src = "import numpy as np\nb = np.random.rand(1)\na = 1 == 0.5\n"
        out = lint(src)
        assert [v.line for v in out] == sorted(v.line for v in out)

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "bad.py").write_text("x = 1\n")
        found = [p.name for p in iter_python_files([str(tmp_path)])]
        assert found == ["ok.py"]

    def test_test_file_detection_by_path(self, tmp_path):
        test_dir = tmp_path / "tests"
        test_dir.mkdir()
        f = test_dir / "anything.py"
        f.write_text("x = 1\ny = x == 0.0\n")
        engine = LintEngine()
        assert engine.lint_file(f) == []  # REP003 skipped under tests/


class TestBaseline:
    def _violations(self, source):
        return LintEngine().lint_source(source, path="mod.py")

    def test_roundtrip_suppresses_existing(self, tmp_path):
        violations = self._violations("x = 1\ny = x == 0.0\n")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, violations)
        baseline = load_baseline(baseline_file)
        assert filter_baselined(violations, baseline) == []

    def test_new_violation_not_covered(self, tmp_path):
        old = self._violations("x = 1\ny = x == 0.0\n")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, old)
        new = self._violations("x = 1\ny = x == 0.0\nz = x != 2.5\n")
        remaining = filter_baselined(new, load_baseline(baseline_file))
        assert len(remaining) == 1
        assert remaining[0].line == 3

    def test_count_semantics_second_occurrence_fails(self, tmp_path):
        old = self._violations("y = 1 == 0.5\n")
        baseline_file = tmp_path / "b.json"
        write_baseline(baseline_file, old)
        # The same offending line duplicated: one is baselined, one is new.
        new = self._violations("y = 1 == 0.5\ny = 1 == 0.5\n")
        assert len(filter_baselined(new, load_baseline(baseline_file))) == 1

    def test_line_drift_does_not_invalidate(self, tmp_path):
        old = self._violations("y = 1 == 0.5\n")
        baseline_file = tmp_path / "b.json"
        write_baseline(baseline_file, old)
        # Same offending text, shifted two lines down.
        drifted = self._violations("a = 1\nb = 2\ny = 1 == 0.5\n")
        assert filter_baselined(drifted, load_baseline(baseline_file)) == []

    def test_fingerprint_distinguishes_rule(self):
        [v] = self._violations("y = 1 == 0.5\n")
        assert "REP003" in fingerprint(v)

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"violations": [1, 2]}')
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert main([str(f)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_violation_exits_one_with_location(self, tmp_path, capsys):
        f = tmp_path / "dirty.py"
        f.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert main([str(f)]) == 1
        out = capsys.readouterr().out
        assert f"{f}:2:" in out and "REP001" in out

    def test_json_format(self, tmp_path, capsys):
        f = tmp_path / "dirty.py"
        f.write_text("y = 1 == 0.5\n")
        assert main([str(f), "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["errors"] == 1
        assert payload["violations"][0]["rule"] == "REP003"

    def test_write_then_use_baseline(self, tmp_path, capsys):
        f = tmp_path / "dirty.py"
        f.write_text("y = 1 == 0.5\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(f), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert main([str(f), "--baseline", str(baseline)]) == 0
        f.write_text("y = 1 == 0.5\nz = 2 == 0.25\n")
        assert main([str(f), "--baseline", str(baseline)]) == 1

    def test_missing_baseline_is_error(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert main([str(f), "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_select_filters(self, tmp_path, capsys):
        f = tmp_path / "dirty.py"
        f.write_text("y = 1 == 0.5\n")
        assert main([str(f), "--select", "REP001"]) == 0
        assert main([str(f), "--select", "REP003"]) == 1

    def test_unknown_rule_usage_error(self, tmp_path):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main([str(f), "--select", "REP999"])
        assert excinfo.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 10):
            assert f"REP00{i}" in out
        for rule_id in ("REP010", "REP011", "REP012", "REP013", "REP014"):
            assert rule_id in out

    def test_github_format(self, tmp_path, capsys):
        f = tmp_path / "dirty.py"
        f.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert main([str(f), "--format=github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=REP001" in out
        assert "line=2" in out

    def test_github_format_escapes_newlines_and_commas(self):
        from repro.analysis import Severity
        from repro.analysis.engine import Violation
        from repro.analysis.reporters import format_github

        v = Violation(
            path="a,b.py",
            line=3,
            col=0,
            rule_id="REP001",
            message="bad\nthing",
            severity=Severity.ERROR,
            line_text="",
        )
        out = format_github([v])
        first = out.splitlines()[0]
        assert first.startswith("::error file=a%2Cb.py,line=3,col=1")
        assert "bad%0Athing" in first

    def test_github_format_warning_severity(self):
        from repro.analysis import Severity
        from repro.analysis.engine import Violation
        from repro.analysis.reporters import format_github

        v = Violation(
            path="w.py",
            line=1,
            col=0,
            rule_id="REPX",
            message="heads up",
            severity=Severity.WARNING,
            line_text="",
        )
        assert format_github([v]).startswith("::warning ")


class TestShippedTreeIsClean:
    def test_src_reports_zero_violations(self):
        engine = LintEngine()
        violations = engine.lint_paths([str(REPO_ROOT / "src")])
        assert violations == [], "\n".join(
            f"{v.location()}: {v.rule_id} {v.message}" for v in violations
        )

    def test_tests_report_zero_violations(self):
        engine = LintEngine()
        violations = engine.lint_paths([str(REPO_ROOT / "tests")])
        assert violations == [], "\n".join(
            f"{v.location()}: {v.rule_id} {v.message}" for v in violations
        )

    def test_module_entry_point_runs(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(REPO_ROOT / "src")],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
            env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no violations" in proc.stdout


class TestAuditSuppressions:
    def test_lists_occurrences_and_tally(self, tmp_path, capsys):
        f = tmp_path / "sup.py"
        f.write_text(
            "a = x == 0.0  # repro: noqa[REP003]\n"
            "b = 1\n"
            "c = x == 0.0  # repro: noqa\n"
            "d = y == 0.0  # repro: noqa[REP003, REP001]\n"
        )
        assert main([str(f), "--audit-suppressions"]) == 0
        out = capsys.readouterr().out
        assert f"{f}:1: [REP003]" in out
        assert f"{f}:3: [ALL]" in out
        assert f"{f}:4: [REP003,REP001]" in out
        assert "3 suppression(s)" in out
        assert "REP003=2" in out and "REP001=1" in out and "ALL=1" in out

    def test_clean_tree_reports_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert main([str(f), "--audit-suppressions"]) == 0
        assert "0 suppressions" in capsys.readouterr().out

    def test_repo_sources_carry_justified_suppressions(self, capsys):
        # The audit over the real src tree must run and exit 0; every
        # suppression in src carries an inline justification by convention.
        src = Path(__file__).resolve().parent.parent / "src"
        assert main([str(src), "--audit-suppressions"]) == 0
        out = capsys.readouterr().out
        assert "suppression" in out
