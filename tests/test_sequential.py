"""Unit tests for the sequential (adaptive-budget) BMF extension."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.bmf import SequentialBmf
from repro.regression import relative_error


@pytest.fixture
def stream(rng):
    num_vars = 80
    basis = OrthonormalBasis.linear(num_vars)
    truth = np.zeros(basis.size)
    truth[0] = 5.0
    hot = rng.choice(np.arange(1, basis.size), 20, replace=False)
    truth[hot] = rng.normal(0, 0.4, 20)
    early = truth * (1 + 0.1 * rng.standard_normal(basis.size))

    def batch(size):
        x = rng.standard_normal((size, num_vars))
        f = basis.evaluate(truth, x) + 0.01 * rng.standard_normal(size)
        return x, f

    return basis, truth, early, batch


class TestSequentialBmf:
    def test_accumulates_samples(self, stream):
        basis, _truth, early, batch = stream
        seq = SequentialBmf(basis, early)
        assert seq.num_samples == 0
        seq.add_samples(*batch(10))
        seq.add_samples(*batch(15))
        assert seq.num_samples == 25
        assert seq.sample_count_history == [10, 25]

    def test_history_recorded_per_batch(self, stream):
        basis, _truth, early, batch = stream
        seq = SequentialBmf(basis, early)
        for _ in range(3):
            seq.add_samples(*batch(10))
        assert len(seq.cv_error_history) == 3
        assert all(e > 0 for e in seq.cv_error_history)

    def test_prediction_improves_with_data(self, stream, rng):
        basis, truth, early, batch = stream
        x_test = rng.standard_normal((400, basis.num_vars))
        f_test = basis.evaluate(truth, x_test)
        seq = SequentialBmf(basis, early)
        seq.add_samples(*batch(8))
        early_error = relative_error(seq.predict(x_test), f_test)
        for _ in range(5):
            seq.add_samples(*batch(20))
        late_error = relative_error(seq.predict(x_test), f_test)
        assert late_error < early_error

    def test_convergence_detection(self, stream):
        basis, _truth, early, batch = stream
        seq = SequentialBmf(basis, early)
        seq.add_samples(*batch(10))
        assert not seq.has_converged()  # too little history
        # Pump in lots of data; the CV error curve must flatten eventually.
        for _ in range(6):
            seq.add_samples(*batch(40))
        assert seq.has_converged(relative_improvement=0.25, window=2)

    def test_model_before_data_rejected(self, stream):
        basis, _truth, early, _batch = stream
        seq = SequentialBmf(basis, early)
        with pytest.raises(RuntimeError, match="no samples"):
            seq.predict(np.zeros((1, basis.num_vars)))

    def test_shape_validation(self, stream):
        basis, _truth, early, batch = stream
        seq = SequentialBmf(basis, early)
        with pytest.raises(ValueError, match="2-D"):
            seq.add_samples(np.zeros(basis.num_vars), np.zeros(1))
        seq.add_samples(*batch(5))
        with pytest.raises(ValueError, match="variables"):
            seq.add_samples(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError, match="shape"):
            x, _f = batch(4)
            seq.add_samples(x, np.zeros(5))

    def test_invalid_window_rejected(self, stream):
        basis, _truth, early, batch = stream
        seq = SequentialBmf(basis, early)
        seq.add_samples(*batch(10))
        with pytest.raises(ValueError, match="window"):
            seq.has_converged(window=0)

    def test_evidence_selection_mode(self, stream):
        """Sequential refits work with evidence-based selection too."""
        basis, _truth, early, batch = stream
        seq = SequentialBmf(basis, early, selection="evidence")
        seq.add_samples(*batch(15))
        seq.add_samples(*batch(15))
        assert len(seq.cv_error_history) == 2
        assert seq.model.evidence_report_ is not None

    def test_fixed_eta_mode_tracks_training_error(self, stream):
        basis, _truth, early, batch = stream
        seq = SequentialBmf(
            basis, early, prior_kind="nonzero-mean", eta=1.0
        )
        seq.add_samples(*batch(10))
        assert len(seq.cv_error_history) == 1
        assert seq.cv_error_history[0] >= 0
