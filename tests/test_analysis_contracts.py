"""Tests for runtime array contracts and their wiring into the hot paths."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    ContractViolationError,
    accepts_arrays,
    check_array,
    contracts_enabled,
    returns_array,
    set_contracts_enabled,
)
from repro.basis import OrthonormalBasis
from repro.runtime import DesignMatrixCache, set_design_cache


@pytest.fixture
def contracts_on():
    previous = set_contracts_enabled(True)
    yield
    set_contracts_enabled(previous)


class TestCheckArray:
    def test_passes_and_returns_value(self, contracts_on):
        x = np.zeros((2, 3))
        assert check_array(x, dtype=np.float64, ndim=2) is x

    def test_non_array_rejected(self, contracts_on):
        with pytest.raises(ContractViolationError, match="expected numpy.ndarray"):
            check_array([1, 2, 3])

    def test_dtype_mismatch(self, contracts_on):
        with pytest.raises(ContractViolationError, match="dtype"):
            check_array(np.zeros(3, dtype=np.float32), dtype=np.float64)

    def test_ndim_mismatch(self, contracts_on):
        with pytest.raises(ContractViolationError, match="2-D"):
            check_array(np.zeros(3), ndim=2)

    def test_shape_wildcards(self, contracts_on):
        check_array(np.zeros((5, 3)), shape=(None, 3))
        with pytest.raises(ContractViolationError, match="shape"):
            check_array(np.zeros((5, 4)), shape=(None, 3))

    def test_writeable_contract(self, contracts_on):
        x = np.zeros(4)
        check_array(x, writeable=True)
        with pytest.raises(ContractViolationError, match="read-only"):
            check_array(x, writeable=False)
        x.flags.writeable = False
        check_array(x, writeable=False)

    def test_contiguity_contract(self, contracts_on):
        x = np.zeros((4, 4))
        check_array(x, c_contiguous=True)
        with pytest.raises(ContractViolationError, match="c_contiguous"):
            check_array(x.T[1:, :], c_contiguous=True)

    def test_disabled_contracts_skip_checks(self):
        previous = set_contracts_enabled(False)
        try:
            assert not contracts_enabled()
            # Would violate every criterion, but checking is off.
            assert check_array("not an array", dtype=np.float64) == "not an array"
        finally:
            set_contracts_enabled(previous)


class TestDecorators:
    def test_returns_array_passes(self, contracts_on):
        @returns_array(dtype=np.float64, ndim=2, c_contiguous=True)
        def make():
            return np.ones((3, 3))

        assert make().shape == (3, 3)

    def test_returns_array_rejects_violation(self, contracts_on):
        @returns_array(dtype=np.float64)
        def make():
            return np.ones(3, dtype=np.int64)

        with pytest.raises(ContractViolationError, match="make"):
            make()

    def test_accepts_arrays_validates_named_argument(self, contracts_on):
        @accepts_arrays(design={"dtype": np.float64, "ndim": 2})
        def fit(design, target=None):
            return design.shape

        assert fit(np.zeros((2, 2))) == (2, 2)
        with pytest.raises(ContractViolationError, match="design"):
            fit(np.zeros(2))

    def test_accepts_arrays_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):

            @accepts_arrays(nope={"ndim": 1})
            def f(x):
                return x


class TestDesignMatrixContract:
    """design_matrix must serve C-contiguous float64 on every path."""

    def _check(self, basis, x):
        g = basis.design_matrix(x)
        assert g.dtype == np.float64
        assert g.flags.c_contiguous
        assert g.ndim == 2
        return g

    def test_linear_path(self, contracts_on):
        basis = OrthonormalBasis.linear(4)
        rng = np.random.default_rng(5)
        self._check(basis, rng.standard_normal((10, 4)))

    def test_general_path_uncached(self, contracts_on):
        previous = set_design_cache(None)
        try:
            basis = OrthonormalBasis.total_degree(3, 3)
            rng = np.random.default_rng(6)
            g = self._check(basis, rng.standard_normal((20, 3)))
            reference = basis._design_matrix_loop(rng.standard_normal((20, 3)))
            assert reference.shape[1] == g.shape[1]
        finally:
            set_design_cache(previous)

    def test_column_subset_path(self, contracts_on):
        basis = OrthonormalBasis.total_degree(3, 3)
        rng = np.random.default_rng(7)
        g = basis.design_matrix(rng.standard_normal((8, 3)), columns=[0, 2, 4])
        assert g.flags.c_contiguous and g.dtype == np.float64


class TestCacheReadOnlyContract:
    """Satellite: cache-served arrays raise on in-place mutation, cold + hot."""

    def test_direct_cache_cold_path_read_only(self, contracts_on):
        cache = DesignMatrixCache(min_result_cells=1)
        cold = cache.get_or_compute(("k",), lambda: np.ones((8, 8)))
        assert cold.flags.writeable is False
        with pytest.raises(ValueError):
            cold[0, 0] = 7.0

    def test_direct_cache_hot_path_read_only(self, contracts_on):
        cache = DesignMatrixCache(min_result_cells=1)
        cache.get_or_compute(("k",), lambda: np.ones((8, 8)))
        hot = cache.get_or_compute(("k",), lambda: np.ones((8, 8)))
        assert cache.stats()["hits"] == 1
        assert hot.flags.writeable is False
        with pytest.raises(ValueError):
            hot[2, 2] = 7.0

    def test_through_basis_cold_and_cached(self, contracts_on):
        previous = set_design_cache(DesignMatrixCache(min_result_cells=1))
        try:
            basis = OrthonormalBasis.total_degree(3, 2)
            x = np.random.default_rng(8).standard_normal((16, 3))
            cold = basis.design_matrix(x)
            hot = basis.design_matrix(x)
            assert cold.flags.writeable is False
            assert hot.flags.writeable is False
            with pytest.raises(ValueError):
                cold[0, 0] = 1.0
            with pytest.raises(ValueError):
                hot[0, 0] = 1.0
            assert np.array_equal(cold, hot)
        finally:
            set_design_cache(previous)

    def test_corrupted_entry_evicted_and_recomputed_on_hit(self, contracts_on):
        """If an entry is ever force-mutated back to writeable, the cache
        self-heals: the poisoned entry is evicted (counted in
        ``design_cache.corrupt_evictions``) and a fresh result is served."""
        from repro.runtime.metrics import metrics

        cache = DesignMatrixCache(min_result_cells=1)
        stored = cache.get_or_compute(("k",), lambda: np.ones((8, 8)))
        stored.flags.writeable = True  # simulate a misbehaving caller
        stored[0, 0] = 99.0  # poison the shared entry
        before = metrics.counters().get("design_cache.corrupt_evictions", 0)
        healed = cache.get_or_compute(("k",), lambda: np.ones((8, 8)))
        after = metrics.counters().get("design_cache.corrupt_evictions", 0)
        assert after - before == 1
        assert np.array_equal(healed, np.ones((8, 8)))  # poison never served
        assert healed.flags.writeable is False
        assert cache.evictions >= 1

    def test_stats_snapshot_is_consistent(self):
        cache = DesignMatrixCache(min_result_cells=1)
        cache.get_or_compute(("a",), lambda: np.ones((4, 4)))
        cache.get_or_compute(("a",), lambda: np.ones((4, 4)))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["bytes"] == 4 * 4 * 8
