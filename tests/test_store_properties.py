"""Property-based tests for the store's record codec (hypothesis).

Two contracts are range properties, not examples:

* **bitwise round-trip** -- serialize -> deserialize returns arrays that
  are bit-for-bit identical across dtypes (including non-native byte
  order), shapes (including empty), NaN payloads, signed zeros, and
  subnormals;
* **corruption detection** -- flipping *any* single byte of an encoded
  record (any offset, any non-zero XOR mask) makes
  :func:`repro.store.decode_record` raise
  :class:`~repro.store.CorruptRecordError`; no torn or tampered record
  can ever decode silently.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402
from hypothesis.extra import numpy as hnp  # noqa: E402

from repro.store import (  # noqa: E402
    CorruptRecordError,
    ModelRecord,
    decode_record,
    encode_record,
)

#: Mix of widths, kinds, and byte orders; the codec stores ``dtype.str``
#: verbatim, so a big-endian buffer must come back big-endian.
DTYPES = st.sampled_from(
    [np.dtype(code) for code in ("<f8", ">f8", "<f4", "<i8", "<i4", "<u2", "|u1")]
)

array_strategy = DTYPES.flatmap(
    lambda dtype: hnp.arrays(
        dtype=dtype,
        shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=0, max_side=5),
        elements=hnp.from_dtype(dtype, allow_nan=True, allow_subnormal=True),
    )
)


def make_record(coefficients, chol_lower=None, eta=None):
    return ModelRecord(
        name="power",
        version=1,
        key="k" * 32,
        published_at=1700000000.25,
        basis_digest="digest",
        basis_num_vars=2,
        basis_indices=(((0, 1),), ((1, 2),)),
        coefficients=coefficients,
        chol_lower=chol_lower,
        chol_prior_index=None if chol_lower is None else 0,
        eta=eta,
    )


class TestRoundTripBitwise:
    @given(array_strategy)
    @settings(max_examples=200, deadline=None)
    def test_any_dtype_and_shape_round_trips(self, array):
        record = make_record(array)
        decoded = decode_record(encode_record(record))
        assert decoded.coefficients.dtype == record.coefficients.dtype
        assert decoded.coefficients.shape == record.coefficients.shape
        assert decoded.coefficients.tobytes() == record.coefficients.tobytes()
        assert decoded.equals_bitwise(record)

    @given(array_strategy, array_strategy)
    @settings(max_examples=100, deadline=None)
    def test_multiple_arrays_partition_cleanly(self, coefficients, extra):
        """Two arrays of unrelated dtypes share one payload without bleed."""
        record = make_record(coefficients, chol_lower=extra)
        decoded = decode_record(encode_record(record))
        assert decoded.coefficients.tobytes() == record.coefficients.tobytes()
        assert decoded.chol_lower.tobytes() == record.chol_lower.tobytes()
        assert decoded.chol_lower.dtype == record.chol_lower.dtype

    @given(
        st.floats(allow_nan=False, allow_infinity=False),
        st.floats(min_value=1e-12, max_value=1e3),
    )
    @settings(max_examples=100, deadline=None)
    def test_scalar_floats_are_exact(self, published_at, eta):
        """Header scalars ride through JSON's shortest-round-trip repr."""
        record = ModelRecord(
            name="m",
            version=1,
            key="k",
            published_at=published_at,
            basis_digest="d",
            basis_num_vars=1,
            basis_indices=(((0, 1),),),
            coefficients=np.ones(1),
            eta=eta,
        )
        decoded = decode_record(encode_record(record))
        assert decoded.published_at == published_at
        assert decoded.eta == eta

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_encoding_is_deterministic(self, seed):
        coeffs = np.random.default_rng(seed).normal(size=5)
        assert encode_record(make_record(coeffs)) == encode_record(
            make_record(coeffs.copy())
        )


class TestSingleByteCorruptionDetected:
    #: One fixed record; position/mask range over the whole blob.
    BLOB = encode_record(
        make_record(
            np.array([1.5, -0.0, np.nan, 2.0**-1040, 3.25]),
            chol_lower=np.eye(2),
            eta=1e-3,
        )
    )

    @given(
        st.integers(min_value=0, max_value=len(BLOB) - 1),
        st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=400, deadline=None)
    def test_any_single_byte_flip_is_caught(self, position, mask):
        corrupted = bytearray(self.BLOB)
        corrupted[position] ^= mask
        with pytest.raises(CorruptRecordError):
            decode_record(bytes(corrupted))

    def test_every_offset_exhaustively_with_one_mask(self):
        """Sweep all offsets (not sampled) with a fixed bit flip."""
        for position in range(len(self.BLOB)):
            corrupted = bytearray(self.BLOB)
            corrupted[position] ^= 0x40
            with pytest.raises(CorruptRecordError):
                decode_record(bytes(corrupted))

    @given(st.integers(min_value=1, max_value=len(BLOB) - 1))
    @settings(max_examples=100, deadline=None)
    def test_any_truncation_is_caught(self, keep):
        with pytest.raises(CorruptRecordError):
            decode_record(self.BLOB[:keep])
