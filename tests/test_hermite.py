"""Unit tests for the univariate orthonormal Hermite polynomials."""

import math

import numpy as np
import pytest

from repro.basis import (
    hermite_coefficients,
    hermite_he,
    hermite_orthonormal,
    hermite_orthonormal_all,
)


class TestHermiteHe:
    def test_degree_zero_is_one(self):
        x = np.linspace(-3, 3, 7)
        assert np.allclose(hermite_he(0, x), 1.0)

    def test_degree_one_is_identity(self):
        x = np.linspace(-3, 3, 7)
        assert np.allclose(hermite_he(1, x), x)

    def test_degree_two_explicit(self):
        x = np.linspace(-3, 3, 7)
        assert np.allclose(hermite_he(2, x), x**2 - 1)

    def test_degree_three_explicit(self):
        x = np.linspace(-3, 3, 7)
        assert np.allclose(hermite_he(3, x), x**3 - 3 * x)

    def test_degree_four_explicit(self):
        x = np.linspace(-2, 2, 5)
        assert np.allclose(hermite_he(4, x), x**4 - 6 * x**2 + 3)

    def test_scalar_input_promoted(self):
        assert hermite_he(2, 2.0) == pytest.approx(3.0)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            hermite_he(-1, np.zeros(3))

    def test_preserves_input_shape(self):
        x = np.zeros((4, 5))
        assert hermite_he(3, x).shape == (4, 5)

    def test_does_not_mutate_input(self):
        x = np.linspace(-1, 1, 5)
        original = x.copy()
        hermite_he(5, x)
        assert np.array_equal(x, original)


class TestOrthonormal:
    def test_matches_paper_eq4_degree2(self):
        """g_3(x) = (x^2 - 1)/sqrt(2) exactly as in eq. (4)."""
        x = np.linspace(-3, 3, 11)
        assert np.allclose(
            hermite_orthonormal(2, x), (x**2 - 1) / math.sqrt(2)
        )

    def test_normalization_factor(self):
        x = np.array([1.7])
        for degree in range(6):
            expected = hermite_he(degree, x) / math.sqrt(math.factorial(degree))
            assert np.allclose(hermite_orthonormal(degree, x), expected)

    @pytest.mark.parametrize("degree", [0, 1, 2, 3, 4, 5])
    def test_unit_variance_under_gaussian(self, degree, rng):
        """E[g_n(x)^2] = 1 for x ~ N(0,1), by Monte Carlo.

        The estimator's own variance grows quickly with the degree (the
        integrand has heavy tails), hence the degree-dependent tolerance.
        """
        x = rng.standard_normal(400_000)
        moment = np.mean(hermite_orthonormal(degree, x) ** 2)
        tolerance = 0.05 if degree <= 3 else 0.2
        assert moment == pytest.approx(1.0, rel=tolerance)

    @pytest.mark.parametrize("pair", [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    def test_orthogonality_under_gaussian(self, pair, rng):
        """E[g_i g_j] = 0 for i != j, by Monte Carlo."""
        i, j = pair
        x = rng.standard_normal(400_000)
        cross = np.mean(hermite_orthonormal(i, x) * hermite_orthonormal(j, x))
        assert abs(cross) < 0.05


class TestBatchEvaluation:
    def test_matches_individual_evaluation(self):
        x = np.linspace(-2.5, 2.5, 9)
        batch = hermite_orthonormal_all(6, x)
        for degree in range(7):
            assert np.allclose(batch[degree], hermite_orthonormal(degree, x))

    def test_output_shape(self):
        x = np.zeros(13)
        assert hermite_orthonormal_all(4, x).shape == (5, 13)

    def test_degree_zero_only(self):
        out = hermite_orthonormal_all(0, np.array([5.0, -5.0]))
        assert np.allclose(out, 1.0)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            hermite_orthonormal_all(-2, np.zeros(3))


class TestCoefficients:
    def test_degree_zero(self):
        assert np.allclose(hermite_coefficients(0), [1.0])

    def test_degree_one(self):
        assert np.allclose(hermite_coefficients(1), [0.0, 1.0])

    def test_degree_two_matches_eq4(self):
        # (x^2 - 1)/sqrt(2)
        expected = np.array([-1.0, 0.0, 1.0]) / math.sqrt(2)
        assert np.allclose(hermite_coefficients(2), expected)

    def test_degree_three(self):
        expected = np.array([0.0, -3.0, 0.0, 1.0]) / math.sqrt(6)
        assert np.allclose(hermite_coefficients(3), expected)

    @pytest.mark.parametrize("degree", [0, 1, 2, 3, 4, 5, 6])
    def test_polynomial_evaluation_agrees(self, degree):
        x = np.linspace(-2, 2, 9)
        coeffs = hermite_coefficients(degree)
        values = sum(c * x**k for k, c in enumerate(coeffs))
        assert np.allclose(values, hermite_orthonormal(degree, x))

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            hermite_coefficients(-1)
