"""Golden regression tests: fixed-seed circuit outputs.

These pin exact (to 1e-9 relative) simulated values for every testbench at
a fixed RNG seed, so any change to the behavioral physics, the PDK
projections, or the sampling order is caught immediately.  If a change is
*intentional*, regenerate the constants with the snippet in each test's
docstring and mention the recalibration in EXPERIMENTS.md (the benchmark
numbers there move with the substrate).
"""

import numpy as np
import pytest

from repro.circuits import Stage


SEED = 2026


@pytest.fixture(scope="module")
def golden_rng():
    return np.random.default_rng(SEED)


class TestGoldenRingOscillator:
    """Regenerate: sample 3 POST_LAYOUT points at seed 2026 on tiny_ro."""

    expected = {
        "power": [1.4542083e-4, 1.6117986e-4, 1.3659971e-4],
        "phase_noise": [-76.13176514, -75.09689482, -75.92316274],
        "frequency": [2.43453567e10, 2.92306126e10, 2.42921152e10],
    }

    def test_metrics(self, tiny_ro):
        rng = np.random.default_rng(SEED)
        x = tiny_ro.sample(Stage.POST_LAYOUT, 3, rng)
        for metric, expected in self.expected.items():
            values = tiny_ro.simulate(Stage.POST_LAYOUT, x, metric)
            assert np.allclose(values, expected, rtol=1e-6), metric


class TestGoldenSram:
    def test_read_delay(self, tiny_ro, tiny_sram):
        rng = np.random.default_rng(SEED)
        # Consume the RO draw first to match the generation order.
        tiny_ro.sample(Stage.POST_LAYOUT, 3, rng)
        x = tiny_sram.sample(Stage.POST_LAYOUT, 3, rng)
        values = tiny_sram.simulate(Stage.POST_LAYOUT, x, "read_delay")
        expected = [1.97143128e-11, 1.74577087e-11, 2.02575405e-11]
        assert np.allclose(values, expected, rtol=1e-6)


class TestGoldenDiffPair:
    def test_offset(self, tiny_ro, tiny_sram, diffpair):
        rng = np.random.default_rng(SEED)
        tiny_ro.sample(Stage.POST_LAYOUT, 3, rng)
        tiny_sram.sample(Stage.POST_LAYOUT, 3, rng)
        x = diffpair.sample(Stage.POST_LAYOUT, 3, rng)
        values = diffpair.simulate(Stage.POST_LAYOUT, x, "offset_voltage")
        expected = [-0.00670215, 0.00063158, -0.00054549]
        assert np.allclose(values, expected, atol=1e-7)


class TestGoldenOta:
    def test_gain_and_bandwidth(self, tiny_ro, tiny_sram, diffpair):
        from repro.circuits import FiveTransistorOta

        rng = np.random.default_rng(SEED)
        tiny_ro.sample(Stage.POST_LAYOUT, 3, rng)
        tiny_sram.sample(Stage.POST_LAYOUT, 3, rng)
        diffpair.sample(Stage.POST_LAYOUT, 3, rng)
        ota = FiveTransistorOta()
        x = ota.sample(Stage.SCHEMATIC, 2, rng)
        gains = ota.simulate(Stage.SCHEMATIC, x, "dc_gain")
        bandwidths = ota.simulate(Stage.SCHEMATIC, x, "unity_gain_bandwidth")
        assert np.allclose(gains, [33.30995766, 33.14464106], rtol=1e-6)
        assert np.allclose(
            bandwidths, [49759445.556, 50587659.837], rtol=1e-6
        )
