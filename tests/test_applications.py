"""Unit tests for the downstream applications (yield, corners, sensitivity)."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.applications import (
    Corner,
    device_contributions,
    estimate_yield,
    estimate_yield_direct,
    top_contributors,
    variable_contributions,
    variance_decomposition,
    worst_case_corner,
)
from repro.basis import OrthonormalBasis
from repro.circuits import Stage
from repro.regression import FittedModel


@pytest.fixture
def linear_model():
    """f(x) = 10 + 3 x1 - 4 x2: N(10, 25) under standard-normal inputs."""
    basis = OrthonormalBasis.linear(2)
    return FittedModel(basis, np.array([10.0, 3.0, -4.0]))


class TestYieldEstimation:
    def test_matches_gaussian_closed_form(self, linear_model, rng):
        spec = 15.0  # one sigma above the mean
        estimate = estimate_yield(linear_model, 400_000, rng, spec_high=spec)
        assert estimate.probability == pytest.approx(norm.cdf(1.0), abs=0.005)

    def test_two_sided_spec(self, linear_model, rng):
        estimate = estimate_yield(
            linear_model, 400_000, rng, spec_low=5.0, spec_high=15.0
        )
        expected = norm.cdf(1.0) - norm.cdf(-1.0)
        assert estimate.probability == pytest.approx(expected, abs=0.005)

    def test_no_spec_rejected(self, linear_model, rng):
        with pytest.raises(ValueError, match="spec"):
            estimate_yield(linear_model, 100, rng)

    def test_std_error_formula(self, linear_model, rng):
        estimate = estimate_yield(linear_model, 10_000, rng, spec_high=10.0)
        p = estimate.probability
        assert estimate.std_error == pytest.approx(
            np.sqrt(p * (1 - p) / 10_000)
        )

    def test_sigma_level(self, linear_model, rng):
        estimate = estimate_yield(linear_model, 200_000, rng, spec_high=15.0)
        assert estimate.sigma_level() == pytest.approx(1.0, abs=0.05)

    def test_direct_estimator_agrees_with_model(self, tiny_ro, rng):
        x = tiny_ro.sample(Stage.POST_LAYOUT, 4000, rng)
        power = tiny_ro.simulate(Stage.POST_LAYOUT, x, "power")
        spec = float(np.quantile(power, 0.9))
        direct = estimate_yield_direct(
            tiny_ro, Stage.POST_LAYOUT, "power", 4000, rng, spec_high=spec
        )
        assert direct.probability == pytest.approx(0.9, abs=0.03)

    def test_invalid_sample_count_rejected(self, linear_model, rng):
        with pytest.raises(ValueError, match="num_samples"):
            estimate_yield(linear_model, 0, rng, spec_high=1.0)


class TestWorstCaseCorner:
    def test_linear_closed_form(self, linear_model):
        corner = worst_case_corner(linear_model, sigma=3.0, direction="max")
        gradient = np.array([3.0, -4.0])
        expected = 3.0 * gradient / np.linalg.norm(gradient)
        assert np.allclose(corner.x, expected)
        assert corner.value == pytest.approx(10.0 + 3.0 * 5.0)
        assert corner.sigma == pytest.approx(3.0)

    def test_min_direction(self, linear_model):
        corner = worst_case_corner(linear_model, sigma=2.0, direction="min")
        assert corner.value == pytest.approx(10.0 - 2.0 * 5.0)

    def test_constant_model_returns_origin(self):
        model = FittedModel(OrthonormalBasis.linear(3), np.array([7.0, 0, 0, 0]))
        corner = worst_case_corner(model, sigma=3.0)
        assert np.allclose(corner.x, 0.0)
        assert corner.value == pytest.approx(7.0)

    def test_nonlinear_model_gradient_ascent(self):
        """Quadratic bowl: max of f = x1^2-ish term lies on the ball edge."""
        basis = OrthonormalBasis.total_degree(2, 2)
        coefficients = np.zeros(basis.size)
        coefficients[basis.index_of(((0, 1),))] = 1.0
        coefficients[basis.index_of(((0, 2),))] = 0.5
        model = FittedModel(basis, coefficients)
        corner = worst_case_corner(model, sigma=2.0, direction="max")
        assert corner.sigma == pytest.approx(2.0, abs=1e-3)
        assert corner.x[0] == pytest.approx(2.0, abs=0.01)
        assert corner.x[1] == pytest.approx(0.0, abs=0.01)

    def test_invalid_arguments_rejected(self, linear_model):
        with pytest.raises(ValueError, match="sigma"):
            worst_case_corner(linear_model, sigma=0.0)
        with pytest.raises(ValueError, match="direction"):
            worst_case_corner(linear_model, direction="up")


class TestSensitivity:
    def test_variance_decomposition_exact(self, linear_model, rng):
        total, shares = variance_decomposition(linear_model)
        assert total == pytest.approx(25.0)
        assert shares[0] == 0.0  # constant term excluded
        # Cross-check against Monte Carlo variance.
        x = rng.standard_normal((200_000, 2))
        assert linear_model.predict(x).var() == pytest.approx(total, rel=0.02)

    def test_variable_contributions(self, linear_model):
        contributions = variable_contributions(linear_model)
        assert contributions[0] == pytest.approx(9.0)
        assert contributions[1] == pytest.approx(16.0)

    def test_interaction_attributed_to_both(self):
        basis = OrthonormalBasis.total_degree(2, 2)
        coefficients = np.zeros(basis.size)
        coefficients[basis.index_of(((0, 1), (1, 1)))] = 2.0
        model = FittedModel(basis, coefficients)
        contributions = variable_contributions(model)
        assert contributions[0] == pytest.approx(4.0)
        assert contributions[1] == pytest.approx(4.0)

    def test_device_contributions_grouping(self, tiny_ro, rng):
        from repro.circuits import FusionProblem
        from repro.regression import RidgeRegressor

        problem = FusionProblem(tiny_ro, "frequency")
        x = tiny_ro.sample(Stage.POST_LAYOUT, 400, rng)
        f = tiny_ro.simulate(Stage.POST_LAYOUT, x, "frequency")
        model = (
            RidgeRegressor(problem.late_basis, penalty=1e-3)
            .fit(x, f)
            .fitted_model()
        )
        grouped = device_contributions(model, tiny_ro.space(Stage.POST_LAYOUT))
        # Inter-die variation dominates a symmetric RO's frequency.
        assert "interdie" in grouped
        assert grouped["interdie"] == max(grouped.values())

    def test_device_contributions_size_mismatch(self, linear_model, tiny_ro):
        with pytest.raises(ValueError, match="variables"):
            device_contributions(linear_model, tiny_ro.space(Stage.SCHEMATIC))

    def test_top_contributors_normalized(self, linear_model):
        top = top_contributors(linear_model, count=2)
        assert top[0][0] == "x1"
        assert top[0][1] == pytest.approx(16.0 / 25.0)
        assert sum(v for _, v in top) == pytest.approx(1.0)

    def test_top_contributors_constant_model(self):
        model = FittedModel(OrthonormalBasis.linear(2), np.array([1.0, 0, 0]))
        assert top_contributors(model) == []
