"""Deterministic chaos suite: the serving loop under injected faults.

Every test drives the real fit -> publish -> serve pipeline
(:func:`repro.experiments.run_chaos_stream`) with a seeded
:class:`~repro.faults.FaultPlan` armed, and asserts the self-healing
contract end to end:

* every request completes (served from the current or last-good version),
* the served model is never stale by more than one version,
* the same seed yields a bitwise-identical counter signature.

The whole module carries the ``chaos`` marker so the nightly CI job can
run it alone (``pytest -m chaos``) across a seed sweep.  The sweep width
comes from ``REPRO_CHAOS_SEEDS`` -- either a count (``5`` -> seeds 0..4)
or an explicit comma list (``3,17,99``); unset, a single seed keeps the
tier-1 run fast.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.experiments import (
    run_chaos_stream,
    run_crash_recovery_stream,
    run_rolling_restart_drill,
)
from repro.faults import CircuitBreaker, FaultPlan, inject
from repro.linalg import SolverError
from repro.regression import FittedModel
from repro.runtime.cache import DesignMatrixCache, set_design_cache
from repro.runtime.metrics import metrics
from repro.serving import ModelRegistry, PredictionEngine

pytestmark = pytest.mark.chaos

#: Fixed-eta configuration: refits go through the border-updated Cholesky
#: factor, where injected ``solver.cholesky`` faults are absorbed by the
#: woodbury fallback path instead of failing the whole refit.
FIXED_ETA = {"prior_kind": "nonzero-mean", "eta": 1e-3}


def _chaos_seeds():
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "").strip()
    if not raw:
        return (0,)
    if "," in raw:
        return tuple(int(part) for part in raw.split(",") if part.strip())
    return tuple(range(int(raw)))


SEEDS = _chaos_seeds()


def _run(testbench, seed=0, fault_plans=(), **overrides):
    kwargs = dict(
        batch_sizes=(20, 8, 8),
        requests_per_batch=8,
        test_size=40,
        early_samples=300,
        sequential_kwargs=FIXED_ETA,
    )
    kwargs.update(overrides)
    return run_chaos_stream(
        testbench, "power", seed=seed, fault_plans=fault_plans, **kwargs
    )


@pytest.fixture
def tiny_cache():
    """A global design cache with no size floor, so single-row serving
    requests actually exercise the ``cache.lookup`` failpoint."""
    previous = set_design_cache(DesignMatrixCache(min_result_cells=1))
    try:
        yield
    finally:
        set_design_cache(previous)


def _counter(name):
    return metrics.counters().get(name, 0)


class TestSolverFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_solver_failures_absorbed_by_fallback(self, tiny_ro, seed):
        """>=10% of Cholesky factorizations fail; refits and serving survive."""
        plans = (
            FaultPlan.fail_every(
                "solver.cholesky", 2, error=SolverError("chaos: injected")
            ),
        )
        report = _run(tiny_ro, seed=seed, fault_plans=plans)
        hits = report.fault_counters.get("faults.hits", 0)
        injected = report.fault_counters.get(
            "faults.injected.solver.cholesky", 0
        )
        assert injected >= 1
        assert injected / hits >= 0.10
        # The woodbury fallback absorbs the failure inside the refit.
        assert all(outcome.ok for outcome in report.refit_outcomes)
        assert report.answered_fraction == 1.0
        assert report.failed_requests == 0
        assert report.max_version_lag <= 1

    def test_refit_failure_rolls_back_and_serving_continues(self, tiny_ro):
        """A refit killed mid-flight skips its publish; requests keep being
        answered from the last successfully published version."""
        failed_before = _counter("sequential.failed_refits")
        plans = (FaultPlan.fail_every("sequential.refit", 2, max_triggers=1),)
        report = _run(tiny_ro, fault_plans=plans)
        outcomes = report.refit_outcomes
        assert outcomes[0].ok and not outcomes[1].ok and outcomes[2].ok
        assert outcomes[1].error_type == "InjectedFault"
        assert _counter("sequential.failed_refits") - failed_before == 1
        assert report.publish_attempts == 2  # failed refit never publishes
        assert report.versions_published == 2
        assert report.answered_fraction == 1.0
        assert report.max_version_lag <= 1

    def test_refits_hard_failed_by_map_solver_faults(self, tiny_ro):
        """Killing the MAP dual solve fails the refit outright (no fallback
        exists on that path); serving still answers from last-good."""
        # Under the select prior each refit makes ~131 dual solves for this
        # configuration, so the single trigger at hit 150 lands in refit 2.
        plans = (FaultPlan.fail_every("solver.map", 150, max_triggers=1),)
        report = _run(tiny_ro, fault_plans=plans, sequential_kwargs={})
        outcomes = report.refit_outcomes
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error_type == "InjectedFault"
        assert report.versions_published == 2
        assert report.answered_fraction == 1.0
        assert report.max_version_lag <= 1


class TestCacheCorruption:
    def test_poisoned_cache_entry_self_heals(self, tiny_ro, tiny_cache):
        """A corrupted cached design matrix is evicted, recomputed, and never
        surfaces in a prediction."""
        evictions_before = _counter("design_cache.corrupt_evictions")
        plans = (FaultPlan.fail_once("cache.lookup"),)
        report = _run(tiny_ro, seed=11, fault_plans=plans, batch_sizes=(20, 8))
        assert report.fault_counters.get("faults.injected.cache.lookup") == 1
        assert _counter("design_cache.corrupt_evictions") - evictions_before == 1
        assert report.answered_fraction == 1.0
        assert report.failed_requests == 0


class TestLatencyAndPublish:
    def test_worker_latency_spike_answers_everything(self, tiny_ro):
        plans = (FaultPlan.latency("engine.evaluate", 0.02, every=5),)
        report = _run(tiny_ro, seed=3, fault_plans=plans, batch_sizes=(20, 8))
        assert report.fault_counters.get("faults.delays", 0) >= 1
        assert report.answered_fraction == 1.0
        assert report.failed_requests == 0

    def test_publish_failure_keeps_serving_last_good(self, tiny_ro):
        plans = (FaultPlan.fail_every("registry.publish", 2),)
        report = _run(tiny_ro, seed=5, fault_plans=plans)
        assert report.publish_rejections >= 1
        assert (
            report.versions_published
            == report.publish_attempts - report.publish_rejections
        )
        assert (
            report.serving_counters.get("serving.rejected_publishes")
            == report.publish_rejections
        )
        # A rejected publish never evicts the served version.
        assert report.answered_fraction == 1.0
        assert report.max_version_lag <= 1


class TestBreakerSchedule:
    def test_breaker_trips_and_half_open_probe_recovers(self, tiny_ro):
        """End to end: consecutive evaluation failures trip the breaker, the
        half-open probe goes through once the window elapses, and a healthy
        probe closes the circuit again."""
        basis = OrthonormalBasis.total_degree(3, 2)
        coefficients = np.zeros(basis.size)
        coefficients[0] = 1.0
        registry = ModelRegistry()
        registry.publish("m", FittedModel(basis, coefficients))
        key = registry.current("m").key
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_seconds=1e-6)
        x = np.zeros(basis.num_vars)
        plans = (
            # Six injected failures = 2 requests x 3 retry attempts, enough
            # to open the breaker; the probe afterwards finds a healthy path.
            FaultPlan.fail_every("engine.evaluate", 1, max_triggers=6),
        )
        opened_before = _counter("serving.breaker.opened")
        half_before = _counter("serving.breaker.half_opened")
        closed_before = _counter("serving.breaker.closed")
        with PredictionEngine(
            registry, breaker=breaker, serve_last_good=False, workers=1
        ) as engine:
            with inject(*plans):
                for _ in range(2):
                    with pytest.raises(Exception):
                        engine.predict("m", x)
                assert breaker.state(key) in ("open", "half_open")
                # reset_timeout has long elapsed: exactly one probe runs,
                # succeeds, and closes the circuit.
                assert engine.predict("m", x) == pytest.approx(
                    coefficients[0] * basis.design_matrix(x[None, :])[0, 0]
                )
            assert breaker.state(key) == "closed"
        assert _counter("serving.breaker.opened") - opened_before == 1
        assert _counter("serving.breaker.half_opened") - half_before == 1
        assert _counter("serving.breaker.closed") - closed_before == 1


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_is_bitwise_identical(self, tiny_ro, seed):
        def plans():
            # Fresh plan objects per run: plans are frozen, but a fresh tuple
            # documents that no armed state leaks between runs.
            return (
                FaultPlan.fail_with_probability(
                    "solver.cholesky", 0.25, seed=42, error=SolverError("chaos")
                ),
                FaultPlan.fail_once("cache.lookup"),
            )
        first = _run(
            tiny_ro, seed=seed, fault_plans=plans(), requests_per_batch=6
        )
        second = _run(
            tiny_ro, seed=seed, fault_plans=plans(), requests_per_batch=6
        )
        assert first.deterministic_signature() == second.deterministic_signature()
        assert first.fault_counters == second.fault_counters
        assert first.serving_counters == second.serving_counters

    def test_acceptance_mix(self, tiny_ro):
        """The ISSUE acceptance scenario: >=10% solver failures plus one
        poisoned cache entry -> 100% of requests complete, the served model
        is never stale beyond one version, and the run is reproducible."""
        def plans():
            return (
                FaultPlan.fail_with_probability(
                    "solver.cholesky", 0.25, seed=42, error=SolverError("chaos")
                ),
                FaultPlan.fail_once("cache.lookup"),
            )

        def run_with_fresh_cache():
            # A fresh cache per run: a warm global cache would change which
            # lookups hit, making the two signatures incomparable.
            previous = set_design_cache(DesignMatrixCache(min_result_cells=1))
            try:
                return _run(tiny_ro, seed=9, fault_plans=plans())
            finally:
                set_design_cache(previous)

        first = run_with_fresh_cache()
        second = run_with_fresh_cache()
        assert first.answered_fraction == 1.0
        assert first.failed_requests == 0
        assert first.max_version_lag <= 1
        injected = first.fault_counters.get("faults.injected", 0)
        assert injected >= 1
        assert first.deterministic_signature() == second.deterministic_signature()

    def test_report_format_is_human_readable(self, tiny_ro):
        report = _run(tiny_ro, batch_sizes=(20,), requests_per_batch=2)
        text = report.format()
        assert "power" in text
        assert str(report.answered_requests) in text


def _run_crash(testbench, store_root, seed=0, crash_failpoint="store.fsync", **overrides):
    kwargs = dict(
        batch_sizes=(20, 8, 8),
        crash_after_batches=1,
        requests_per_batch=8,
        test_size=40,
        early_samples=300,
        max_queue_depth=8,
        sequential_kwargs=FIXED_ETA,
    )
    kwargs.update(overrides)
    return run_crash_recovery_stream(
        testbench,
        "power",
        store_root,
        seed=seed,
        crash_failpoint=crash_failpoint,
        **kwargs,
    )


def _run_shard_kill(store_root, seed=0, **overrides):
    from repro.loadgen import LoadConfig, run_load

    kwargs = dict(
        seed=seed,
        num_requests=200,
        num_tenants=6,
        num_models=8,
        num_shards=3,
        replication_factor=2,
        max_queue_depth=32,
        workers=1,
        kill_shard_after=100,
    )
    kwargs.update(overrides)
    return run_load(LoadConfig(**kwargs), store_root)


class TestShardKill:
    """The ISSUE acceptance scenario for the sharded tier: kill one shard
    mid-traffic.  Every accepted request must still be answered, the dead
    shard's keys must be served from warm follower replicas (no refit, no
    store backfill), the served version lag stays bounded, and the same
    seed produces a bitwise-identical report signature."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_kill_mid_traffic_answers_everything(self, tmp_path, seed):
        report = _run_shard_kill(tmp_path, seed=seed)
        assert report.killed_shard is not None
        assert report.failovers == 1
        assert report.rebalanced_keys >= 1
        # 100% of accepted requests answered, before and after the kill.
        assert report.failed == 0
        assert report.expired == 0
        assert report.answered == report.admitted
        assert report.post_kill_answered == report.post_kill_admitted
        assert report.post_kill_admitted >= 1
        # Warm failover: the survivors' followers replicated every model
        # at publish time, so no request ever backfills from the store
        # (let alone refits from scratch).
        assert report.backfills == 0
        assert report.replica_applied >= report.rebalanced_keys
        assert report.max_version_lag <= 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_is_bitwise_identical(self, tmp_path, seed):
        first = _run_shard_kill(tmp_path / "a", seed=seed)
        second = _run_shard_kill(tmp_path / "b", seed=seed)
        assert (
            first.deterministic_signature() == second.deterministic_signature()
        )

    def test_report_format_is_human_readable(self, tmp_path):
        report = _run_shard_kill(tmp_path, num_requests=60, kill_shard_after=30)
        text = report.format()
        assert "rebalanced" in text
        assert str(report.killed_shard) in text


class TestCrashRecovery:
    """The ISSUE acceptance scenario: fit -> publish -> kill -> recover
    -> serve.  The kill lands mid-publish at a ``store.*`` failpoint; the
    recovered registry must be bitwise identical to the last durable
    pre-crash snapshot, zero corrupt records may ever be served, the
    sequential fitter warm-restarts from its persisted Cholesky factor,
    and a 2x saturation burst sheds within the queue bound."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("crash_failpoint", ["store.write", "store.fsync"])
    def test_kill_mid_publish_recovers_bitwise(
        self, tiny_ro, tmp_path, seed, crash_failpoint
    ):
        report = _run_crash(
            tiny_ro, tmp_path, seed=seed, crash_failpoint=crash_failpoint
        )
        assert report.crash_observed
        assert report.recovered_bitwise_identical
        assert report.rearmed  # warm restart from the persisted factor
        assert report.recovered_versions == (("power", 1),)
        if crash_failpoint == "store.fsync":
            # Lost fsync: the rename landed on a torn record -- recovery
            # must quarantine it, never serve it.
            assert report.records_visible_after_crash == 2
            assert report.quarantined_records == 1
            assert report.store_counters.get("store.corrupt_quarantined") == 1
            assert report.store_counters.get("store.torn_writes") == 1
        else:
            # Crash mid-write: the temp file was abandoned pre-rename, so
            # nothing new is visible and nothing needs quarantining.
            assert report.records_visible_after_crash == 1
            assert report.quarantined_records == 0
        # Every request before and after the crash was answered.
        assert report.failed_requests == 0
        assert report.answered_requests == 3 * 8

    @pytest.mark.parametrize("seed", SEEDS)
    def test_burst_sheds_within_the_bound(self, tiny_ro, tmp_path, seed):
        report = _run_crash(tiny_ro, tmp_path, seed=seed)
        bound = report.queue_bound
        # 2x-bound burst against a paused dispatcher: every staged expired
        # request is shed, every overflow live submit is rejected, and the
        # depth never exceeded the bound.
        assert report.burst_staged_expired == bound
        assert report.burst_live_submitted == bound
        assert report.burst_rejected == bound
        assert report.burst_answered == bound
        assert report.shed_expired == bound
        assert report.shed_rejected == bound
        assert report.peak_queue_depth <= bound
        assert report.serving_counters.get("serving.shed.expired") == bound
        assert report.serving_counters.get("serving.shed.rejected") == bound

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_is_bitwise_identical(self, tiny_ro, tmp_path, seed):
        first = _run_crash(tiny_ro, tmp_path / "a", seed=seed)
        second = _run_crash(tiny_ro, tmp_path / "b", seed=seed)
        assert first.deterministic_signature() == second.deterministic_signature()
        assert first.store_counters == second.store_counters
        assert first.serving_counters == second.serving_counters

    def test_report_format_is_human_readable(self, tiny_ro, tmp_path):
        report = _run_crash(tiny_ro, tmp_path)
        text = report.format()
        assert "store.fsync" in text
        assert "bitwise identical" in text
        assert "True" in text


class TestLockWatchdog:
    """Watchdog-on chaos: the acceptance scenarios re-run with every lock
    created through ``repro.locks`` tracked.  The runtime acquisition
    graph must confirm the static REP012 model — no cycles, no
    inversions — and tracking must not perturb the same-seed
    deterministic signature."""

    def test_shard_kill_acquisition_graph_is_clean(self, tmp_path):
        from repro.locks import watch_locks

        with watch_locks() as wd:
            report = _run_shard_kill(tmp_path, seed=SEEDS[0])
        payload = wd.report()
        assert payload["cycles"] == []
        assert payload["inversions"] == []
        # The run really was tracked: the serving-tier locks show up.
        tracked = set(payload["locks"])
        assert any(name.startswith("serving.") for name in tracked)
        assert report.failed == 0

    def test_crash_recovery_acquisition_graph_is_clean(self, tiny_ro, tmp_path):
        from repro.locks import watch_locks

        with watch_locks() as wd:
            report = _run_crash(tiny_ro, tmp_path, seed=SEEDS[0])
        payload = wd.report()
        assert payload["cycles"] == []
        assert payload["inversions"] == []
        tracked = set(payload["locks"])
        assert "store.append" in tracked
        assert report.recovered_bitwise_identical

    def test_observed_edges_are_a_subset_of_the_static_model(self, tmp_path):
        from repro.analysis import LintEngine
        from repro.analysis.concurrency import LockOrderRule
        from repro.locks import watch_locks

        rule = LockOrderRule()
        engine = LintEngine(rules=[rule])
        assert engine.lint_paths(["src"]) == []
        static_nodes = {node for edge in rule.edges() for node in edge}

        with watch_locks() as wd:
            _run_shard_kill(tmp_path, seed=SEEDS[0])
        # Every observed nested acquisition is between locks the static
        # pass knows about (names differ: runtime uses dotted site names,
        # static uses Class.attr -- so compare shape, not labels: the
        # runtime graph must be acyclic exactly like the static one).
        assert static_nodes  # the static model is not degenerate
        assert wd.cycles() == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_watchdog_preserves_shard_kill_signature(self, tmp_path, seed):
        from repro.locks import watch_locks

        baseline = _run_shard_kill(tmp_path / "off", seed=seed)
        with watch_locks() as wd:
            tracked = _run_shard_kill(tmp_path / "on", seed=seed)
            wd.publish_metrics()  # lock.* counters are signature-exempt
        assert (
            tracked.deterministic_signature()
            == baseline.deterministic_signature()
        )

    def test_watchdog_preserves_crash_recovery_signature(self, tiny_ro, tmp_path):
        from repro.locks import watch_locks

        baseline = _run_crash(tiny_ro, tmp_path / "off", seed=SEEDS[0])
        with watch_locks() as wd:
            tracked = _run_crash(tiny_ro, tmp_path / "on", seed=SEEDS[0])
            wd.publish_metrics()
        assert (
            tracked.deterministic_signature()
            == baseline.deterministic_signature()
        )
        assert tracked.store_counters == baseline.store_counters
        assert tracked.serving_counters == baseline.serving_counters


def _run_drill(store_root, seed=0, **overrides):
    kwargs = dict(
        num_shards=3,
        replication_factor=2,
        num_models=3,
        pre_batches=2,
        batch_size=12,
        requests_per_phase=5,
        seed=seed,
        engine_kwargs={"workers": 1, "max_delay_seconds": 0.0},
    )
    kwargs.update(overrides)
    return run_rolling_restart_drill(store_root, **kwargs)


class TestRollingRestartDrill:
    """The ISSUE acceptance scenario for zero-downtime restarts: every
    shard is restarted one at a time under live traffic, over a store
    that was compacted mid-drill.  100% of accepted requests must be
    answered, no refit-from-scratch may land on the critical path (warm
    ``rearm()`` only), and the same seed must produce a bitwise-identical
    signature."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_zero_failed_requests_across_restarts(self, tmp_path, seed):
        report = _run_drill(tmp_path, seed=seed)
        assert report.failed_requests == 0
        assert report.answered_requests == report.requests_issued
        assert report.requests_issued >= 1
        # Every shard restarted exactly once and came back warm.
        assert tuple(report.restart_order) == (0, 1, 2)
        assert all(count >= 1 for count in report.restart_restored)
        # The drill crossed a real compaction boundary.
        assert report.compacted and report.generation == 1
        assert report.checkpoint_offset >= 1
        # Warm path only: one rearm per model, zero refits-from-scratch.
        assert report.rearms == report.num_models
        assert report.woodbury_fallbacks == 0
        assert all(mode == "incremental" for mode in report.rearm_modes)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_is_bitwise_identical(self, tmp_path, seed):
        first = _run_drill(tmp_path / "a", seed=seed)
        second = _run_drill(tmp_path / "b", seed=seed)
        assert (
            first.deterministic_signature() == second.deterministic_signature()
        )

    def test_drill_without_compaction_also_holds(self, tmp_path):
        report = _run_drill(tmp_path, seed=SEEDS[0], compact_between=False)
        assert report.failed_requests == 0
        assert report.generation == 0
        assert report.checkpoint_offset == 0
        assert all(mode == "incremental" for mode in report.rearm_modes)

    def test_rolling_restart_acquisition_graph_is_clean(self, tmp_path):
        from repro.locks import watch_locks

        with watch_locks() as wd:
            report = _run_drill(tmp_path, seed=SEEDS[0])
        payload = wd.report()
        assert payload["cycles"] == []
        assert payload["inversions"] == []
        tracked = set(payload["locks"])
        assert any(name.startswith("serving.") for name in tracked)
        assert report.failed_requests == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_watchdog_preserves_drill_signature(self, tmp_path, seed):
        from repro.locks import watch_locks

        baseline = _run_drill(tmp_path / "off", seed=seed)
        with watch_locks() as wd:
            tracked = _run_drill(tmp_path / "on", seed=seed)
            wd.publish_metrics()  # lock.* counters are signature-exempt
        assert (
            tracked.deterministic_signature()
            == baseline.deterministic_signature()
        )

    def test_report_format_is_human_readable(self, tmp_path):
        report = _run_drill(tmp_path)
        text = report.format()
        assert "Rolling-restart drill" in text
        assert "requests answered" in text
        assert "warm rearms" in text


def _run_slow_shard(store_root, seed=0, hedge=True, slow=True, **overrides):
    """One tail-tolerance run: optional slow shard, optional hedging.

    The hedge delay is pinned tiny (both the warm-up initial delay and
    the adaptive clamp) so hedges fire well inside the injected stall,
    and the budget is generous -- the *tight*-budget behavior is covered
    by ``tests/test_serving_health.py``; here the contract under test is
    the p99 rescue and the budget ceiling.
    """
    from repro.loadgen import LoadConfig, run_load

    kwargs = dict(
        seed=seed,
        num_requests=200,
        num_tenants=6,
        num_models=8,
        num_shards=3,
        replication_factor=2,
        max_queue_depth=64,
        workers=1,
        hedge=hedge,
        hedge_budget_fraction=0.5,
        hedge_initial_delay_seconds=0.004,
        hedge_min_delay_seconds=0.002,
        hedge_max_delay_seconds=0.004,
        slow_shard_latency_seconds=0.05 if slow else 0.0,
        slow_shard_every=4,
    )
    kwargs.update(overrides)
    return run_load(LoadConfig(**kwargs), store_root)


class TestSlowShardHedging:
    """The ISSUE acceptance scenario for tail tolerance: one shard's
    evaluations stall ~10x the healthy latency.  Hedged requests must
    rescue the tail -- p99 bounded relative to the healthy baseline while
    the no-hedge control blows through the bound -- with zero failed
    requests, hedge volume inside the configured budget, and a
    bitwise-identical same-seed report signature."""

    #: Healthy p99 floor (ms): sub-ms baselines would make the 3x bound
    #: meaninglessly tight on a loaded CI box.
    _P99_FLOOR_MS = 5.0

    def _p99_bound(self, baseline_report):
        return 3.0 * max(baseline_report.latency_p99_ms, self._P99_FLOOR_MS)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hedging_rescues_p99_where_control_fails(self, tmp_path, seed):
        baseline = _run_slow_shard(
            tmp_path / "base", seed=seed, hedge=False, slow=False
        )
        control = _run_slow_shard(
            tmp_path / "ctrl", seed=seed, hedge=False, slow=True
        )
        hedged = _run_slow_shard(
            tmp_path / "hedge", seed=seed, hedge=True, slow=True
        )
        bound = self._p99_bound(baseline)
        # The un-hedged control eats the injected 50ms stalls in its tail;
        # the hedged run answers those requests from a warm replica well
        # inside the bound.
        assert control.latency_p99_ms > bound
        assert hedged.latency_p99_ms <= bound

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_request_answered_and_budget_respected(self, tmp_path, seed):
        hedged = _run_slow_shard(tmp_path, seed=seed)
        assert hedged.slow_shard is not None
        assert hedged.failed == 0
        assert hedged.expired == 0
        assert hedged.answered == hedged.admitted
        # Hedging actually engaged, and stayed inside the token budget.
        assert hedged.hedged >= 1
        assert hedged.hedge_wins >= 1
        assert hedged.hedged <= 0.5 * hedged.submitted + 4.0
        assert hedged.hedge_wins + hedged.hedge_primary_wins <= hedged.hedged

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_is_bitwise_identical(self, tmp_path, seed):
        first = _run_slow_shard(tmp_path / "a", seed=seed)
        second = _run_slow_shard(tmp_path / "b", seed=seed)
        assert (
            first.deterministic_signature() == second.deterministic_signature()
        )

    def test_report_format_mentions_hedging(self, tmp_path):
        report = _run_slow_shard(tmp_path, num_requests=60)
        text = report.format()
        assert "hedged" in text
