"""Shared fixtures: seeded RNGs and laptop-sized testbench instances.

The per-test hang guard (pytest-timeout, with a SIGALRM fallback when
the plugin is absent) lives in the repo-root ``conftest.py`` so it also
covers ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import RingOscillator, SramReadPath
from repro.circuits.diffpair import DifferentialPair
from repro.process import ProcessKit


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_kit() -> ProcessKit:
    """A small process kit: 4 mismatch variables per device, 4 global."""
    return ProcessKit(params_per_device=4, interdie_params=4)


@pytest.fixture(scope="session")
def tiny_ro(tiny_kit) -> RingOscillator:
    """Ring oscillator with ~50 variables -- fast enough for unit tests."""
    return RingOscillator(n_ring=5, n_buffer=2, kit=tiny_kit)


@pytest.fixture(scope="session")
def tiny_sram(tiny_kit) -> SramReadPath:
    """SRAM read path with ~200 variables."""
    return SramReadPath(n_cells=8, n_timing=4, kit=tiny_kit)


@pytest.fixture(scope="session")
def diffpair() -> DifferentialPair:
    return DifferentialPair(fingers=2)
