"""Unit tests for least-angle regression (ref. [12])."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.regression import LeastAngleRegression, lars_path


def sparse_problem(rng, num_vars=60, nonzero=4, num_samples=80, noise=0.0):
    basis = OrthonormalBasis.linear(num_vars)
    truth = np.zeros(basis.size)
    support = rng.choice(np.arange(1, basis.size), nonzero, replace=False)
    truth[support] = rng.uniform(1.0, 3.0, nonzero) * rng.choice([-1, 1], nonzero)
    x = rng.standard_normal((num_samples, num_vars))
    f = basis.evaluate(truth, x)
    if noise:
        f = f + noise * rng.standard_normal(num_samples)
    return basis, truth, support, x, f


class TestLarsPath:
    def test_full_path_reaches_least_squares(self, rng):
        """With no competitor left, the last step lands on the active-set
        OLS solution (Efron et al., property of the full-gamma step)."""
        design = rng.standard_normal((50, 6))
        truth = np.array([2.0, 0.0, -1.5, 0.0, 1.0, 0.0])
        target = design @ truth
        path = lars_path(design, target, 6)
        dense = path.dense_coefficients(6)
        ols, *_ = np.linalg.lstsq(design[:, path.selected], target, rcond=None)
        reference = np.zeros(6)
        reference[path.selected] = ols
        assert np.allclose(dense, reference, atol=1e-8)

    def test_recovers_true_support(self, rng):
        basis, _truth, support, x, f = sparse_problem(rng)
        design = basis.design_matrix(x)
        path = lars_path(design, f, 4)
        assert set(path.selected) == set(support)

    def test_path_is_nested(self, rng):
        basis, _t, _s, x, f = sparse_problem(rng, noise=0.05)
        design = basis.design_matrix(x)
        path = lars_path(design, f, 10)
        for step, coefficients in enumerate(path.coefficients_per_step):
            assert len(coefficients) == step + 1

    def test_correlations_tie_along_path(self, rng):
        """LAR invariant: active columns share the max |correlation|."""
        basis, _t, _s, x, f = sparse_problem(rng, noise=0.05)
        design = basis.design_matrix(x)
        norms = np.linalg.norm(design, axis=0)
        path = lars_path(design, f, 6)
        # Rebuild the residual at step 3 and check the tie.
        step = 3
        dense = path.dense_coefficients(design.shape[1], step=step)
        residual = f - design @ dense
        correlations = np.abs(design.T @ residual) / norms
        active = path.selected[: step + 1]
        active_c = correlations[active]
        assert np.allclose(active_c, active_c[0], rtol=1e-6)
        inactive = np.delete(correlations, active)
        assert inactive.max() <= active_c[0] * (1 + 1e-8)

    def test_zero_target(self, rng):
        design = rng.standard_normal((10, 5))
        path = lars_path(design, np.zeros(10), 5)
        assert path.selected == []

    def test_empty_path_dense(self):
        from repro.regression.lars import LarsPath

        assert np.allclose(LarsPath().dense_coefficients(4), 0.0)

    def test_max_terms_respected(self, rng):
        basis, _t, _s, x, f = sparse_problem(rng, noise=0.1)
        design = basis.design_matrix(x)
        path = lars_path(design, f, 3)
        assert len(path.selected) <= 3


class TestLeastAngleRegression:
    def test_cv_fit_is_accurate(self, rng):
        basis, truth, _s, x, f = sparse_problem(rng, noise=0.02)
        model = LeastAngleRegression(basis).fit(x, f)
        x_test = rng.standard_normal((300, basis.num_vars))
        reference = basis.evaluate(truth, x_test)
        error = np.linalg.norm(model.predict(x_test) - reference)
        assert error / np.linalg.norm(reference) < 0.05

    def test_comparable_to_omp(self, rng):
        """Both path methods should land in the same accuracy class."""
        from repro.regression import OrthogonalMatchingPursuit

        basis, truth, _s, x, f = sparse_problem(
            rng, num_vars=100, nonzero=6, num_samples=120, noise=0.05
        )
        x_test = rng.standard_normal((400, basis.num_vars))
        reference = basis.evaluate(truth, x_test)

        def error_of(model):
            model.fit(x, f)
            return np.linalg.norm(model.predict(x_test) - reference) / (
                np.linalg.norm(reference)
            )

        lars_error = error_of(LeastAngleRegression(basis))
        omp_error = error_of(OrthogonalMatchingPursuit(basis))
        assert lars_error < 5 * omp_error

    def test_fixed_selection(self, rng):
        basis, _t, _s, x, f = sparse_problem(rng)
        model = LeastAngleRegression(basis, max_terms=3, selection="fixed")
        model.fit(x, f)
        assert len(model.selected_terms_) <= 3

    def test_validation(self):
        basis = OrthonormalBasis.linear(5)
        with pytest.raises(ValueError, match="selection"):
            LeastAngleRegression(basis, selection="greedy")
        with pytest.raises(ValueError, match="max_terms"):
            LeastAngleRegression(basis, selection="fixed")
        with pytest.raises(ValueError, match="n_folds"):
            LeastAngleRegression(basis, n_folds=1)
