"""Smoke test: the quickstart example runs and reports BMF winning.

The heavier examples (minutes each) are exercised by hand / CI nightly;
the quickstart is fast enough to guard in the unit suite so the documented
entry point can never silently rot.
"""

import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


@pytest.fixture
def examples_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES))
    yield
    sys.modules.pop("quickstart", None)


def test_quickstart_runs_and_bmf_wins(examples_path, capsys):
    import quickstart

    quickstart.main()
    output = capsys.readouterr().out
    assert "BMF-PS error" in output
    assert "OMP error" in output
    assert "more accurate" in output
    # Parse the two error percentages and check the headline ordering.
    bmf_line = next(l for l in output.splitlines() if l.startswith("BMF-PS"))
    omp_line = next(l for l in output.splitlines() if l.startswith("OMP"))
    bmf_error = float(bmf_line.split(":")[1].split("%")[0])
    omp_error = float(omp_line.split(":")[1].split("%")[0])
    assert bmf_error < omp_error
