"""Unit tests for the ring-oscillator testbench."""

import numpy as np
import pytest

from repro.circuits import RingOscillator, Stage


class TestConstruction:
    def test_variable_counts(self, tiny_ro, tiny_kit):
        devices = 2 * tiny_ro.n_ring + 2 * tiny_ro.n_buffer
        expected = tiny_kit.interdie_params + devices * tiny_kit.params_per_device
        assert tiny_ro.num_vars(Stage.SCHEMATIC) == expected
        nets = tiny_ro.n_ring + tiny_ro.n_buffer
        assert tiny_ro.num_vars(Stage.POST_LAYOUT) == expected + nets

    def test_even_ring_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            RingOscillator(n_ring=6)

    def test_too_small_ring_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            RingOscillator(n_ring=1)

    def test_no_buffer_rejected(self):
        with pytest.raises(ValueError, match="n_buffer"):
            RingOscillator(n_buffer=0)

    def test_paper_scale_dimensionality(self):
        ro = RingOscillator.paper_scale()
        assert 6500 <= ro.num_vars(Stage.POST_LAYOUT) <= 8000

    def test_metrics_declared(self, tiny_ro):
        assert tiny_ro.metrics == ("power", "phase_noise", "frequency")


class TestSimulation:
    def test_unknown_metric_rejected(self, tiny_ro, rng):
        x = tiny_ro.sample(Stage.SCHEMATIC, 2, rng)
        with pytest.raises(ValueError, match="unknown metric"):
            tiny_ro.simulate(Stage.SCHEMATIC, x, "gain")

    def test_wrong_sample_width_rejected(self, tiny_ro, rng):
        x = tiny_ro.sample(Stage.SCHEMATIC, 2, rng)
        with pytest.raises(ValueError, match="expects samples"):
            tiny_ro.simulate(Stage.POST_LAYOUT, x, "power")

    def test_deterministic(self, tiny_ro, rng):
        x = tiny_ro.sample(Stage.POST_LAYOUT, 5, rng)
        a = tiny_ro.simulate(Stage.POST_LAYOUT, x, "frequency")
        b = tiny_ro.simulate(Stage.POST_LAYOUT, x, "frequency")
        assert np.array_equal(a, b)

    def test_plausible_magnitudes(self, tiny_ro, rng):
        x = tiny_ro.sample(Stage.POST_LAYOUT, 200, rng)
        frequency = tiny_ro.simulate(Stage.POST_LAYOUT, x, "frequency")
        power = tiny_ro.simulate(Stage.POST_LAYOUT, x, "power")
        noise = tiny_ro.simulate(Stage.POST_LAYOUT, x, "phase_noise")
        assert np.all((frequency > 1e8) & (frequency < 1e12))
        assert np.all((power > 1e-7) & (power < 1e-1))
        assert np.all((noise > -160) & (noise < -40))

    def test_relative_spread_is_a_few_percent(self, tiny_ro, rng):
        x = tiny_ro.sample(Stage.POST_LAYOUT, 3000, rng)
        for metric in ("power", "frequency"):
            values = tiny_ro.simulate(Stage.POST_LAYOUT, x, metric)
            rel = values.std() / abs(values.mean())
            assert 0.01 < rel < 0.2, metric

    def test_simulate_all(self, tiny_ro, rng):
        x = tiny_ro.sample(Stage.SCHEMATIC, 3, rng)
        values = tiny_ro.simulate_all(Stage.SCHEMATIC, x)
        assert set(values) == set(tiny_ro.metrics)


class TestStageDifferences:
    def test_layout_slows_the_oscillator(self, tiny_ro, rng):
        """Wire loading + cap shifts: post-layout frequency is lower."""
        x_post = tiny_ro.sample(Stage.POST_LAYOUT, 500, rng)
        x_sch = x_post[:, : tiny_ro.num_vars(Stage.SCHEMATIC)]
        f_sch = tiny_ro.simulate(Stage.SCHEMATIC, x_sch, "frequency")
        f_post = tiny_ro.simulate(Stage.POST_LAYOUT, x_post, "frequency")
        assert f_post.mean() < f_sch.mean()

    def test_stages_strongly_correlated(self, tiny_ro, rng):
        """Same mismatch -> the two stages move together (the BMF premise)."""
        x_post = tiny_ro.sample(Stage.POST_LAYOUT, 500, rng)
        x_sch = x_post[:, : tiny_ro.num_vars(Stage.SCHEMATIC)]
        f_sch = tiny_ro.simulate(Stage.SCHEMATIC, x_sch, "frequency")
        f_post = tiny_ro.simulate(Stage.POST_LAYOUT, x_post, "frequency")
        assert np.corrcoef(f_sch, f_post)[0, 1] > 0.9

    def test_parasitic_variables_matter_post_layout(self, tiny_ro, rng):
        x = tiny_ro.sample(Stage.POST_LAYOUT, 1, rng)
        base = tiny_ro.simulate(Stage.POST_LAYOUT, x, "frequency")[0]
        shifted = x.copy()
        shifted[:, tiny_ro.num_vars(Stage.SCHEMATIC) :] += 2.0
        slower = tiny_ro.simulate(Stage.POST_LAYOUT, shifted, "frequency")[0]
        assert slower < base  # more wire cap -> slower

    def test_parasitic_variables_ignored_at_schematic(self, tiny_ro, rng):
        """Schematic evaluation does not depend on (absent) parasitics."""
        x = tiny_ro.sample(Stage.SCHEMATIC, 3, rng)
        f = tiny_ro.simulate(Stage.SCHEMATIC, x, "power")
        assert np.all(np.isfinite(f))


class TestPhysics:
    def test_higher_global_vth_means_slower_and_less_leaky(self, tiny_ro, tiny_kit):
        """Push the global vth projection: frequency drops, leakage drops."""
        space_size = tiny_ro.num_vars(Stage.POST_LAYOUT)
        x = np.zeros((2, space_size))
        projection = tiny_kit.interdie_projection("vth")
        x[1, : tiny_kit.interdie_params] = 3.0 * projection
        frequency = tiny_ro.simulate(Stage.POST_LAYOUT, x, "frequency")
        assert frequency[1] < frequency[0]

    def test_power_scales_with_frequency(self, tiny_ro, rng):
        x = tiny_ro.sample(Stage.POST_LAYOUT, 2000, rng)
        frequency = tiny_ro.simulate(Stage.POST_LAYOUT, x, "frequency")
        power = tiny_ro.simulate(Stage.POST_LAYOUT, x, "power")
        assert np.corrcoef(frequency, power)[0, 1] > 0.5
