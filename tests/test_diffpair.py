"""Unit tests for the MNA-simulated differential pair (Section IV-A)."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.circuits import Stage
from repro.circuits.diffpair import DifferentialPair
from repro.regression import LeastSquaresRegressor


class TestConstruction:
    def test_variable_counts(self, diffpair):
        assert diffpair.num_vars(Stage.SCHEMATIC) == 4
        assert diffpair.num_vars(Stage.POST_LAYOUT) == 2 * 2 + 2

    def test_finger_map_matches_spaces(self, diffpair):
        fmap = diffpair.finger_map()
        assert fmap.num_early_vars == diffpair.num_vars(Stage.SCHEMATIC)
        assert fmap.num_late_vars == diffpair.num_vars(Stage.POST_LAYOUT)

    def test_invalid_fingers_rejected(self):
        with pytest.raises(ValueError, match="fingers"):
            DifferentialPair(fingers=0)


class TestSimulation:
    def test_zero_mismatch_zero_offset(self, diffpair):
        x = np.zeros((1, 4))
        offset = diffpair.simulate(Stage.SCHEMATIC, x, "offset_voltage")
        assert abs(offset[0]) < 1e-7

    def test_gain_matches_hand_analysis(self, diffpair):
        """gm * R_load for the resistively loaded pair."""
        x = np.zeros((1, 4))
        gain = diffpair.simulate(Stage.SCHEMATIC, x, "gain")[0]
        half_current = diffpair.tail_current / 2
        vov = np.sqrt(2 * half_current / diffpair.kp)
        gm = diffpair.kp * vov
        expected = gm * diffpair.load_resistance
        assert gain == pytest.approx(expected, rel=0.05)

    def test_offset_is_linear_in_vth_mismatch(self, diffpair):
        """V_OS ~ sigma_vth * (x1 - x2): the paper's eq. (36) structure."""
        basis = OrthonormalBasis.linear(4)
        rng = np.random.default_rng(5)
        x = rng.standard_normal((60, 4))
        offset = diffpair.simulate(Stage.SCHEMATIC, x, "offset_voltage")
        model = LeastSquaresRegressor(basis).fit(x, offset)
        coefficients = model.coefficients_
        assert coefficients[1] == pytest.approx(diffpair.sigma_vth, rel=0.05)
        assert coefficients[2] == pytest.approx(-diffpair.sigma_vth, rel=0.05)
        # Load mismatch contributes with opposite signs too.
        assert coefficients[3] < 0 < coefficients[4]
        # And the linear model is nearly exact.
        assert model.fitted_model().error_on(x, offset) < 0.02

    def test_postlayout_finger_equivalence(self, diffpair, rng):
        """Post-layout offset evaluated at finger samples equals the
        schematic offset at the projected samples (same total mismatch)."""
        x_late = diffpair.sample(Stage.POST_LAYOUT, 10, rng)
        late = diffpair.simulate(Stage.POST_LAYOUT, x_late, "offset_voltage")
        x_early = diffpair.finger_map().project_samples(x_late)
        early = diffpair.simulate(Stage.SCHEMATIC, x_early, "offset_voltage")
        # Not identical (layout shifts the loads) but extremely correlated.
        assert np.corrcoef(late, early)[0, 1] > 0.999

    def test_offset_statistics(self, diffpair, rng):
        x = diffpair.sample(Stage.SCHEMATIC, 200, rng)
        offset = diffpair.simulate(Stage.SCHEMATIC, x, "offset_voltage")
        # sigma_vos ~ sqrt(2) * sigma_vth plus the load term.
        expected = np.sqrt(
            2 * diffpair.sigma_vth**2
            + 2 * (diffpair.sigma_load * 0.3) ** 2  # load term is smaller
        )
        assert offset.std() == pytest.approx(expected, rel=0.3)

    def test_unknown_metric_rejected(self, diffpair):
        with pytest.raises(ValueError, match="unknown metric"):
            diffpair.simulate(Stage.SCHEMATIC, np.zeros((1, 4)), "psrr")
