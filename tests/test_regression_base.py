"""Unit tests for the estimator protocol, FittedModel, and error metrics."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.regression import FittedModel, relative_error, rms_error
from repro.regression.base import BasisRegressor


class _MeanRegressor(BasisRegressor):
    """Trivial concrete regressor: constant term = mean, rest zero."""

    def _fit_design(self, design, target):
        coefficients = np.zeros(design.shape[1])
        coefficients[0] = float(np.mean(target))
        return coefficients


class TestRelativeError:
    def test_perfect_prediction(self):
        actual = np.array([1.0, 2.0, 3.0])
        assert relative_error(actual, actual) == 0.0

    def test_matches_eq59(self, rng):
        predicted = rng.standard_normal(40)
        actual = rng.standard_normal(40) + 5.0
        expected = np.linalg.norm(predicted - actual) / np.linalg.norm(actual)
        assert relative_error(predicted, actual) == pytest.approx(expected)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            relative_error(np.zeros(3), np.zeros(4))

    def test_zero_norm_rejected(self):
        with pytest.raises(ValueError, match="zero norm"):
            relative_error(np.ones(3), np.zeros(3))

    def test_scale_invariance(self, rng):
        predicted = rng.standard_normal(20) + 3.0
        actual = rng.standard_normal(20) + 3.0
        assert relative_error(10 * predicted, 10 * actual) == pytest.approx(
            relative_error(predicted, actual)
        )


class TestRmsError:
    def test_known_value(self):
        assert rms_error(np.array([1.0, 1.0]), np.array([0.0, 0.0])) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            rms_error(np.zeros(2), np.zeros(3))


class TestFittedModel:
    def test_predict(self, rng):
        basis = OrthonormalBasis.linear(3)
        coefficients = np.array([1.0, 2.0, 0.0, -1.0])
        model = FittedModel(basis, coefficients)
        x = rng.standard_normal((5, 3))
        assert np.allclose(model.predict(x), 1.0 + 2 * x[:, 0] - x[:, 2])

    def test_wrong_coefficient_count_rejected(self):
        with pytest.raises(ValueError, match="4 coefficients"):
            FittedModel(OrthonormalBasis.linear(3), np.zeros(6))

    def test_error_on(self, rng):
        basis = OrthonormalBasis.linear(2)
        model = FittedModel(basis, np.array([5.0, 1.0, 1.0]))
        x = rng.standard_normal((10, 2))
        f = model.predict(x)
        assert model.error_on(x, f) == 0.0

    def test_sparsity(self):
        basis = OrthonormalBasis.linear(4)
        model = FittedModel(basis, np.array([1.0, 0.0, 0.5, 0.0, 1e-15]))
        assert model.sparsity() == 3
        assert model.sparsity(threshold=1e-10) == 2


class TestBasisRegressorProtocol:
    def test_fit_predict_roundtrip(self, rng):
        basis = OrthonormalBasis.linear(3)
        x = rng.standard_normal((20, 3))
        f = rng.standard_normal(20) + 4.0
        model = _MeanRegressor(basis).fit(x, f)
        assert np.allclose(model.predict(x), np.mean(f))

    def test_fit_design_stores_coefficients(self, rng):
        basis = OrthonormalBasis.linear(2)
        regressor = _MeanRegressor(basis)
        design = basis.design_matrix(rng.standard_normal((5, 2)))
        returned = regressor.fit_design(design, np.ones(5))
        assert regressor.coefficients_ is returned

    def test_predict_before_fit_rejected(self):
        regressor = _MeanRegressor(OrthonormalBasis.linear(2))
        with pytest.raises(RuntimeError, match="not fitted"):
            regressor.predict(np.zeros((1, 2)))

    def test_fitted_model_before_fit_rejected(self):
        regressor = _MeanRegressor(OrthonormalBasis.linear(2))
        with pytest.raises(RuntimeError, match="not fitted"):
            regressor.fitted_model()

    def test_non_2d_x_rejected(self):
        regressor = _MeanRegressor(OrthonormalBasis.linear(2))
        with pytest.raises(ValueError, match="2-D"):
            regressor.fit(np.zeros(2), np.zeros(1))

    def test_target_length_mismatch_rejected(self, rng):
        regressor = _MeanRegressor(OrthonormalBasis.linear(2))
        with pytest.raises(ValueError, match="match x"):
            regressor.fit(rng.standard_normal((5, 2)), np.zeros(4))

    def test_fitted_model_detached(self, rng):
        basis = OrthonormalBasis.linear(2)
        regressor = _MeanRegressor(basis).fit(
            rng.standard_normal((5, 2)), np.full(5, 2.0)
        )
        model = regressor.fitted_model()
        assert isinstance(model, FittedModel)
        assert model.predict(np.zeros((1, 2)))[0] == pytest.approx(2.0)
