"""Unit tests for SPICE-lite elements and source waveforms."""

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    CurrentSource,
    DcValue,
    Mosfet,
    PiecewiseLinear,
    Pulse,
    Resistor,
    Sine,
    VoltageSource,
)


class TestWaveforms:
    def test_dc_value_constant(self):
        wave = DcValue(2.5)
        assert wave.value(0.0) == 2.5
        assert wave.value(1e9) == 2.5

    def test_pulse_phases(self):
        wave = Pulse(0.0, 1.0, delay=1.0, rise=0.5, fall=0.25, width=2.0)
        assert wave.value(0.5) == 0.0          # before delay
        assert wave.value(1.25) == pytest.approx(0.5)  # mid rise
        assert wave.value(2.0) == 1.0          # high plateau
        assert wave.value(3.5 + 0.125) == pytest.approx(0.5)  # mid fall
        assert wave.value(10.0) == 0.0         # back low

    def test_pulse_periodic(self):
        wave = Pulse(0.0, 1.0, rise=0.1, fall=0.1, width=0.4, period=1.0)
        assert wave.value(0.3) == 1.0
        assert wave.value(1.3) == 1.0
        assert wave.value(0.8) == 0.0
        assert wave.value(2.8) == 0.0

    def test_pulse_validation(self):
        with pytest.raises(ValueError, match="rise"):
            Pulse(0, 1, rise=0.0)
        with pytest.raises(ValueError, match="width"):
            Pulse(0, 1, width=-1.0)

    def test_pwl_interpolation(self):
        wave = PiecewiseLinear([(0.0, 0.0), (1.0, 2.0), (3.0, 0.0)])
        assert wave.value(-1.0) == 0.0
        assert wave.value(0.5) == 1.0
        assert wave.value(2.0) == 1.0
        assert wave.value(5.0) == 0.0

    def test_pwl_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            PiecewiseLinear([(0.0, 0.0), (0.0, 1.0)])
        with pytest.raises(ValueError, match="at least one"):
            PiecewiseLinear([])

    def test_sine(self):
        wave = Sine(offset=1.0, amplitude=2.0, frequency=1.0)
        assert wave.value(0.0) == pytest.approx(1.0)
        assert wave.value(0.25) == pytest.approx(3.0)
        with pytest.raises(ValueError, match="frequency"):
            Sine(0, 1, 0.0)


class TestElementValidation:
    def test_resistor_positive(self):
        with pytest.raises(ValueError, match="resistance"):
            Resistor("R1", "a", "b", 0.0)

    def test_capacitor_positive(self):
        with pytest.raises(ValueError, match="capacitance"):
            Capacitor("C1", "a", "b", -1e-12)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Resistor("", "a", "b", 1.0)

    def test_mosfet_polarity(self):
        with pytest.raises(ValueError, match="polarity"):
            Mosfet("M1", "d", "g", "s", kp=1e-3, vth=0.3, polarity="cmos")

    def test_mosfet_kp_positive(self):
        with pytest.raises(ValueError, match="kp"):
            Mosfet("M1", "d", "g", "s", kp=0.0, vth=0.3)

    def test_nodes_reported(self):
        m = Mosfet("M1", "d", "g", "s", kp=1e-3, vth=0.3)
        assert m.nodes() == ("d", "g", "s")
        v = VoltageSource("V1", "p", "n", dc=1.0)
        assert v.nodes() == ("p", "n")
        i = CurrentSource("I1", "a", "b", dc=1.0)
        assert i.nodes() == ("a", "b")


class TestMosfetModel:
    def setup_method(self):
        self.fet = Mosfet("M1", "d", "g", "s", kp=2e-4, vth=0.4, lambda_=0.05)

    def test_cutoff(self):
        ids, gm, gds = self.fet.ids(vgs=0.3, vds=1.0)
        assert ids == 0.0 and gm == 0.0 and gds == 0.0

    def test_saturation_current(self):
        vgs, vds = 1.0, 1.5  # vov = 0.6 < vds
        ids, gm, gds = self.fet.ids(vgs, vds)
        expected = 0.5 * 2e-4 * 0.6**2 * (1 + 0.05 * 1.5)
        assert ids == pytest.approx(expected)
        assert gm == pytest.approx(2e-4 * 0.6 * (1 + 0.05 * 1.5))
        assert gds == pytest.approx(0.5 * 2e-4 * 0.6**2 * 0.05)

    def test_triode_current(self):
        vgs, vds = 1.0, 0.2  # vov = 0.6 > vds
        ids, _gm, _gds = self.fet.ids(vgs, vds)
        expected = 2e-4 * (0.6 * 0.2 - 0.5 * 0.04) * (1 + 0.05 * 0.2)
        assert ids == pytest.approx(expected)

    def test_continuity_at_saturation_edge(self):
        vgs = 1.0
        vov = vgs - 0.4
        below = self.fet.ids(vgs, vov - 1e-9)[0]
        above = self.fet.ids(vgs, vov + 1e-9)[0]
        assert below == pytest.approx(above, rel=1e-5)

    def test_reverse_vds_antisymmetry(self):
        """Drain/source swap: ids(vgs - vds, -vds) = -ids(vgs, vds)."""
        forward = self.fet.ids(1.0, 0.5)[0]
        backward = self.fet.ids(1.0 - 0.5, -0.5)[0]
        assert backward == pytest.approx(-forward, rel=1e-12)

    def test_gm_is_numeric_derivative(self):
        vgs, vds, eps = 0.9, 1.2, 1e-7
        _ids, gm, _gds = self.fet.ids(vgs, vds)
        numeric = (
            self.fet.ids(vgs + eps, vds)[0] - self.fet.ids(vgs - eps, vds)[0]
        ) / (2 * eps)
        assert gm == pytest.approx(numeric, rel=1e-5)

    def test_gds_is_numeric_derivative(self):
        for vds in (0.2, 1.2):  # triode and saturation
            vgs, eps = 0.9, 1e-7
            _ids, _gm, gds = self.fet.ids(vgs, vds)
            numeric = (
                self.fet.ids(vgs, vds + eps)[0] - self.fet.ids(vgs, vds - eps)[0]
            ) / (2 * eps)
            assert gds == pytest.approx(numeric, rel=1e-4)
