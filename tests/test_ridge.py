"""Unit tests for ridge regression."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.regression import RidgeRegressor


class TestRidge:
    def test_matches_closed_form(self, rng):
        """Shrinkage applies to the centered target; the intercept gets the
        mean back (standard unpenalized-intercept ridge)."""
        basis = OrthonormalBasis.linear(4)
        x = rng.standard_normal((12, 4))
        f = rng.standard_normal(12)
        penalty = 0.7
        model = RidgeRegressor(basis, penalty=penalty).fit(x, f)
        design = basis.design_matrix(x)
        centered = f - f.mean()
        reference = np.linalg.solve(
            penalty * np.eye(basis.size) + design.T @ design,
            design.T @ centered,
        )
        reference[0] += f.mean()
        assert np.allclose(model.coefficients_, reference)

    def test_intercept_unpenalized(self, rng):
        """A huge-mean target must not be shrunk toward zero."""
        basis = OrthonormalBasis.linear(3)
        x = rng.standard_normal((30, 3))
        f = 1e9 + rng.standard_normal(30)
        model = RidgeRegressor(basis, penalty=100.0).fit(x, f)
        prediction = model.predict(rng.standard_normal((10, 3)))
        assert np.allclose(prediction, 1e9, rtol=1e-6)

    def test_shrinks_with_penalty(self, rng):
        basis = OrthonormalBasis.linear(5)
        x = rng.standard_normal((30, 5))
        f = rng.standard_normal(30) + 2.0
        weak = RidgeRegressor(basis, penalty=1e-6).fit(x, f)
        strong = RidgeRegressor(basis, penalty=1e6).fit(x, f)
        assert np.linalg.norm(strong.coefficients_) < np.linalg.norm(
            weak.coefficients_
        )

    def test_small_penalty_approaches_least_squares(self, rng):
        basis = OrthonormalBasis.linear(3)
        truth = rng.standard_normal(basis.size)
        x = rng.standard_normal((40, 3))
        f = basis.evaluate(truth, x)
        model = RidgeRegressor(basis, penalty=1e-6).fit(x, f)
        assert np.allclose(model.coefficients_, truth, atol=1e-5)

    def test_underdetermined_works(self, rng):
        """Ridge handles M >> K thanks to the Woodbury fast path."""
        basis = OrthonormalBasis.linear(500)
        x = rng.standard_normal((20, 500))
        f = rng.standard_normal(20)
        model = RidgeRegressor(basis, penalty=1.0).fit(x, f)
        assert model.coefficients_.shape == (501,)
        assert np.isfinite(model.coefficients_).all()

    def test_non_positive_penalty_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            RidgeRegressor(OrthonormalBasis.linear(3), penalty=0.0)
