"""Unit tests for the top-level BmfRegressor (Algorithm 1)."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.bmf import BmfRegressor, fuse, uninformative_prior, zero_mean_prior
from repro.regression import relative_error


@pytest.fixture
def synthetic(rng):
    num_vars, num_samples = 120, 40
    basis = OrthonormalBasis.linear(num_vars)
    truth = np.zeros(basis.size)
    truth[0] = 8.0
    hot = rng.choice(np.arange(1, basis.size), 25, replace=False)
    truth[hot] = rng.normal(0, 0.5, 25)
    early = truth * (1 + 0.1 * rng.standard_normal(basis.size))
    x = rng.standard_normal((num_samples, num_vars))
    f = basis.evaluate(truth, x) + 0.01 * rng.standard_normal(num_samples)
    x_test = rng.standard_normal((500, num_vars))
    f_test = basis.evaluate(truth, x_test)
    return basis, truth, early, x, f, x_test, f_test


class TestFitting:
    @pytest.mark.parametrize("kind", ["zero-mean", "nonzero-mean", "select"])
    def test_each_prior_kind_beats_trivial_model(self, synthetic, kind):
        basis, _truth, early, x, f, x_test, f_test = synthetic
        model = BmfRegressor(basis, early, prior_kind=kind).fit(x, f)
        error = relative_error(model.predict(x_test), f_test)
        trivial = relative_error(np.full_like(f_test, f.mean()), f_test)
        assert error < 0.3 * trivial

    def test_select_matches_best_variant(self, synthetic):
        basis, _truth, early, x, f, x_test, f_test = synthetic
        errors = {}
        for kind in ("zero-mean", "nonzero-mean"):
            model = BmfRegressor(basis, early, prior_kind=kind).fit(x, f)
            errors[kind] = model.cv_report_.error
        selected = BmfRegressor(basis, early, prior_kind="select").fit(x, f)
        assert selected.chosen_prior_.name == min(errors, key=errors.get)

    def test_fixed_eta_skips_cv(self, synthetic):
        basis, _truth, early, x, f, _xt, _ft = synthetic
        model = BmfRegressor(basis, early, prior_kind="nonzero-mean", eta=1.0)
        model.fit(x, f)
        assert model.cv_report_ is None
        assert model.chosen_eta_ == 1.0

    def test_explicit_eta_grid(self, synthetic):
        basis, _truth, early, x, f, _xt, _ft = synthetic
        grid = [0.01, 1.0, 100.0]
        model = BmfRegressor(
            basis, early, prior_kind="zero-mean", eta_grid=grid
        ).fit(x, f)
        assert model.chosen_eta_ in grid

    def test_missing_indices_applied(self, synthetic):
        basis, _truth, early, x, f, _xt, _ft = synthetic
        model = BmfRegressor(
            basis, early, prior_kind="nonzero-mean", missing_indices=[1, 2]
        )
        for prior in model._candidate_priors:
            assert np.isinf(prior.scale[1])
            assert np.isinf(prior.scale[2])
        model.fit(x, f)
        assert model.coefficients_ is not None

    def test_explicit_priors(self, synthetic):
        basis, _truth, _early, x, f, _xt, _ft = synthetic
        model = BmfRegressor(
            basis,
            priors=[uninformative_prior(basis.size)],
            prior_kind="zero-mean",
        ).fit(x, f)
        assert model.chosen_prior_.name == "uninformative"

    def test_direct_solver_equals_fast(self, synthetic):
        basis, _truth, early, x, f, _xt, _ft = synthetic
        eta = 2.0
        fast = BmfRegressor(
            basis, early, prior_kind="zero-mean", eta=eta, solver="fast"
        ).fit(x, f)
        direct = BmfRegressor(
            basis, early, prior_kind="zero-mean", eta=eta, solver="direct"
        ).fit(x, f)
        assert np.allclose(fast.coefficients_, direct.coefficients_, atol=1e-8)

    def test_n_folds_reduced_for_tiny_datasets(self, synthetic, rng):
        basis, _truth, early, _x, _f, _xt, _ft = synthetic
        x = rng.standard_normal((6, basis.num_vars))
        f = rng.standard_normal(6) + 8.0
        model = BmfRegressor(basis, early, prior_kind="select", n_folds=10)
        model.fit(x, f)  # must not crash with n_folds > K
        assert model.coefficients_ is not None


class TestValidation:
    def test_bad_prior_kind_rejected(self, synthetic):
        basis, _t, early, *_ = synthetic
        with pytest.raises(ValueError, match="prior_kind"):
            BmfRegressor(basis, early, prior_kind="flat")

    def test_both_alpha_and_priors_rejected(self, synthetic):
        basis, _t, early, *_ = synthetic
        with pytest.raises(ValueError, match="exactly one"):
            BmfRegressor(basis, early, priors=[zero_mean_prior(early)])

    def test_neither_alpha_nor_priors_rejected(self, synthetic):
        basis, *_ = synthetic
        with pytest.raises(ValueError, match="exactly one"):
            BmfRegressor(basis)

    def test_fixed_eta_with_select_rejected(self, synthetic):
        basis, _t, early, *_ = synthetic
        with pytest.raises(ValueError, match="select"):
            BmfRegressor(basis, early, prior_kind="select", eta=1.0)

    def test_negative_eta_rejected(self, synthetic):
        basis, _t, early, *_ = synthetic
        with pytest.raises(ValueError, match="positive"):
            BmfRegressor(basis, early, prior_kind="zero-mean", eta=-1.0)

    def test_wrong_alpha_length_rejected(self, synthetic):
        basis, *_ = synthetic
        with pytest.raises(ValueError, match="alpha_early"):
            BmfRegressor(basis, np.ones(3))

    def test_wrong_prior_size_rejected(self, synthetic):
        basis, *_ = synthetic
        with pytest.raises(ValueError, match="covers"):
            BmfRegressor(basis, priors=[uninformative_prior(3)])

    def test_empty_priors_rejected(self, synthetic):
        basis, *_ = synthetic
        with pytest.raises(ValueError, match="empty"):
            BmfRegressor(basis, priors=[])


class TestPredictStd:
    def test_positive_and_finite(self, synthetic):
        basis, _truth, early, x, f, x_test, _ft = synthetic
        model = BmfRegressor(basis, early, prior_kind="nonzero-mean").fit(x, f)
        std = model.predict_std(x_test[:20])
        assert std.shape == (20,)
        assert np.all(std >= 0)
        assert np.all(np.isfinite(std))

    def test_smaller_near_training_points(self, synthetic):
        basis, _truth, early, x, f, _xt, _ft = synthetic
        model = BmfRegressor(basis, early, prior_kind="nonzero-mean").fit(x, f)
        at_train = model.predict_std(x[:5]).mean()
        far = model.predict_std(8.0 * np.ones((5, basis.num_vars))).mean()
        assert at_train < far

    def test_requires_fit_not_fit_design(self, synthetic):
        basis, _truth, early, x, f, _xt, _ft = synthetic
        model = BmfRegressor(basis, early, prior_kind="nonzero-mean")
        model.fit_design(basis.design_matrix(x), f)
        with pytest.raises(RuntimeError, match="fit\\(\\)"):
            model.predict_std(x)

    def test_unfitted_rejected(self, synthetic):
        basis, _truth, early, *_ = synthetic
        model = BmfRegressor(basis, early, prior_kind="nonzero-mean")
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict_std(np.zeros((1, basis.num_vars)))


class TestFuseHelper:
    def test_returns_fitted_model(self, synthetic):
        basis, _truth, early, x, f, x_test, f_test = synthetic
        model = fuse(x, f, basis, early)
        error = relative_error(model.predict(x_test), f_test)
        assert error < 0.05

    def test_kwargs_forwarded(self, synthetic):
        basis, _truth, early, x, f, _xt, _ft = synthetic
        model = fuse(x, f, basis, early, prior_kind="zero-mean", eta=1.0)
        assert model.coefficients.shape == (basis.size,)
