"""Unit tests for MAP estimation (Section III-B) and the fast solver (IV-C)."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.bmf import (
    GaussianCoefficientPrior,
    KernelMapSolver,
    map_estimate,
    nonzero_mean_prior,
    uninformative_prior,
    zero_mean_prior,
)


@pytest.fixture
def problem(rng):
    num_samples, num_terms = 25, 80
    design = rng.standard_normal((num_samples, num_terms))
    truth = rng.standard_normal(num_terms)
    target = design @ truth + 0.05 * rng.standard_normal(num_samples)
    early = truth * (1 + 0.1 * rng.standard_normal(num_terms))
    return design, target, early


class TestSolverEquivalence:
    """The low-rank fast solver is exact (eqs. 55, 58)."""

    def test_zero_mean_fast_equals_direct(self, problem):
        design, target, early = problem
        prior = zero_mean_prior(early)
        fast = map_estimate(design, target, prior, 2.0, solver="fast")
        direct = map_estimate(design, target, prior, 2.0, solver="direct")
        assert np.allclose(fast, direct, atol=1e-9)

    def test_nonzero_mean_fast_equals_direct(self, problem):
        design, target, early = problem
        prior = nonzero_mean_prior(early)
        fast = map_estimate(design, target, prior, 0.5, solver="fast")
        direct = map_estimate(design, target, prior, 0.5, solver="direct")
        assert np.allclose(fast, direct, atol=1e-9)

    def test_with_missing_entries(self, problem):
        design, target, early = problem
        prior = nonzero_mean_prior(early).with_missing([0, 10, 20])
        fast = map_estimate(design, target, prior, 1.0, solver="fast")
        direct = map_estimate(design, target, prior, 1.0, solver="direct")
        assert np.allclose(fast, direct, atol=1e-8)

    def test_with_pinned_entries(self, problem):
        design, target, early = problem
        early = early.copy()
        early[[3, 7]] = 0.0  # zero early coefficient pins the late one
        prior = zero_mean_prior(early)
        fast = map_estimate(design, target, prior, 1.0, solver="fast")
        direct = map_estimate(design, target, prior, 1.0, solver="direct")
        assert np.allclose(fast, direct, atol=1e-9)
        assert fast[3] == 0.0 and fast[7] == 0.0

    def test_pinned_plus_missing_agree_for_default_missing_scale(self, problem):
        """Pinned entries make the direct path recurse on a sub-problem;
        the missing-scale default must be resolved against the full prior
        once so both solvers substitute the same value."""
        design, target, early = problem
        early = early.copy()
        early[[3, 7]] = 0.0  # pinned
        prior = zero_mean_prior(early).with_missing([0, 10, 20])
        for missing_scale in (None, 500.0):
            fast = map_estimate(
                design, target, prior, 1.0,
                solver="fast", missing_scale=missing_scale,
            )
            direct = map_estimate(
                design, target, prior, 1.0,
                solver="direct", missing_scale=missing_scale,
            )
            assert np.allclose(fast, direct, rtol=1e-7, atol=1e-8), missing_scale
            assert direct[3] == 0.0 and direct[7] == 0.0


class TestMapSemantics:
    def test_matches_paper_eq30(self, problem):
        """Zero-mean MAP equals eq. (28)-(30) evaluated literally."""
        design, target, early = problem
        early = np.where(early == 0, 1e-3, early)
        prior = zero_mean_prior(early)
        sigma0_sq = 0.7  # eta = sigma_0^2 for the zero-mean prior
        solution = map_estimate(design, target, prior, sigma0_sq)
        inv_sigma0_sq = 1.0 / sigma0_sq
        posterior_cov = np.linalg.inv(
            inv_sigma0_sq * design.T @ design + np.diag(early**-2.0)
        )
        reference = inv_sigma0_sq * posterior_cov @ design.T @ target
        assert np.allclose(solution, reference, atol=1e-8)

    def test_matches_paper_eq35(self, problem):
        """Nonzero-mean MAP equals eq. (31)-(35) evaluated literally."""
        design, target, early = problem
        early = np.where(early == 0, 1e-3, early)
        prior = nonzero_mean_prior(early)
        eta = 1.3
        solution = map_estimate(design, target, prior, eta)
        diag = np.diag(early**-2.0)
        posterior_cov = np.linalg.inv(eta * diag + design.T @ design)
        reference = posterior_cov @ (eta * diag @ early + design.T @ target)
        assert np.allclose(solution, reference, atol=1e-8)

    def test_strong_prior_returns_prior_mean(self, problem):
        """eta -> infinity: the data is ignored (eq. 35 limit)."""
        design, target, early = problem
        prior = nonzero_mean_prior(early)
        solution = map_estimate(design, target, prior, 1e14)
        assert np.allclose(solution, early, atol=1e-4)

    def test_weak_prior_interpolates_training_data(self, problem):
        """eta -> 0: the MAP solution reproduces the observations."""
        design, target, early = problem
        prior = nonzero_mean_prior(early)
        solution = map_estimate(design, target, prior, 1e-10)
        assert np.allclose(design @ solution, target, atol=1e-4)

    def test_all_pinned_returns_means(self, rng):
        design = rng.standard_normal((5, 3))
        prior = GaussianCoefficientPrior(np.array([1.0, 2.0, 3.0]), np.zeros(3))
        solution = map_estimate(design, rng.standard_normal(5), prior, 1.0)
        assert np.allclose(solution, [1.0, 2.0, 3.0])

    def test_uninformative_prior_acts_like_ridgeless(self, rng):
        """With a flat prior and K > M, MAP approaches least squares."""
        design = rng.standard_normal((50, 8))
        truth = rng.standard_normal(8)
        target = design @ truth
        prior = uninformative_prior(8)
        solution = map_estimate(design, target, prior, 1.0, missing_scale=1e6)
        assert np.allclose(solution, truth, atol=1e-5)


class TestValidation:
    def test_bad_solver_rejected(self, problem):
        design, target, early = problem
        with pytest.raises(ValueError, match="solver"):
            map_estimate(design, target, zero_mean_prior(early), 1.0, solver="qr")

    def test_non_positive_eta_rejected(self, problem):
        design, target, early = problem
        with pytest.raises(ValueError, match="eta"):
            map_estimate(design, target, zero_mean_prior(early), 0.0)

    def test_prior_size_mismatch_rejected(self, problem):
        design, target, _early = problem
        with pytest.raises(ValueError, match="coefficients"):
            map_estimate(design, target, uninformative_prior(3), 1.0)

    def test_target_shape_mismatch_rejected(self, problem):
        design, _target, early = problem
        with pytest.raises(ValueError, match="target"):
            map_estimate(design, np.zeros(3), zero_mean_prior(early), 1.0)


class TestKernelMapSolver:
    def test_solve_matches_map_estimate(self, problem):
        design, target, early = problem
        prior = nonzero_mean_prior(early)
        solver = KernelMapSolver(design, target, prior)
        assert np.allclose(
            solver.solve(0.8),
            map_estimate(design, target, prior, 0.8, solver="direct"),
            atol=1e-9,
        )

    def test_submatrix_prediction_equals_refit(self, problem):
        """Fold predictions from kernel submatrices == refitting on the fold."""
        design, target, early = problem
        prior = nonzero_mean_prior(early)
        solver = KernelMapSolver(design, target, prior)
        train_rows = np.arange(0, 20)
        eval_rows = np.arange(20, 25)
        eta = 1.7
        kernel_prediction = solver.predict_submatrix(train_rows, eval_rows, eta)
        refit = map_estimate(
            design[train_rows], target[train_rows], prior, eta, solver="direct"
        )
        assert np.allclose(kernel_prediction, design[eval_rows] @ refit, atol=1e-8)

    def test_dual_weights_shape(self, problem):
        design, target, early = problem
        solver = KernelMapSolver(design, target, zero_mean_prior(early))
        assert solver.dual_weights(1.0).shape == (design.shape[0],)
        rows = np.arange(10)
        assert solver.dual_weights(1.0, rows).shape == (10,)

    def test_non_positive_eta_rejected(self, problem):
        design, target, early = problem
        solver = KernelMapSolver(design, target, zero_mean_prior(early))
        with pytest.raises(ValueError, match="eta"):
            solver.dual_weights(-1.0)
