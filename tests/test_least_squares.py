"""Unit tests for the least-squares baseline (Section II-B)."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.regression import LeastSquaresRegressor


class TestLeastSquares:
    def test_exact_recovery_noiseless(self, rng):
        basis = OrthonormalBasis.linear(6)
        truth = rng.standard_normal(basis.size)
        x = rng.standard_normal((40, 6))
        f = basis.evaluate(truth, x)
        model = LeastSquaresRegressor(basis).fit(x, f)
        assert np.allclose(model.coefficients_, truth)

    def test_noise_averaging(self, rng):
        """With many samples the estimate converges on the truth."""
        basis = OrthonormalBasis.linear(3)
        truth = np.array([2.0, 1.0, -1.0, 0.5])
        x = rng.standard_normal((20_000, 3))
        f = basis.evaluate(truth, x) + 0.1 * rng.standard_normal(20_000)
        model = LeastSquaresRegressor(basis).fit(x, f)
        assert np.allclose(model.coefficients_, truth, atol=0.01)

    def test_underdetermined_rejected_by_default(self, rng):
        basis = OrthonormalBasis.linear(50)
        x = rng.standard_normal((10, 50))
        with pytest.raises(ValueError, match="underdetermined"):
            LeastSquaresRegressor(basis).fit(x, np.zeros(10))

    def test_underdetermined_allowed_when_opted_in(self, rng):
        basis = OrthonormalBasis.linear(50)
        x = rng.standard_normal((10, 50))
        f = rng.standard_normal(10)
        model = LeastSquaresRegressor(basis, require_overdetermined=False)
        model.fit(x, f)
        # Minimum-norm solution interpolates the training data ...
        assert np.allclose(model.predict(x), f)
        # ... but that is exactly the high-dimensional failure mode: it has
        # no reason to generalize.
        assert model.coefficients_ is not None

    def test_quadratic_basis(self, rng):
        basis = OrthonormalBasis.total_degree(3, 2)
        truth = rng.standard_normal(basis.size)
        x = rng.standard_normal((100, 3))
        f = basis.evaluate(truth, x)
        model = LeastSquaresRegressor(basis).fit(x, f)
        assert np.allclose(model.coefficients_, truth, atol=1e-8)
