"""Unit tests for the multivariate orthonormal basis and design matrices."""

import math

import numpy as np
import pytest

from repro.basis import OrthonormalBasis


class TestConstruction:
    def test_linear_size(self):
        assert OrthonormalBasis.linear(20).size == 21

    def test_linear_without_constant(self):
        assert OrthonormalBasis.linear(20, include_constant=False).size == 20

    def test_total_degree_size(self):
        assert OrthonormalBasis.total_degree(4, 2).size == 15  # C(6,2)

    def test_len_matches_size(self):
        basis = OrthonormalBasis.linear(7)
        assert len(basis) == basis.size

    def test_is_linear(self):
        assert OrthonormalBasis.linear(5).is_linear()
        assert not OrthonormalBasis.total_degree(3, 2).is_linear()

    def test_max_degree(self):
        assert OrthonormalBasis.linear(5).max_degree == 1
        assert OrthonormalBasis.total_degree(3, 4).max_degree == 4

    def test_total_degrees(self):
        basis = OrthonormalBasis.total_degree(2, 2)
        degrees = basis.total_degrees()
        assert degrees[0] == 0
        assert set(degrees[1:3]) == {1}
        assert set(degrees[3:]) == {2}

    def test_equality(self):
        assert OrthonormalBasis.linear(4) == OrthonormalBasis.linear(4)
        assert OrthonormalBasis.linear(4) != OrthonormalBasis.linear(5)

    def test_invalid_indices_rejected(self):
        with pytest.raises(ValueError):
            OrthonormalBasis(2, [((3, 1),)])


class TestDesignMatrix:
    def test_linear_design_structure(self, rng):
        basis = OrthonormalBasis.linear(4)
        x = rng.standard_normal((10, 4))
        design = basis.design_matrix(x)
        assert design.shape == (10, 5)
        assert np.allclose(design[:, 0], 1.0)
        assert np.allclose(design[:, 1:], x)

    def test_single_sample_promoted(self):
        basis = OrthonormalBasis.linear(3)
        design = basis.design_matrix(np.zeros(3))
        assert design.shape == (1, 4)

    def test_wrong_width_rejected(self, rng):
        basis = OrthonormalBasis.linear(3)
        with pytest.raises(ValueError, match=r"\(K, 3\)"):
            basis.design_matrix(rng.standard_normal((5, 4)))

    def test_column_subset(self, rng):
        basis = OrthonormalBasis.linear(5)
        x = rng.standard_normal((7, 5))
        full = basis.design_matrix(x)
        subset = basis.design_matrix(x, columns=[0, 3, 5])
        assert np.allclose(subset, full[:, [0, 3, 5]])

    def test_quadratic_columns_match_hermite_products(self, rng):
        basis = OrthonormalBasis.total_degree(2, 2)
        x = rng.standard_normal((20, 2))
        design = basis.design_matrix(x)
        # Find the (x1^2 - 1)/sqrt(2) column.
        col = basis.index_of(((0, 2),))
        assert np.allclose(design[:, col], (x[:, 0] ** 2 - 1) / math.sqrt(2))
        # And the cross term x1 * x2.
        col = basis.index_of(((0, 1), (1, 1)))
        assert np.allclose(design[:, col], x[:, 0] * x[:, 1])

    def test_generic_path_matches_linear_fast_path(self, rng):
        """A linear basis expressed with an extra degree-2 term falls back
        to the generic path; its linear columns must agree with the fast
        path of a purely linear basis."""
        x = rng.standard_normal((15, 3))
        linear = OrthonormalBasis.linear(3)
        mixed = OrthonormalBasis(
            3, list(linear.indices) + [((0, 2),)]
        )
        fast = linear.design_matrix(x)
        generic = mixed.design_matrix(x)
        assert np.allclose(generic[:, : linear.size], fast)

    def test_generator_columns_materialized_once(self, rng):
        """A generator argument must not be exhausted before assembly."""
        basis = OrthonormalBasis.total_degree(3, 2)
        x = rng.standard_normal((12, 3))
        full = basis.design_matrix(x)
        subset = basis.design_matrix(x, columns=(c for c in [1, 4, 7]))
        assert subset.shape == (12, 3)
        assert np.allclose(subset, full[:, [1, 4, 7]])

    def test_negative_columns_normalized(self, rng):
        basis = OrthonormalBasis.total_degree(2, 2)
        x = rng.standard_normal((9, 2))
        full = basis.design_matrix(x)
        assert np.allclose(
            basis.design_matrix(x, columns=[-1, 0]),
            full[:, [basis.size - 1, 0]],
        )

    def test_out_of_range_column_rejected(self, rng):
        basis = OrthonormalBasis.total_degree(2, 2)
        x = rng.standard_normal((4, 2))
        with pytest.raises(IndexError, match="out of range"):
            basis.design_matrix(x, columns=[basis.size])
        with pytest.raises(IndexError, match="out of range"):
            basis.design_matrix(x, columns=[-basis.size - 1])

    def test_hermite_tables_sized_to_selected_columns(self, rng, monkeypatch):
        """Requesting only low-degree columns must not build full tables."""
        import repro.basis.multivariate as multivariate

        seen = []
        original = multivariate.hermite_orthonormal_all

        def recording(max_degree, x):
            seen.append(max_degree)
            return original(max_degree, x)

        monkeypatch.setattr(multivariate, "hermite_orthonormal_all", recording)
        basis = OrthonormalBasis.total_degree(3, 5)
        x = rng.standard_normal((10, 3))
        linear_columns = [
            m for m, idx in enumerate(basis.indices)
            if sum(d for _, d in idx) <= 1
        ]
        basis.design_matrix(x, columns=linear_columns)
        assert seen == [1]

    def test_vectorized_matches_loop_reference(self, rng):
        """The grouped assembly must agree with the per-column reference."""
        for num_vars, degree in [(4, 3), (2, 5), (5, 1), (3, 2)]:
            basis = OrthonormalBasis.total_degree(num_vars, degree)
            x = rng.standard_normal((17, num_vars))
            assert np.allclose(
                basis.design_matrix(x), basis._design_matrix_loop(x)
            ), (num_vars, degree)

    def test_vectorized_matches_loop_on_subsets(self, rng):
        basis = OrthonormalBasis.total_degree(4, 3)
        columns = list(rng.choice(basis.size, size=11, replace=False))
        x = rng.standard_normal((13, 4))
        assert np.allclose(
            basis.design_matrix(x, columns=columns),
            basis._design_matrix_loop(x, columns=columns),
        )

    def test_vectorized_matches_loop_on_sparse_basis(self, rng):
        """Irregular custom index sets exercise the gather fallback."""
        basis = OrthonormalBasis(
            5,
            [
                (),
                ((0, 2),),
                ((1, 1), (3, 2)),
                ((0, 1), (2, 1), (4, 1)),
                ((4, 3),),
            ],
        )
        x = rng.standard_normal((21, 5))
        assert np.allclose(basis.design_matrix(x), basis._design_matrix_loop(x))

    def test_single_row_samples(self, rng):
        basis = OrthonormalBasis.total_degree(3, 3)
        x = rng.standard_normal((1, 3))
        assert np.allclose(basis.design_matrix(x), basis._design_matrix_loop(x))

    def test_empty_column_selection(self, rng):
        basis = OrthonormalBasis.total_degree(2, 2)
        design = basis.design_matrix(rng.standard_normal((6, 2)), columns=[])
        assert design.shape == (6, 0)

    def test_gram_is_identity_under_gaussian(self, rng):
        """Monte Carlo orthonormality: G^T G / K -> I (eq. 3)."""
        basis = OrthonormalBasis.total_degree(3, 2)
        x = rng.standard_normal((200_000, 3))
        design = basis.design_matrix(x)
        gram = design.T @ design / x.shape[0]
        assert np.allclose(gram, np.eye(basis.size), atol=0.05)


class TestEvaluate:
    def test_linear_combination(self, rng):
        basis = OrthonormalBasis.linear(4)
        coeffs = rng.standard_normal(5)
        x = rng.standard_normal((9, 4))
        expected = coeffs[0] + x @ coeffs[1:]
        assert np.allclose(basis.evaluate(coeffs, x), expected)

    def test_single_sample_returns_scalar(self):
        basis = OrthonormalBasis.linear(2)
        value = basis.evaluate(np.array([1.0, 2.0, 3.0]), np.array([1.0, 1.0]))
        assert np.isscalar(value) or value.ndim == 0
        assert float(value) == pytest.approx(6.0)

    def test_wrong_coefficient_count_rejected(self):
        basis = OrthonormalBasis.linear(3)
        with pytest.raises(ValueError, match="4 coefficients"):
            basis.evaluate(np.zeros(7), np.zeros(3))


class TestStructureHelpers:
    def test_index_of_found(self):
        basis = OrthonormalBasis.linear(3)
        assert basis.index_of(((1, 1),)) == 2

    def test_index_of_missing(self):
        basis = OrthonormalBasis.linear(3)
        with pytest.raises(KeyError):
            basis.index_of(((0, 2),))

    def test_restricted_to(self, rng):
        basis = OrthonormalBasis.linear(5)
        restricted = basis.restricted_to([0, 2, 4])
        assert restricted.size == 3
        x = rng.standard_normal((6, 5))
        assert np.allclose(
            restricted.design_matrix(x), basis.design_matrix(x)[:, [0, 2, 4]]
        )
