"""Unit tests for the Monte Carlo engine and dataset handling."""

import numpy as np
import pytest

from repro.circuits import Stage
from repro.montecarlo import Dataset, simulate_dataset, train_test_split


@pytest.fixture
def dataset(rng):
    x = rng.standard_normal((20, 3))
    return Dataset(
        x,
        {"a": x[:, 0] * 2, "b": x[:, 1] + 1},
        Stage.SCHEMATIC,
        "toy",
    )


class TestDataset:
    def test_properties(self, dataset):
        assert dataset.size == 20
        assert dataset.num_vars == 3

    def test_metric_lookup(self, dataset):
        assert np.allclose(dataset.metric("a"), dataset.x[:, 0] * 2)
        with pytest.raises(KeyError, match="no metric"):
            dataset.metric("c")

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError, match="expected"):
            Dataset(rng.standard_normal((5, 2)), {"m": np.zeros(4)}, Stage.SCHEMATIC)

    def test_subset(self, dataset):
        subset = dataset.subset(np.array([1, 3, 5]))
        assert subset.size == 3
        assert np.allclose(subset.x, dataset.x[[1, 3, 5]])
        assert np.allclose(subset.metric("a"), dataset.metric("a")[[1, 3, 5]])
        assert subset.stage is dataset.stage

    def test_head(self, dataset):
        head = dataset.head(4)
        assert head.size == 4
        assert np.allclose(head.x, dataset.x[:4])

    def test_head_too_large_rejected(self, dataset):
        with pytest.raises(ValueError, match="requested"):
            dataset.head(100)

    def test_caller_values_dict_not_mutated(self, rng):
        x = rng.standard_normal((4, 2))
        values = {"m": [0.0, 1.0, 2.0, 3.0]}
        data = Dataset(x, values, Stage.SCHEMATIC)
        assert isinstance(values["m"], list)
        assert data.values is not values
        assert isinstance(data.values["m"], np.ndarray)

    def test_datasets_from_shared_dict_are_independent(self, rng):
        x = rng.standard_normal((4, 2))
        values = {"m": np.arange(4.0)}
        first = Dataset(x, values, Stage.SCHEMATIC)
        second = Dataset(x, values, Stage.SCHEMATIC)
        second.values["extra"] = np.zeros(4)
        assert "extra" not in first.values
        assert "extra" not in values

    def test_subset_and_head_skip_revalidation(self, dataset, monkeypatch):
        calls = []
        original = Dataset.__post_init__

        def counting(self):
            calls.append(1)
            original(self)

        monkeypatch.setattr(Dataset, "__post_init__", counting)
        subset = dataset.subset(np.array([0, 2]))
        head = dataset.head(3)
        assert calls == []
        assert subset.size == 2 and head.size == 3
        assert subset.testbench_name == dataset.testbench_name


class TestSimulateDataset:
    def test_all_metrics_by_default(self, tiny_ro, rng):
        data = simulate_dataset(tiny_ro, Stage.SCHEMATIC, 10, rng)
        assert set(data.values) == set(tiny_ro.metrics)
        assert data.size == 10
        assert data.num_vars == tiny_ro.num_vars(Stage.SCHEMATIC)

    def test_metric_subset(self, tiny_ro, rng):
        data = simulate_dataset(tiny_ro, Stage.POST_LAYOUT, 5, rng, ["power"])
        assert set(data.values) == {"power"}

    def test_unknown_metric_rejected(self, tiny_ro, rng):
        with pytest.raises(ValueError, match="no metric"):
            simulate_dataset(tiny_ro, Stage.SCHEMATIC, 5, rng, ["iq"])

    def test_values_match_direct_simulation(self, tiny_ro, rng):
        data = simulate_dataset(tiny_ro, Stage.SCHEMATIC, 5, rng, ["power"])
        direct = tiny_ro.simulate(Stage.SCHEMATIC, data.x, "power")
        assert np.allclose(data.metric("power"), direct)

    def test_testbench_name_recorded(self, tiny_ro, rng):
        data = simulate_dataset(tiny_ro, Stage.SCHEMATIC, 3, rng)
        assert data.testbench_name == tiny_ro.name


class TestChunkedSimulation:
    def test_worker_count_invariance(self, tiny_ro):
        """workers=4 must reproduce workers=1 bit for bit (same seed)."""
        one = simulate_dataset(
            tiny_ro, Stage.POST_LAYOUT, 500,
            np.random.default_rng(7), ["frequency"], workers=1, chunk_size=64,
        )
        four = simulate_dataset(
            tiny_ro, Stage.POST_LAYOUT, 500,
            np.random.default_rng(7), ["frequency"], workers=4, chunk_size=64,
        )
        assert np.array_equal(one.x, four.x)
        assert np.array_equal(one.metric("frequency"), four.metric("frequency"))

    def test_default_chunk_size_used_with_workers(self, tiny_ro):
        from repro.montecarlo import DEFAULT_CHUNK_SIZE

        auto = simulate_dataset(
            tiny_ro, Stage.POST_LAYOUT, 300,
            np.random.default_rng(3), ["frequency"], workers=2,
        )
        explicit = simulate_dataset(
            tiny_ro, Stage.POST_LAYOUT, 300,
            np.random.default_rng(3), ["frequency"],
            workers=1, chunk_size=DEFAULT_CHUNK_SIZE,
        )
        assert np.array_equal(auto.x, explicit.x)

    def test_non_divisible_count(self, tiny_ro, rng):
        data = simulate_dataset(
            tiny_ro, Stage.SCHEMATIC, 37, rng, ["power"], workers=3, chunk_size=8
        )
        assert data.size == 37
        direct = tiny_ro.simulate(Stage.SCHEMATIC, data.x, "power")
        assert np.allclose(data.metric("power"), direct)

    def test_zero_count(self, tiny_ro, rng):
        data = simulate_dataset(
            tiny_ro, Stage.SCHEMATIC, 0, rng, ["power"], workers=2, chunk_size=8
        )
        assert data.size == 0

    def test_unchunked_path_unchanged(self, tiny_ro):
        """No workers/chunk_size keeps the original single-draw stream."""
        data = simulate_dataset(
            tiny_ro, Stage.SCHEMATIC, 20, np.random.default_rng(5), ["power"]
        )
        expected = tiny_ro.sample(Stage.SCHEMATIC, 20, np.random.default_rng(5))
        assert np.array_equal(data.x, expected)

    def test_invalid_workers_rejected(self, tiny_ro, rng):
        with pytest.raises(ValueError, match="workers"):
            simulate_dataset(tiny_ro, Stage.SCHEMATIC, 5, rng, workers=0)

    def test_invalid_chunk_size_rejected(self, tiny_ro, rng):
        with pytest.raises(ValueError, match="chunk_size"):
            simulate_dataset(tiny_ro, Stage.SCHEMATIC, 5, rng, chunk_size=0)


class TestTrainTestSplit:
    def test_deterministic_split(self, dataset):
        train, test = train_test_split(dataset, 15)
        assert train.size == 15
        assert test.size == 5
        assert np.allclose(train.x, dataset.x[:15])

    def test_shuffled_split_partitions(self, dataset, rng):
        train, test = train_test_split(dataset, 12, rng)
        assert train.size == 12 and test.size == 8
        combined = np.vstack([train.x, test.x])
        assert np.allclose(np.sort(combined, axis=0), np.sort(dataset.x, axis=0))

    def test_invalid_count_rejected(self, dataset):
        with pytest.raises(ValueError, match="train_count"):
            train_test_split(dataset, 0)
        with pytest.raises(ValueError, match="train_count"):
            train_test_split(dataset, 20)
