"""Unit tests for the Monte Carlo engine and dataset handling."""

import numpy as np
import pytest

from repro.circuits import Stage
from repro.montecarlo import Dataset, simulate_dataset, train_test_split


@pytest.fixture
def dataset(rng):
    x = rng.standard_normal((20, 3))
    return Dataset(
        x,
        {"a": x[:, 0] * 2, "b": x[:, 1] + 1},
        Stage.SCHEMATIC,
        "toy",
    )


class TestDataset:
    def test_properties(self, dataset):
        assert dataset.size == 20
        assert dataset.num_vars == 3

    def test_metric_lookup(self, dataset):
        assert np.allclose(dataset.metric("a"), dataset.x[:, 0] * 2)
        with pytest.raises(KeyError, match="no metric"):
            dataset.metric("c")

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError, match="expected"):
            Dataset(rng.standard_normal((5, 2)), {"m": np.zeros(4)}, Stage.SCHEMATIC)

    def test_subset(self, dataset):
        subset = dataset.subset(np.array([1, 3, 5]))
        assert subset.size == 3
        assert np.allclose(subset.x, dataset.x[[1, 3, 5]])
        assert np.allclose(subset.metric("a"), dataset.metric("a")[[1, 3, 5]])
        assert subset.stage is dataset.stage

    def test_head(self, dataset):
        head = dataset.head(4)
        assert head.size == 4
        assert np.allclose(head.x, dataset.x[:4])

    def test_head_too_large_rejected(self, dataset):
        with pytest.raises(ValueError, match="requested"):
            dataset.head(100)


class TestSimulateDataset:
    def test_all_metrics_by_default(self, tiny_ro, rng):
        data = simulate_dataset(tiny_ro, Stage.SCHEMATIC, 10, rng)
        assert set(data.values) == set(tiny_ro.metrics)
        assert data.size == 10
        assert data.num_vars == tiny_ro.num_vars(Stage.SCHEMATIC)

    def test_metric_subset(self, tiny_ro, rng):
        data = simulate_dataset(tiny_ro, Stage.POST_LAYOUT, 5, rng, ["power"])
        assert set(data.values) == {"power"}

    def test_unknown_metric_rejected(self, tiny_ro, rng):
        with pytest.raises(ValueError, match="no metric"):
            simulate_dataset(tiny_ro, Stage.SCHEMATIC, 5, rng, ["iq"])

    def test_values_match_direct_simulation(self, tiny_ro, rng):
        data = simulate_dataset(tiny_ro, Stage.SCHEMATIC, 5, rng, ["power"])
        direct = tiny_ro.simulate(Stage.SCHEMATIC, data.x, "power")
        assert np.allclose(data.metric("power"), direct)

    def test_testbench_name_recorded(self, tiny_ro, rng):
        data = simulate_dataset(tiny_ro, Stage.SCHEMATIC, 3, rng)
        assert data.testbench_name == tiny_ro.name


class TestTrainTestSplit:
    def test_deterministic_split(self, dataset):
        train, test = train_test_split(dataset, 15)
        assert train.size == 15
        assert test.size == 5
        assert np.allclose(train.x, dataset.x[:15])

    def test_shuffled_split_partitions(self, dataset, rng):
        train, test = train_test_split(dataset, 12, rng)
        assert train.size == 12 and test.size == 8
        combined = np.vstack([train.x, test.x])
        assert np.allclose(np.sort(combined, axis=0), np.sort(dataset.x, axis=0))

    def test_invalid_count_rejected(self, dataset):
        with pytest.raises(ValueError, match="train_count"):
            train_test_split(dataset, 0)
        with pytest.raises(ValueError, match="train_count"):
            train_test_split(dataset, 20)
