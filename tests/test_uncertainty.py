"""Unit tests for the posterior-uncertainty utilities."""

import numpy as np
import pytest

from repro.bmf import (
    coefficient_posterior_variance,
    map_estimate,
    nonzero_mean_prior,
    predictive_variance,
    zero_mean_prior,
)
from repro.bmf.priors import GaussianCoefficientPrior


@pytest.fixture
def setting(rng):
    num_samples, num_terms = 15, 40
    design = rng.standard_normal((num_samples, num_terms))
    early = rng.uniform(0.5, 2.0, num_terms) * rng.choice([-1, 1], num_terms)
    return design, early


class TestCoefficientVariance:
    def test_matches_dense_posterior(self, setting):
        """Eq. (28): Sigma = sigma0^2 (eta diag(s^-2) + G^T G)^{-1}."""
        design, early = setting
        prior = zero_mean_prior(early)
        eta, noise = 1.5, 1.5  # zero-mean: eta = sigma0^2
        variances = coefficient_posterior_variance(design, prior, eta, noise)
        dense = noise * np.linalg.inv(
            eta * np.diag(early**-2.0) + design.T @ design
        )
        assert np.allclose(variances, np.diag(dense), atol=1e-10)

    def test_bounded_by_prior_variance(self, setting):
        """Observing data can only shrink the coefficient uncertainty."""
        design, early = setting
        prior = nonzero_mean_prior(early)
        eta = 2.0
        noise = 2.0
        variances = coefficient_posterior_variance(design, prior, eta, noise)
        prior_variances = (noise / eta) * early**2
        assert np.all(variances <= prior_variances + 1e-12)

    def test_pinned_coefficients_have_zero_variance(self, setting):
        design, early = setting
        early = early.copy()
        early[5] = 0.0
        prior = zero_mean_prior(early)
        variances = coefficient_posterior_variance(design, prior, 1.0)
        assert variances[5] == 0.0
        assert np.all(variances[np.arange(40) != 5] > 0)

    def test_all_pinned(self, setting):
        design, _early = setting
        prior = GaussianCoefficientPrior(np.ones(40), np.zeros(40))
        assert np.allclose(
            coefficient_posterior_variance(design, prior, 1.0), 0.0
        )

    def test_validation(self, setting):
        design, early = setting
        with pytest.raises(ValueError, match="eta"):
            coefficient_posterior_variance(design, zero_mean_prior(early), 0.0)
        with pytest.raises(ValueError, match="columns"):
            coefficient_posterior_variance(
                design[:, :5], zero_mean_prior(early), 1.0
            )


class TestPredictiveVariance:
    def test_matches_dense_quadratic_form(self, setting, rng):
        design, early = setting
        prior = nonzero_mean_prior(early)
        eta, noise = 0.7, 1.4
        eval_design = rng.standard_normal((6, 40))
        variances = predictive_variance(design, eval_design, prior, eta, noise)
        dense_cov = noise * np.linalg.inv(
            eta * np.diag(early**-2.0) + design.T @ design
        )
        expected = np.einsum("em,mn,en->e", eval_design, dense_cov, eval_design)
        assert np.allclose(variances, expected, atol=1e-9)

    def test_shrinks_near_training_data(self, setting):
        """Variance at a training point is far below the prior variance."""
        design, early = setting
        prior = nonzero_mean_prior(early)
        eta, noise = 0.5, 0.5
        at_train = predictive_variance(design, design[:1], prior, eta, noise)
        far_away = predictive_variance(
            design, 10.0 * np.ones((1, 40)), prior, eta, noise
        )
        assert at_train[0] < 0.2 * far_away[0]

    def test_include_noise_adds_sigma0_sq(self, setting, rng):
        design, early = setting
        prior = zero_mean_prior(early)
        point = rng.standard_normal((1, 40))
        clean = predictive_variance(design, point, prior, 1.0, 2.0)
        noisy = predictive_variance(
            design, point, prior, 1.0, 2.0, include_noise=True
        )
        assert noisy[0] == pytest.approx(clean[0] + 2.0)

    def test_consistency_with_map_shift(self, setting, rng):
        """Adding one observation near a point reduces variance there."""
        design, early = setting
        prior = nonzero_mean_prior(early)
        point = rng.standard_normal((1, 40))
        before = predictive_variance(design, point, prior, 1.0)
        augmented = np.vstack([design, point])
        after = predictive_variance(augmented, point, prior, 1.0)
        assert after[0] < before[0]
