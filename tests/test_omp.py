"""Unit tests for orthogonal matching pursuit (Section II-C, ref. [13])."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.regression import OrthogonalMatchingPursuit, omp_path
from repro.regression.omp import OmpPath


def sparse_problem(rng, num_vars=60, nonzero=5, num_samples=50, noise=0.0):
    basis = OrthonormalBasis.linear(num_vars)
    truth = np.zeros(basis.size)
    support = rng.choice(np.arange(1, basis.size), nonzero, replace=False)
    truth[support] = rng.uniform(1.0, 3.0, nonzero) * rng.choice([-1, 1], nonzero)
    x = rng.standard_normal((num_samples, num_vars))
    f = basis.evaluate(truth, x)
    if noise:
        f = f + noise * rng.standard_normal(num_samples)
    return basis, truth, support, x, f


class TestOmpPath:
    def test_recovers_exact_support(self, rng):
        basis, truth, support, x, f = sparse_problem(rng)
        design = basis.design_matrix(x)
        path = omp_path(design, f, max_terms=5)
        assert set(path.selected) == set(support)

    def test_coefficients_converge_to_truth(self, rng):
        basis, truth, _support, x, f = sparse_problem(rng)
        design = basis.design_matrix(x)
        path = omp_path(design, f, max_terms=5)
        dense = path.dense_coefficients(basis.size)
        assert np.allclose(dense, truth, atol=1e-8)

    def test_residual_norms_decrease(self, rng):
        basis, _t, _s, x, f = sparse_problem(rng, noise=0.05)
        design = basis.design_matrix(x)
        path = omp_path(design, f, max_terms=10)
        norms = np.array(path.residual_norms)
        assert np.all(np.diff(norms) <= 1e-12)

    def test_residual_tolerance_stops_early(self, rng):
        basis, _t, _s, x, f = sparse_problem(rng)
        design = basis.design_matrix(x)
        path = omp_path(design, f, max_terms=40, residual_tol=1e-10)
        assert len(path.selected) <= 6  # stops right after exact recovery

    def test_max_terms_capped_by_samples(self, rng):
        design = rng.standard_normal((8, 30))
        path = omp_path(design, rng.standard_normal(8), max_terms=100)
        assert len(path.selected) <= 8

    def test_duplicate_columns_not_selected_twice(self, rng):
        """A column identical to an already-selected one must be skipped."""
        base = rng.standard_normal((20, 5))
        design = np.hstack([base, base[:, :1]])  # column 5 duplicates column 0
        target = base[:, 0] * 2.0
        path = omp_path(design, target, max_terms=6)
        assert not {0, 5}.issubset(set(path.selected))

    def test_zero_target(self, rng):
        design = rng.standard_normal((10, 8))
        path = omp_path(design, np.zeros(10), max_terms=5)
        assert path.selected == []

    def test_empty_path_dense_coefficients(self):
        path = OmpPath()
        assert np.allclose(path.dense_coefficients(7), 0.0)

    def test_dense_coefficients_at_intermediate_step(self, rng):
        basis, _t, _s, x, f = sparse_problem(rng)
        design = basis.design_matrix(x)
        path = omp_path(design, f, max_terms=5)
        dense = path.dense_coefficients(basis.size, step=1)
        assert np.count_nonzero(dense) == 2


class TestOrthogonalMatchingPursuit:
    def test_cv_selection_finds_sparse_model(self, rng):
        basis, truth, _s, x, f = sparse_problem(rng, noise=0.02)
        model = OrthogonalMatchingPursuit(basis).fit(x, f)
        x_test = rng.standard_normal((200, 60))
        error = np.linalg.norm(
            model.predict(x_test) - basis.evaluate(truth, x_test)
        ) / np.linalg.norm(basis.evaluate(truth, x_test))
        assert error < 0.1

    def test_cv_does_not_grossly_overfit(self, rng):
        """Pure-noise target: CV should keep the model very small."""
        basis = OrthonormalBasis.linear(40)
        x = rng.standard_normal((60, 40))
        f = rng.standard_normal(60)
        model = OrthogonalMatchingPursuit(basis).fit(x, f)
        assert len(model.selected_terms_) < 20

    def test_fixed_selection_uses_exact_order(self, rng):
        basis, _t, _s, x, f = sparse_problem(rng)
        model = OrthogonalMatchingPursuit(
            basis, max_terms=3, selection="fixed"
        ).fit(x, f)
        assert len(model.selected_terms_) == 3

    def test_fixed_requires_max_terms(self):
        with pytest.raises(ValueError, match="max_terms"):
            OrthogonalMatchingPursuit(OrthonormalBasis.linear(5), selection="fixed")

    def test_invalid_selection_rejected(self):
        with pytest.raises(ValueError, match="selection"):
            OrthogonalMatchingPursuit(OrthonormalBasis.linear(5), selection="best")

    def test_invalid_folds_rejected(self):
        with pytest.raises(ValueError, match="n_folds"):
            OrthogonalMatchingPursuit(OrthonormalBasis.linear(5), n_folds=1)

    def test_cv_errors_recorded(self, rng):
        basis, _t, _s, x, f = sparse_problem(rng, noise=0.05)
        model = OrthogonalMatchingPursuit(basis).fit(x, f)
        assert model.cv_errors_ is not None
        assert np.isfinite(model.cv_errors_).any()

    def test_underdetermined_regime(self, rng):
        """M >> K: the regime the method exists for.

        Greedy recovery needs K ~ O(s log M) samples -- at K=40 OMP
        genuinely fails on 300 variables (that coherence limit is why the
        paper's OMP needs ~10^3 samples); K=100 is comfortably enough.
        """
        basis, truth, _s, x, f = sparse_problem(
            rng, num_vars=300, nonzero=4, num_samples=100
        )
        model = OrthogonalMatchingPursuit(basis).fit(x, f)
        x_test = rng.standard_normal((200, 300))
        reference = basis.evaluate(truth, x_test)
        error = np.linalg.norm(model.predict(x_test) - reference)
        assert error / np.linalg.norm(reference) < 0.05

    def test_few_samples_skips_cv(self, rng):
        """With fewer than 2*n_folds samples, CV is skipped gracefully."""
        basis = OrthonormalBasis.linear(10)
        x = rng.standard_normal((6, 10))
        f = rng.standard_normal(6)
        model = OrthogonalMatchingPursuit(basis, n_folds=5).fit(x, f)
        assert model.coefficients_ is not None
