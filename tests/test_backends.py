"""Unit tests for the backend registry, dtype-keyed caching, the fused
serving kernel, and the engine's opt-in float32 serving mode."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    ContractViolationError,
    check_close,
    contracts_enabled,
)
from repro.backends import (
    Backend,
    FLOAT32_SERVING_RTOL,
    available_backends,
    backend_available,
    backend_unavailable_reason,
    describe_selection,
    get_backend,
    register_backend,
    registered_backends,
    reset_backend_selection,
    resolve_dtype,
    set_backend,
    use_backend,
)
from repro.basis import OrthonormalBasis
from repro.regression import FittedModel
from repro.runtime import DesignMatrixCache, set_design_cache
from repro.runtime.cache import design_key
from repro.runtime.metrics import metrics as runtime_metrics
from repro.serving import ModelRegistry, PredictionEngine


@pytest.fixture(autouse=True)
def _clean_selection():
    reset_backend_selection()
    yield
    reset_backend_selection()


class _NeverAvailable(Backend):
    """A registered-but-unusable backend for exercising fallback paths."""

    name = "test-unavailable"

    @classmethod
    def available(cls):
        return False

    @classmethod
    def unavailable_reason(cls):
        return "intentionally unavailable (test backend)"

    def gather_product(self, stacked, gather):  # pragma: no cover - never runs
        raise NotImplementedError

    def fused_gather_matvec(self, stacked, gather, coefficients):  # pragma: no cover
        raise NotImplementedError

    def matmul_t(self, left, right):  # pragma: no cover - never runs
        raise NotImplementedError

    def matvec(self, matrix, vector):  # pragma: no cover - never runs
        raise NotImplementedError

    def triangular_solve(self, lower, rhs, trans=False):  # pragma: no cover
        raise NotImplementedError


register_backend(_NeverAvailable)


class TestRegistry:
    def test_numpy_is_registered_and_available(self):
        assert "numpy" in registered_backends()
        assert "numpy" in available_backends()
        assert backend_available("numpy")
        assert get_backend("numpy").name == "numpy"

    def test_optional_backends_are_registered_even_if_missing(self):
        names = registered_backends()
        assert "numba" in names
        assert "torch" in names

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("no-such-backend")
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("no-such-backend")

    def test_unavailable_backend_falls_back_and_counts(self):
        assert not backend_available("test-unavailable")
        assert "unavailable" in backend_unavailable_reason("test-unavailable")
        before = runtime_metrics.counters().get("backends.fallbacks", 0)
        assert get_backend("test-unavailable").name == "numpy"
        after = runtime_metrics.counters().get("backends.fallbacks", 0)
        assert after == before + 1

    def test_set_backend_to_unavailable_resolves_to_numpy(self):
        before = runtime_metrics.counters().get("backends.fallbacks", 0)
        set_backend("test-unavailable")
        assert get_backend().name == "numpy"
        after = runtime_metrics.counters().get("backends.fallbacks", 0)
        assert after == before + 1
        description = describe_selection()
        assert description["requested"] == "test-unavailable"
        assert description["active"] == "numpy"
        assert description["fell_back"] is True

    def test_use_backend_restores_previous_selection(self):
        assert get_backend().name == "numpy"
        with use_backend("test-unavailable"):
            assert describe_selection()["requested"] == "test-unavailable"
        assert describe_selection()["requested"] is None

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "test-unavailable")
        reset_backend_selection()
        assert get_backend().name == "numpy"  # graceful fallback
        assert describe_selection()["environment"] == "test-unavailable"
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        reset_backend_selection()
        assert get_backend().name == "numpy"
        assert describe_selection()["fell_back"] is False

    def test_selection_is_cached_between_calls(self):
        first = get_backend()
        assert get_backend() is first

    def test_resolve_dtype(self):
        assert resolve_dtype(None) == np.dtype(np.float64)
        assert resolve_dtype(np.float32) == np.dtype(np.float32)
        with pytest.raises(ValueError, match="unsupported hot-path dtype"):
            resolve_dtype(np.int32)


class TestDesignKey:
    def test_dtype_always_participates(self):
        x = np.zeros((3, 2))
        k64 = design_key("tok", x, None)
        k32 = design_key("tok", x, None, dtype=np.float32)
        assert k64 != k32

    def test_canonical_backend_untagged_others_tagged(self):
        x = np.zeros((3, 2))
        base = design_key("tok", x, None)
        assert design_key("tok", x, None, backend="numpy") == base
        tagged = design_key("tok", x, None, backend="torch")
        assert tagged != base
        assert tagged[-1] == "torch"

    def test_new_keys_cannot_collide_with_legacy_triples(self):
        x = np.zeros((3, 2))
        legacy = ("tok", (x.shape, "digest"), None)
        assert len(design_key("tok", x, None)) > len(legacy)


class TestDtypeKeyedCache:
    def test_float32_and_float64_entries_never_collide_or_cross_serve(self):
        basis = OrthonormalBasis.total_degree(3, 3)
        x = np.random.default_rng(0).standard_normal((40, 3))
        cache = DesignMatrixCache(min_result_cells=1)
        previous = set_design_cache(cache)
        try:
            g64 = basis.design_matrix(x)
            g32 = basis.design_matrix(x, dtype=np.float32)
            assert len(cache) == 2  # distinct entries, no collision
            assert g64.dtype == np.dtype(np.float64)
            assert g32.dtype == np.dtype(np.float32)
            # Hits serve the dtype their key promises.
            again64 = basis.design_matrix(x)
            again32 = basis.design_matrix(x, dtype=np.float32)
            assert again64 is g64  # cache hit: same read-only entry
            assert again32 is g32
            assert cache.stats()["hits"] == 2
        finally:
            set_design_cache(previous)

    def test_hit_revalidation_rejects_wrong_dtype_entry(self):
        if not contracts_enabled():
            pytest.skip("contracts disabled; hit re-validation is a no-op")
        cache = DesignMatrixCache(min_result_cells=1)
        key = ("k",)
        first = cache.get_or_compute(
            key, lambda: np.ones((4, 4)), dtype=np.dtype(np.float64)
        )
        assert first.dtype == np.dtype(np.float64)
        # A hit demanding float32 self-heals: evict and recompute.
        healed = cache.get_or_compute(
            key,
            lambda: np.ones((4, 4), dtype=np.float32),
            dtype=np.dtype(np.float32),
        )
        assert healed.dtype == np.dtype(np.float32)
        assert cache.stats()["evictions"] == 1


class TestFusedPredict:
    def test_streaming_path_matches_unfused(self):
        basis = OrthonormalBasis.total_degree(4, 3)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((17, 4))
        coefficients = rng.standard_normal(basis.size)
        previous = set_design_cache(None)  # force the no-intermediate path
        try:
            fused = basis.fused_predict(x, coefficients)
        finally:
            set_design_cache(previous)
        unfused = basis.design_matrix(x) @ coefficients
        assert fused.shape == (17,)
        np.testing.assert_allclose(fused, unfused, rtol=1e-12, atol=1e-14)

    def test_cached_path_is_bitwise_equal_to_matvec_on_cached_matrix(self):
        basis = OrthonormalBasis.total_degree(3, 3)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((30, 3))
        coefficients = rng.standard_normal(basis.size)
        cache = DesignMatrixCache(min_result_cells=1)
        previous = set_design_cache(cache)
        try:
            first = basis.fused_predict(x, coefficients)  # miss: materialize
            assert cache.stats()["misses"] == 1
            second = basis.fused_predict(x, coefficients)  # hit: plain matvec
            assert cache.stats()["hits"] == 1
            design = basis.design_matrix(x)  # same entry
            assert cache.stats()["hits"] == 2
        finally:
            set_design_cache(previous)
        assert np.array_equal(first, second)
        assert np.array_equal(second, design @ coefficients)

    def test_counts_fused_predicts_metric(self):
        basis = OrthonormalBasis.linear(3)
        before = runtime_metrics.counters().get("backends.fused_predicts", 0)
        basis.fused_predict(np.zeros((2, 3)), np.zeros(basis.size))
        after = runtime_metrics.counters().get("backends.fused_predicts", 0)
        assert after == before + 1

    def test_rejects_wrong_coefficient_shape(self):
        basis = OrthonormalBasis.linear(3)
        with pytest.raises(ValueError, match="coefficients"):
            basis.fused_predict(np.zeros((2, 3)), np.zeros(basis.size + 1))


def _publish_model(registry, name="m", num_vars=3, degree=2, seed=7):
    basis = OrthonormalBasis.total_degree(num_vars, degree)
    rng = np.random.default_rng(seed)
    coefficients = rng.standard_normal(basis.size)
    registry.publish(name, FittedModel(basis, coefficients))
    return basis, coefficients


class TestEngineFloat32Serving:
    def test_rejects_unsupported_serving_dtype(self):
        with pytest.raises(ValueError, match="unsupported hot-path dtype"):
            PredictionEngine(ModelRegistry(), serving_dtype=np.int64)

    def test_rejects_non_positive_rtol(self):
        with pytest.raises(ValueError, match="float32_rtol"):
            PredictionEngine(ModelRegistry(), float32_rtol=0.0)

    def test_float32_predictions_match_float64_within_bound(self):
        registry = ModelRegistry()
        basis, coefficients = _publish_model(registry)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((24, 3))
        with PredictionEngine(registry) as engine64:
            reference = engine64.predict("m", x)
        with PredictionEngine(registry, serving_dtype=np.float32) as engine32:
            served = engine32.predict("m", x)
        assert reference.dtype == np.dtype(np.float64)
        assert served.dtype == np.dtype(np.float32)
        check_close(
            served, reference, rtol=FLOAT32_SERVING_RTOL, name="engine float32"
        )

    def test_float32_counters_increment(self):
        if not contracts_enabled():
            pytest.skip("contracts disabled; bound checks are off")
        registry = ModelRegistry()
        _publish_model(registry)
        before = runtime_metrics.counters()
        with PredictionEngine(registry, serving_dtype=np.float32) as engine:
            engine.predict("m", np.zeros((4, 3)))
        after = runtime_metrics.counters()
        assert after.get("backends.float32_serves", 0) > before.get(
            "backends.float32_serves", 0
        )
        assert after.get("backends.float32_bound_checks", 0) > before.get(
            "backends.float32_bound_checks", 0
        )

    def test_bound_violation_is_a_caller_error_and_spares_the_breaker(self):
        if not contracts_enabled():
            pytest.skip("contracts disabled; bound checks are off")
        registry = ModelRegistry()
        _publish_model(registry)
        # An absurdly tight bound makes any float32 batch violate it.
        with PredictionEngine(
            registry, serving_dtype=np.float32, float32_rtol=1e-300
        ) as engine:
            with pytest.raises(ContractViolationError):
                engine.predict("m", np.ones((4, 3)))
            stats = engine.stats()
        # Caller-error classification: no retries, breaker never tripped.
        assert stats["retries"] == 0
        assert all(
            state["state"] == "closed" for state in stats["breaker"].values()
        )
