"""Unit tests for the FusionProblem stage bridge."""

import numpy as np
import pytest

from repro.circuits import FusionProblem, Stage


class TestFusionProblem:
    def test_bases_match_stage_dimensions(self, tiny_ro):
        problem = FusionProblem(tiny_ro, "frequency")
        assert problem.early_basis.num_vars == tiny_ro.num_vars(Stage.SCHEMATIC)
        assert problem.late_basis.num_vars == tiny_ro.num_vars(Stage.POST_LAYOUT)

    def test_unknown_metric_rejected(self, tiny_ro):
        with pytest.raises(ValueError, match="no metric"):
            FusionProblem(tiny_ro, "psrr")

    def test_missing_indices_are_parasitic_terms(self, tiny_ro):
        problem = FusionProblem(tiny_ro, "power")
        missing = problem.missing_indices()
        expected_count = tiny_ro.num_vars(Stage.POST_LAYOUT) - tiny_ro.num_vars(
            Stage.SCHEMATIC
        )
        assert len(missing) == expected_count
        assert missing[0] == problem.early_basis.size
        assert missing[-1] == problem.late_basis.size - 1

    def test_alignment_embeds_and_zero_pads(self, tiny_ro, rng):
        problem = FusionProblem(tiny_ro, "power")
        alpha = rng.standard_normal(problem.early_basis.size)
        aligned = problem.align_early_coefficients(alpha)
        assert aligned.shape == (problem.late_basis.size,)
        assert np.allclose(aligned[: alpha.size], alpha)
        assert np.allclose(aligned[alpha.size :], 0.0)

    def test_alignment_rejects_wrong_length(self, tiny_ro):
        problem = FusionProblem(tiny_ro, "power")
        with pytest.raises(ValueError, match="early coefficients"):
            problem.align_early_coefficients(np.zeros(3))

    @pytest.mark.parametrize("method", ["omp", "ridge"])
    def test_fit_early_model_is_accurate(self, tiny_ro, rng, method):
        problem = FusionProblem(tiny_ro, "frequency")
        alpha = problem.fit_early_model(600, rng, method=method)
        assert alpha.shape == (problem.early_basis.size,)
        # The fitted schematic model should predict schematic data well.
        x = tiny_ro.sample(Stage.SCHEMATIC, 200, rng)
        f = tiny_ro.simulate(Stage.SCHEMATIC, x, "frequency")
        prediction = problem.early_basis.evaluate(alpha, x)
        error = np.linalg.norm(prediction - f) / np.linalg.norm(f)
        assert error < 0.02

    def test_fit_early_model_bad_method_rejected(self, tiny_ro, rng):
        problem = FusionProblem(tiny_ro, "power")
        with pytest.raises(ValueError, match="method"):
            problem.fit_early_model(50, rng, method="lasso")

    def test_invalid_degree_rejected(self, tiny_ro):
        with pytest.raises(ValueError, match="degree"):
            FusionProblem(tiny_ro, "power", degree=0)


class TestQuadraticFusionProblem:
    """degree=2: alignment is no longer a prefix embedding."""

    @pytest.fixture
    def problem(self):
        from repro.circuits import FiveTransistorOta

        return FusionProblem(FiveTransistorOta(), "offset_voltage", degree=2)

    def test_basis_sizes(self, problem):
        assert problem.early_basis.size == 28  # C(8, 2)
        assert problem.late_basis.size == 45  # C(10, 2)

    def test_alignment_preserves_multi_indices(self, problem, rng):
        alpha = rng.standard_normal(problem.early_basis.size)
        aligned = problem.align_early_coefficients(alpha)
        for m, index in enumerate(problem.early_basis.indices):
            late_position = problem.late_basis.index_of(index)
            assert aligned[late_position] == alpha[m]

    def test_missing_terms_touch_parasitics_only(self, problem):
        num_schematic = problem.testbench.num_vars(Stage.SCHEMATIC)
        for m in problem.missing_indices():
            index = problem.late_basis.indices[m]
            assert any(var >= num_schematic for var, _deg in index)

    def test_shared_plus_missing_covers_basis(self, problem):
        assert problem.num_shared_terms + len(problem.missing_indices()) == (
            problem.late_basis.size
        )
