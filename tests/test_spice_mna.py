"""Unit tests for the MNA assembly layer (stamps and conventions)."""

import numpy as np
import pytest

from repro.spice import Circuit, MnaSystem, Resistor, VoltageSource


@pytest.fixture
def system():
    circuit = Circuit("stamp-test")
    circuit.add(VoltageSource("V1", "a", "0", dc=1.0))
    circuit.add(Resistor("R1", "a", "b", 1e3))
    circuit.add(Resistor("R2", "b", "0", 1e3))
    return MnaSystem(circuit)


class TestStructure:
    def test_unknown_count(self, system):
        # 2 nodes + 1 voltage-source branch current.
        assert system.size == 3
        assert system.num_nodes == 2

    def test_node_index_includes_ground_alias(self, system):
        assert system.node_index["0"] == -1
        assert system.node_index["a"] == 0
        assert system.node_index["b"] == 1

    def test_voltage_of_ground_is_zero(self, system):
        assert system.voltage_of("0", np.array([5.0, 6.0, 7.0])) == 0.0
        assert system.voltage_of("a", np.array([5.0, 6.0, 7.0])) == 5.0

    def test_unknown_node_rejected(self, system):
        with pytest.raises(KeyError):
            system.voltage_of("zz", np.zeros(3))

    def test_clear(self, system):
        system.add_conductance("a", "b", 1.0)
        system.clear()
        assert np.all(system.matrix == 0)
        assert np.all(system.rhs == 0)


class TestStamps:
    def test_conductance_stamp_symmetric(self, system):
        system.add_conductance("a", "b", 2.0)
        matrix = system.matrix[:2, :2]
        assert matrix[0, 0] == 2.0 and matrix[1, 1] == 2.0
        assert matrix[0, 1] == -2.0 and matrix[1, 0] == -2.0

    def test_conductance_to_ground_stamps_diagonal_only(self, system):
        system.add_conductance("a", "0", 3.0)
        assert system.matrix[0, 0] == 3.0
        assert system.matrix[0, 1] == 0.0

    def test_current_injection_sign(self, system):
        system.add_current("a", 1e-3)
        assert system.rhs[0] == 1e-3
        system.add_current("0", 5.0)  # into ground: discarded
        assert np.all(system.rhs[1:] == 0)

    def test_transconductance_stamp(self, system):
        system.add_transconductance("a", "0", "b", "0", 1e-3)
        # i(a->0) = gm * v(b): row a gets +gm at column b.
        assert system.matrix[0, 1] == 1e-3

    def test_voltage_source_rows(self, system):
        system.add_voltage_source("a", "0", branch=0, value=1.5)
        row = system.branch_index(0)
        assert system.matrix[0, row] == 1.0
        assert system.matrix[row, 0] == 1.0
        assert system.rhs[row] == 1.5

    def test_gmin_touches_node_diagonal_only(self, system):
        system.add_gmin(1e-9)
        assert system.matrix[0, 0] == 1e-9
        assert system.matrix[1, 1] == 1e-9
        assert system.matrix[2, 2] == 0.0  # branch rows untouched

    def test_assembled_system_solves_divider(self, system):
        # Stamp manually and check against the analytic divider.
        system.add_conductance("a", "b", 1e-3)
        system.add_conductance("b", "0", 1e-3)
        system.add_voltage_source("a", "0", branch=0, value=1.0)
        solution = system.solve()
        assert system.voltage_of("b", solution) == pytest.approx(0.5)
