"""Smoke tests at the paper's dimensionality (construction + evaluation).

The benchmarks default to small circuits; these tests make sure the
paper-scale instances (RO ~7.2k variables, SRAM ~63k) actually build,
sample, and simulate without shape or memory bugs -- a handful of samples
only, so they stay fast.
"""

import numpy as np
import pytest

from repro.circuits import RingOscillator, SramReadPath, Stage


class TestPaperScaleRo:
    @pytest.fixture(scope="class")
    def ro(self):
        return RingOscillator.paper_scale()

    def test_dimensionality(self, ro):
        assert ro.kit.params_per_device == 40
        assert 6500 <= ro.num_vars(Stage.POST_LAYOUT) <= 8000

    def test_simulation_runs(self, ro):
        rng = np.random.default_rng(9)
        x = ro.sample(Stage.POST_LAYOUT, 5, rng)
        for metric in ro.metrics:
            values = ro.simulate(Stage.POST_LAYOUT, x, metric)
            assert values.shape == (5,)
            assert np.all(np.isfinite(values))

    def test_schematic_stage_consistent(self, ro):
        rng = np.random.default_rng(10)
        x = ro.sample(Stage.SCHEMATIC, 3, rng)
        f = ro.simulate(Stage.SCHEMATIC, x, "frequency")
        assert np.all(f > 0)


class TestPaperScaleSram:
    @pytest.fixture(scope="class")
    def sram(self):
        return SramReadPath.paper_scale()

    def test_dimensionality(self, sram):
        assert 55_000 <= sram.num_vars(Stage.POST_LAYOUT) <= 70_000

    def test_simulation_runs(self, sram):
        rng = np.random.default_rng(11)
        x = sram.sample(Stage.POST_LAYOUT, 3, rng)
        delay = sram.simulate(Stage.POST_LAYOUT, x, "read_delay")
        assert delay.shape == (3,)
        assert np.all(delay > 0)

    def test_fusion_problem_builds(self, sram):
        """The 63k-term linear basis and its alignment map stay tractable."""
        from repro.circuits import FusionProblem

        problem = FusionProblem(sram, "read_delay")
        assert problem.late_basis.size == sram.num_vars(Stage.POST_LAYOUT) + 1
        missing = problem.missing_indices()
        assert len(missing) == sram._num_parasitics
