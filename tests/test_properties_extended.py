"""Additional property-based tests for the newer algorithm modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmf import KernelMapSolver, log_evidence, nonzero_mean_prior
from repro.regression import lars_path, omp_path, sparse_bayesian_fit
from repro.spice import parse_value


class TestLarsProperties:
    @given(
        st.integers(min_value=8, max_value=30),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_training_residual_never_increases(self, num_samples, num_terms, seed):
        """Each LAR step moves mu toward the target along an ascent
        direction, so the training residual is non-increasing."""
        rng = np.random.default_rng(seed)
        design = rng.standard_normal((num_samples, num_terms))
        target = rng.standard_normal(num_samples)
        path = lars_path(design, target, num_terms)
        previous = np.linalg.norm(target)
        for step in range(len(path.coefficients_per_step)):
            dense = path.dense_coefficients(num_terms, step=step)
            residual = np.linalg.norm(target - design @ dense)
            assert residual <= previous + 1e-9
            previous = residual

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_lars_and_omp_agree_on_orthogonal_designs(self, seed):
        """With exactly orthogonal columns both methods pick the same
        support (ordering by absolute correlation)."""
        rng = np.random.default_rng(seed)
        q, _ = np.linalg.qr(rng.standard_normal((20, 6)))
        truth = np.zeros(6)
        truth[rng.integers(0, 6)] = 2.0
        truth[rng.integers(0, 6)] += -1.0
        target = q @ truth
        if np.linalg.norm(target) < 1e-9:
            return
        nonzero = int(np.count_nonzero(truth))
        lars = lars_path(q, target, nonzero)
        omp = omp_path(q, target, nonzero)
        assert set(lars.selected) == set(omp.selected)


class TestSparseBayesianProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_noiseless_single_term_recovered(self, seed):
        rng = np.random.default_rng(seed)
        design = rng.standard_normal((30, 15))
        index = int(rng.integers(0, 15))
        target = 2.5 * design[:, index]
        mean, _alpha, _noise = sparse_bayesian_fit(design, target)
        assert int(np.argmax(np.abs(mean))) == index
        assert mean[index] == pytest.approx(2.5, rel=0.05)


class TestEvidenceProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_evidence_finite_over_wide_grids(self, seed):
        rng = np.random.default_rng(seed)
        design = rng.standard_normal((15, 40))
        early = rng.uniform(0.5, 2.0, 40)
        target = design @ early + 0.1 * rng.standard_normal(15)
        solver = KernelMapSolver(design, target, nonzero_mean_prior(early))
        grid = np.geomspace(1e-8, 1e8, 9)
        values = log_evidence(solver, grid)
        assert np.all(np.isfinite(values))


class TestParserValueProperties:
    @given(st.floats(min_value=1e-12, max_value=1e12))
    @settings(max_examples=50)
    def test_plain_float_round_trip(self, value):
        assert parse_value(repr(value)) == pytest.approx(value)

    @given(
        st.floats(min_value=0.001, max_value=999.0),
        st.sampled_from(["f", "p", "n", "u", "m", "k", "meg", "g", "t"]),
    )
    @settings(max_examples=50)
    def test_suffix_scaling(self, base, suffix):
        scale = {
            "f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6, "m": 1e-3,
            "k": 1e3, "meg": 1e6, "g": 1e9, "t": 1e12,
        }[suffix]
        token = f"{base!r}{suffix}"
        assert parse_value(token) == pytest.approx(base * scale)
