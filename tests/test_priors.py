"""Unit tests for the BMF prior definitions (Section III-A, IV-B)."""

import numpy as np
import pytest

from repro.bmf import (
    GaussianCoefficientPrior,
    nonzero_mean_prior,
    uninformative_prior,
    zero_mean_prior,
)


class TestZeroMeanPrior:
    def test_mean_is_zero(self):
        prior = zero_mean_prior(np.array([1.0, -2.0, 0.5]))
        assert np.allclose(prior.mean, 0.0)

    def test_scale_is_magnitude_eq16(self):
        """Eq. (16): sigma_m = |alpha_E,m|."""
        alpha = np.array([1.0, -2.0, 0.5, 0.0])
        prior = zero_mean_prior(alpha)
        assert np.allclose(prior.scale, np.abs(alpha))

    def test_name(self):
        assert zero_mean_prior(np.ones(2)).name == "zero-mean"

    def test_zero_coefficient_pins(self):
        prior = zero_mean_prior(np.array([1.0, 0.0]))
        assert list(prior.pinned_mask()) == [False, True]


class TestNonzeroMeanPrior:
    def test_mean_is_early_coefficients(self):
        alpha = np.array([1.0, -2.0, 0.5])
        prior = nonzero_mean_prior(alpha)
        assert np.allclose(prior.mean, alpha)

    def test_scale_proportional_to_magnitude_eq19(self):
        alpha = np.array([1.0, -2.0, 0.5])
        prior = nonzero_mean_prior(alpha)
        assert np.allclose(prior.scale, np.abs(alpha))

    def test_independent_copy(self):
        alpha = np.array([1.0, 2.0])
        prior = nonzero_mean_prior(alpha)
        alpha[0] = 99.0
        assert prior.mean[0] == 1.0


class TestUninformativePrior:
    def test_all_missing(self):
        prior = uninformative_prior(5)
        assert prior.missing_mask().all()
        assert np.allclose(prior.mean, 0.0)


class TestValidation:
    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GaussianCoefficientPrior(np.zeros(2), np.array([1.0, -1.0]))

    def test_nan_scale_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GaussianCoefficientPrior(np.zeros(2), np.array([1.0, np.nan]))

    def test_infinite_mean_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            GaussianCoefficientPrior(np.array([np.inf, 0.0]), np.ones(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            GaussianCoefficientPrior(np.zeros(3), np.ones(2))

    def test_infinite_scale_allowed(self):
        prior = GaussianCoefficientPrior(np.zeros(2), np.array([1.0, np.inf]))
        assert list(prior.missing_mask()) == [False, True]


class TestMissingKnowledge:
    def test_with_missing_marks_scale_infinite(self):
        prior = nonzero_mean_prior(np.array([1.0, 2.0, 3.0]))
        updated = prior.with_missing([1])
        assert np.isinf(updated.scale[1])
        assert updated.mean[1] == 0.0
        # Original untouched (priors are immutable values).
        assert prior.scale[1] == 2.0

    def test_extended_appends_missing(self):
        prior = zero_mean_prior(np.array([1.0, 2.0]))
        extended = prior.extended(3)
        assert extended.size == 5
        assert extended.missing_mask().sum() == 3
        assert np.allclose(extended.scale[:2], [1.0, 2.0])

    def test_extended_zero_is_noop(self):
        prior = zero_mean_prior(np.array([1.0]))
        assert prior.extended(0).size == 1

    def test_extended_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            zero_mean_prior(np.ones(2)).extended(-1)


class TestEffectiveScale:
    def test_no_missing_returns_original(self):
        prior = zero_mean_prior(np.array([1.0, 2.0]))
        assert prior.effective_scale() is prior.scale

    def test_default_missing_scale_is_1e3_of_max(self):
        prior = zero_mean_prior(np.array([1.0, 5.0])).with_missing([0])
        effective = prior.effective_scale()
        assert effective[0] == pytest.approx(5e3)
        assert effective[1] == 5.0

    def test_explicit_missing_scale(self):
        prior = uninformative_prior(3)
        assert np.allclose(prior.effective_scale(42.0), 42.0)

    def test_all_missing_defaults_to_1e3(self):
        prior = uninformative_prior(2)
        assert np.allclose(prior.effective_scale(), 1e3)


class TestResolveMissingScale:
    def test_none_when_no_missing_entries(self):
        prior = zero_mean_prior(np.array([1.0, 2.0]))
        assert prior.resolve_missing_scale() is None
        assert prior.resolve_missing_scale(42.0) is None

    def test_default_tracks_largest_finite_scale(self):
        prior = zero_mean_prior(np.array([1.0, 5.0])).with_missing([0])
        assert prior.resolve_missing_scale() == pytest.approx(5e3)

    def test_explicit_value_passed_through(self):
        prior = uninformative_prior(3)
        assert prior.resolve_missing_scale(42.0) == 42.0

    def test_all_missing_defaults_to_1e3(self):
        assert uninformative_prior(2).resolve_missing_scale() == pytest.approx(1e3)

    def test_effective_scale_consistent_with_resolution(self):
        prior = zero_mean_prior(np.array([0.5, 3.0, 1.0])).with_missing([1])
        resolved = prior.resolve_missing_scale()
        assert prior.effective_scale()[1] == pytest.approx(resolved)
