"""Unit tests for the MNA-simulated 5T OTA testbench."""

import numpy as np
import pytest

from repro.circuits import FiveTransistorOta, Stage


@pytest.fixture(scope="module")
def ota():
    return FiveTransistorOta()


class TestConstruction:
    def test_variable_counts(self, ota):
        assert ota.num_vars(Stage.SCHEMATIC) == 6
        assert ota.num_vars(Stage.POST_LAYOUT) == 8

    def test_metrics(self, ota):
        assert ota.metrics == (
            "offset_voltage",
            "dc_gain",
            "unity_gain_bandwidth",
        )


class TestNominalPoint:
    def test_gain_matches_hand_analysis(self, ota):
        """A = gm1 (ro2 || ro4) at the nominal bias."""
        x = np.zeros((1, 6))
        gain = ota.simulate(Stage.SCHEMATIC, x, "dc_gain")[0]
        half = ota.tail_current / 2
        gm = ota.kp_input * np.sqrt(2 * half / ota.kp_input)
        r_out = 1.0 / (2 * ota.lambda_ * half)  # ro2 || ro4
        expected = gm * r_out
        assert gain == pytest.approx(expected, rel=0.25)

    def test_bandwidth_matches_gm_over_cl(self, ota):
        """Follower -3 dB frequency ~= gm / (2 pi C_L)."""
        x = np.zeros((1, 6))
        bandwidth = ota.simulate(
            Stage.SCHEMATIC, x, "unity_gain_bandwidth"
        )[0]
        half = ota.tail_current / 2
        gm = ota.kp_input * np.sqrt(2 * half / ota.kp_input)
        expected = gm / (2 * np.pi * ota.load_cap)
        assert bandwidth == pytest.approx(expected, rel=0.3)

    def test_nominal_offset_is_small(self, ota):
        x = np.zeros((1, 6))
        offset = ota.simulate(Stage.SCHEMATIC, x, "offset_voltage")[0]
        assert abs(offset) < 0.03  # systematic offset only


class TestVariation:
    def test_offset_antisymmetric_in_input_pair(self, ota):
        x = np.zeros((3, 6))
        x[1, 0] = 2.0  # M1 threshold up
        x[2, 1] = 2.0  # M2 threshold up
        offsets = ota.simulate(Stage.SCHEMATIC, x, "offset_voltage")
        assert (offsets[1] - offsets[0]) * (offsets[2] - offsets[0]) < 0

    def test_bandwidth_decreases_with_load_cap(self, ota):
        x = np.zeros((2, 6))
        x[1, 4] = 3.0  # +15% load cap
        bandwidths = ota.simulate(Stage.SCHEMATIC, x, "unity_gain_bandwidth")
        assert bandwidths[1] < bandwidths[0]

    def test_bandwidth_increases_with_tail_current(self, ota):
        x = np.zeros((2, 6))
        x[1, 5] = 3.0  # +9% tail current -> more gm
        bandwidths = ota.simulate(Stage.SCHEMATIC, x, "unity_gain_bandwidth")
        assert bandwidths[1] > bandwidths[0]

    def test_postlayout_is_slower(self, ota, rng):
        x_post = ota.sample(Stage.POST_LAYOUT, 10, rng)
        x_sch = x_post[:, :6]
        post = ota.simulate(Stage.POST_LAYOUT, x_post, "unity_gain_bandwidth")
        sch = ota.simulate(Stage.SCHEMATIC, x_sch, "unity_gain_bandwidth")
        assert post.mean() < sch.mean()

    def test_offset_spread(self, ota, rng):
        x = ota.sample(Stage.SCHEMATIC, 60, rng)
        offsets = ota.simulate(Stage.SCHEMATIC, x, "offset_voltage")
        # Input-pair mismatch ~ sqrt(2) * sigma_vth, plus mirror term.
        assert 0.5 * ota.sigma_vth < offsets.std() < 4 * ota.sigma_vth

    def test_unknown_metric_rejected(self, ota):
        with pytest.raises(ValueError, match="unknown metric"):
            ota.simulate(Stage.SCHEMATIC, np.zeros((1, 6)), "psrr")
