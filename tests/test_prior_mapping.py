"""Unit tests for multifinger prior mapping (Section IV-A)."""

import math

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.bmf import FingerMap, map_prior_coefficients


class TestFingerMap:
    def test_variable_counts(self):
        fmap = FingerMap((2, 3, 1))
        assert fmap.num_early_vars == 3
        assert fmap.num_late_vars == 6

    def test_offsets(self):
        fmap = FingerMap((2, 3, 1))
        assert list(fmap.offsets()) == [0, 2, 5]

    def test_fingers_of(self):
        fmap = FingerMap((2, 3, 1))
        assert list(fmap.fingers_of(1)) == [2, 3, 4]
        assert list(fmap.fingers_of(2)) == [5]

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            FingerMap((2, 0))

    def test_project_samples_normalization(self, rng):
        """x_r = sum_t x_{r,t} / sqrt(W) stays standard normal."""
        fmap = FingerMap((4, 2))
        late = rng.standard_normal((50_000, 6))
        early = fmap.project_samples(late)
        assert early.shape == (50_000, 2)
        assert np.allclose(early.std(axis=0), 1.0, atol=0.02)

    def test_project_single_sample(self):
        fmap = FingerMap((2,))
        out = fmap.project_samples(np.array([1.0, 1.0]))
        assert out[0, 0] == pytest.approx(math.sqrt(2))

    def test_project_wrong_width_rejected(self, rng):
        fmap = FingerMap((2, 2))
        with pytest.raises(ValueError, match="late variables"):
            fmap.project_samples(rng.standard_normal((3, 5)))


class TestLinearMapping:
    """The paper's eq. (36)-(37) differential-pair scenario."""

    def test_diffpair_example(self):
        early_basis = OrthonormalBasis.linear(2)
        alpha = np.array([0.1, 2.0, -2.0])  # const, x1, x2
        mapping = map_prior_coefficients(early_basis, alpha, FingerMap((2, 2)))
        assert mapping.late_basis.size == 5  # const + 4 fingers
        # eq. (49): each finger gets alpha / sqrt(2).
        assert mapping.beta[0] == pytest.approx(0.1)
        assert np.allclose(mapping.beta[1:3], 2.0 / math.sqrt(2))
        assert np.allclose(mapping.beta[3:5], -2.0 / math.sqrt(2))

    def test_groups_structure(self):
        early_basis = OrthonormalBasis.linear(2)
        mapping = map_prior_coefficients(
            early_basis, np.ones(3), FingerMap((2, 3))
        )
        assert mapping.groups[0] == [0]  # constant
        assert len(mapping.groups[1]) == 2
        assert len(mapping.groups[2]) == 3

    def test_single_finger_is_identity(self, rng):
        early_basis = OrthonormalBasis.linear(3)
        alpha = rng.standard_normal(4)
        mapping = map_prior_coefficients(early_basis, alpha, FingerMap((1, 1, 1)))
        assert mapping.late_basis.indices == early_basis.indices
        assert np.allclose(mapping.beta, alpha)

    def test_variance_preserved_eq45(self, rng):
        """Eq. (45): the mapped model captures the same variability.

        Evaluate the early model on projected samples and the mapped model
        on the finger samples -- with equal per-finger split they agree
        exactly for linear bases.
        """
        early_basis = OrthonormalBasis.linear(2)
        alpha = np.array([1.0, 2.0, -0.7])
        fmap = FingerMap((3, 2))
        mapping = map_prior_coefficients(early_basis, alpha, fmap)
        late_samples = rng.standard_normal((100, 5))
        early_values = early_basis.evaluate(alpha, fmap.project_samples(late_samples))
        mapped_values = mapping.late_basis.evaluate(mapping.beta, late_samples)
        assert np.allclose(early_values, mapped_values)


class TestHigherOrderMapping:
    def test_quadratic_multiplicity(self):
        """A degree-2 factor in W fingers maps to W(W+1)/2 functions."""
        early_basis = OrthonormalBasis(1, [((0, 2),)])
        mapping = map_prior_coefficients(
            early_basis, np.array([1.0]), FingerMap((3,))
        )
        assert mapping.late_basis.size == 6  # 3 squares + 3 cross terms
        assert np.allclose(mapping.beta, 1.0 / math.sqrt(6))

    def test_cross_term_mapping(self):
        """x1 * x2 with 2 fingers each -> 4 cross products."""
        early_basis = OrthonormalBasis(2, [((0, 1), (1, 1))])
        mapping = map_prior_coefficients(
            early_basis, np.array([2.0]), FingerMap((2, 2))
        )
        assert mapping.late_basis.size == 4
        assert np.allclose(mapping.beta, 1.0)  # 2 / sqrt(4)

    def test_mapped_set_is_permutation_invariant(self):
        """Swapping two fingers of one device maps the basis set onto itself
        (the paper's permutation-invariance property, eqs. 40-43)."""
        early_basis = OrthonormalBasis.total_degree(1, 2)
        mapping = map_prior_coefficients(
            early_basis, np.ones(early_basis.size), FingerMap((2,))
        )
        swapped = set()
        swap = {0: 1, 1: 0}
        for index in mapping.late_basis.indices:
            swapped.add(tuple(sorted((swap[v], d) for v, d in index)))
        assert swapped == set(mapping.late_basis.indices)


class TestValidation:
    def test_coefficient_count_mismatch_rejected(self):
        early_basis = OrthonormalBasis.linear(2)
        with pytest.raises(ValueError, match="early coefficients"):
            map_prior_coefficients(early_basis, np.ones(5), FingerMap((2, 2)))

    def test_finger_map_size_mismatch_rejected(self):
        early_basis = OrthonormalBasis.linear(3)
        with pytest.raises(ValueError, match="variables"):
            map_prior_coefficients(early_basis, np.ones(4), FingerMap((2, 2)))
