"""Unit tests for the elastic-net coordinate-descent baseline."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.regression import ElasticNetRegressor, coordinate_descent
from repro.regression.elastic_net import _soft_threshold


class TestSoftThreshold:
    def test_above_threshold(self):
        assert _soft_threshold(3.0, 1.0) == 2.0

    def test_below_negative_threshold(self):
        assert _soft_threshold(-3.0, 1.0) == -2.0

    def test_inside_dead_zone(self):
        assert _soft_threshold(0.5, 1.0) == 0.0
        assert _soft_threshold(-0.5, 1.0) == 0.0


class TestCoordinateDescent:
    def test_pure_l2_matches_ridge_closed_form(self, rng):
        design = rng.standard_normal((30, 6))
        target = rng.standard_normal(30)
        penalty = 0.5
        num_samples = design.shape[0]
        solution = coordinate_descent(
            design, target, penalty, l1_ratio=0.0, tol=1e-12, max_sweeps=5000
        )
        # Objective: 1/(2K)||f - Ga||^2 + penalty/2 ||a||^2
        reference = np.linalg.solve(
            design.T @ design / num_samples + penalty * np.eye(6),
            design.T @ target / num_samples,
        )
        assert np.allclose(solution, reference, atol=1e-8)

    def test_large_l1_penalty_zeroes_everything(self, rng):
        design = rng.standard_normal((20, 8))
        target = rng.standard_normal(20)
        solution = coordinate_descent(design, target, penalty=1e6, l1_ratio=1.0)
        assert np.allclose(solution, 0.0)

    def test_lasso_recovers_sparse_signal(self, rng):
        design = rng.standard_normal((80, 40))
        truth = np.zeros(40)
        truth[[3, 17, 29]] = [2.0, -1.5, 1.0]
        target = design @ truth
        solution = coordinate_descent(
            design, target, penalty=1e-3, l1_ratio=1.0, tol=1e-10, max_sweeps=2000
        )
        assert set(np.flatnonzero(np.abs(solution) > 0.1)) == {3, 17, 29}

    def test_warm_start_converges_same_place(self, rng):
        design = rng.standard_normal((25, 10))
        target = rng.standard_normal(25)
        cold = coordinate_descent(design, target, 0.1, tol=1e-12, max_sweeps=5000)
        warm = coordinate_descent(
            design, target, 0.1, tol=1e-12, max_sweeps=5000,
            warm_start=rng.standard_normal(10),
        )
        assert np.allclose(cold, warm, atol=1e-6)

    def test_invalid_penalty_rejected(self, rng):
        with pytest.raises(ValueError, match="positive"):
            coordinate_descent(np.ones((3, 2)), np.ones(3), penalty=0.0)

    def test_invalid_l1_ratio_rejected(self):
        with pytest.raises(ValueError, match="l1_ratio"):
            coordinate_descent(np.ones((3, 2)), np.ones(3), 1.0, l1_ratio=1.5)

    def test_zero_column_ignored(self, rng):
        design = rng.standard_normal((10, 3))
        design[:, 1] = 0.0
        solution = coordinate_descent(design, rng.standard_normal(10), 0.1)
        assert solution[1] == 0.0


class TestElasticNetRegressor:
    def test_recovers_sparse_model(self, rng):
        basis = OrthonormalBasis.linear(50)
        truth = np.zeros(basis.size)
        truth[[0, 5, 20]] = [3.0, 1.5, -2.0]
        x = rng.standard_normal((120, 50))
        f = basis.evaluate(truth, x) + 0.01 * rng.standard_normal(120)
        model = ElasticNetRegressor(basis, n_folds=3, num_penalties=8).fit(x, f)
        x_test = rng.standard_normal((300, 50))
        reference = basis.evaluate(truth, x_test)
        error = np.linalg.norm(model.predict(x_test) - reference)
        assert error / np.linalg.norm(reference) < 0.05

    def test_explicit_penalty_grid(self, rng):
        basis = OrthonormalBasis.linear(10)
        x = rng.standard_normal((40, 10))
        f = rng.standard_normal(40)
        model = ElasticNetRegressor(basis, penalties=[0.01, 0.1, 1.0], n_folds=2)
        model.fit(x, f)
        assert model.chosen_penalty_ in (0.01, 0.1, 1.0)

    def test_too_few_samples_skips_cv(self, rng):
        basis = OrthonormalBasis.linear(8)
        x = rng.standard_normal((5, 8))
        f = rng.standard_normal(5)
        model = ElasticNetRegressor(basis, n_folds=5).fit(x, f)
        assert model.chosen_penalty_ is not None
