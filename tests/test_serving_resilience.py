"""Resilience tests for the serving layer (docs/faults.md).

Covers the deadline-drop regression (a pre-expired burst must cost zero
design-matrix calls), retry/breaker/degradation wiring, serve-last-good
registry semantics, and shutdown/drain behavior.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.faults import (
    CircuitBreaker,
    Deadline,
    DeadlineExpiredError,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    inject,
)
from repro.regression import FittedModel
from repro.runtime.metrics import metrics
from repro.serving import (
    EngineStoppedError,
    ModelEvaluationError,
    ModelRegistry,
    PredictionEngine,
    PublishRejectedError,
)


@pytest.fixture(scope="module")
def basis():
    return OrthonormalBasis.total_degree(3, 2)


def constant_model(basis, value: float) -> FittedModel:
    constant = float(basis.design_matrix(np.zeros((1, basis.num_vars)))[0, 0])
    coefficients = np.zeros(basis.size)
    coefficients[0] = value / constant
    return FittedModel(basis, coefficients)


def overflow_model(basis) -> FittedModel:
    """Finite coefficients whose prediction at ``x = 0`` overflows to inf.

    Survives registry validation (coefficients are finite) but evaluating
    at the origin accumulates ``float_max * sum(|design_row|) > float_max``
    and raises :class:`ModelEvaluationError` -- the post-publish poisoning
    scenario.
    """
    design_row = basis.design_matrix(np.zeros((1, basis.num_vars)))[0]
    coefficients = np.finfo(float).max * np.sign(design_row)
    return FittedModel(basis, coefficients)


@pytest.fixture
def registry(basis):
    registry = ModelRegistry()
    registry.publish("m", constant_model(basis, 1.0))
    return registry


def counter(name: str) -> int:
    return metrics.counters().get(name, 0)


# ----------------------------------------------------------------------
# Deadline propagation (the predict-timeout ghost-request regression)
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_pre_expired_burst_costs_zero_design_matrix_calls(
        self, basis, registry
    ):
        """Regression: a caller that already gave up must not be evaluated.

        ``predict`` used to submit without a deadline, so a timed-out
        caller's request was still batched and cost a ``design_matrix``
        call.  Now the dispatcher drops expired requests before grouping.
        """
        x = np.zeros((1, basis.num_vars))
        dead = Deadline.after(-1.0)
        with PredictionEngine(registry) as engine:
            calls_before = counter("design_matrix.calls")
            expired_before = counter("serving.expired")
            futures = [
                engine.submit("m", x, deadline=dead) for _ in range(16)
            ]
            for future in futures:
                with pytest.raises(DeadlineExpiredError):
                    future.result(timeout=5.0)
            calls_after = counter("design_matrix.calls")
        assert calls_after - calls_before == 0
        assert counter("serving.expired") - expired_before == 16
        assert engine.stats()["expired"] == 16

    def test_predict_propagates_timeout_as_deadline(self, basis, registry):
        # predict() must attach its caller timeout to the request, so the
        # dispatcher can drop it once the caller has given up.
        with PredictionEngine(registry) as engine:
            value = engine.predict("m", np.zeros(basis.num_vars), timeout=5.0)
            assert value.shape == (1,)
            assert value[0] == pytest.approx(1.0)

    def test_timeout_and_deadline_mutually_exclusive(self, basis, registry):
        with PredictionEngine(registry) as engine:
            with pytest.raises(ValueError, match="timeout or deadline"):
                engine.submit(
                    "m",
                    np.zeros(basis.num_vars),
                    timeout=1.0,
                    deadline=Deadline.after(1.0),
                )

    def test_default_timeout_applies_to_submissions(self, basis, registry):
        engine = PredictionEngine(registry, default_timeout_seconds=30.0)
        with engine:
            future = engine.submit("m", np.zeros(basis.num_vars))
            assert future.result(timeout=5.0).shape == (1,)
        with pytest.raises(ValueError, match="default_timeout_seconds"):
            PredictionEngine(registry, default_timeout_seconds=0.0)

    def test_fresh_deadline_is_served(self, basis, registry):
        with PredictionEngine(registry) as engine:
            future = engine.submit(
                "m", np.zeros(basis.num_vars), timeout=30.0
            )
            assert future.result(timeout=5.0)[0] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Retry under injected evaluation faults
# ----------------------------------------------------------------------
class TestRetries:
    def test_transient_evaluation_fault_is_retried(self, basis, registry):
        with PredictionEngine(registry) as engine:
            retries_before = counter("serving.retries")
            with inject(FaultPlan.fail_once("engine.evaluate")):
                value = engine.predict("m", np.zeros(basis.num_vars))
            assert value[0] == pytest.approx(1.0)
        assert counter("serving.retries") - retries_before >= 1
        assert engine.stats()["retries"] >= 1

    def test_caller_error_is_not_retried_and_spares_breaker(
        self, basis, registry
    ):
        breaker = CircuitBreaker(failure_threshold=1)
        with PredictionEngine(registry, breaker=breaker) as engine:
            bad = np.zeros((1, basis.num_vars + 2))  # wrong width
            with pytest.raises(ValueError):
                engine.predict("m", bad)
            # A caller bug must not poison the model's circuit.
            key = registry.current("m").key
            assert breaker.state(key) == "closed"
            good = engine.predict("m", np.zeros(basis.num_vars))
            assert good[0] == pytest.approx(1.0)

    def test_exhausted_retries_fail_the_request(self, basis, registry):
        policy = RetryPolicy(
            max_attempts=2,
            base_seconds=0.001,
            cap_seconds=0.002,
            non_retryable=(TypeError, ValueError, KeyError, ModelEvaluationError),
        )
        engine = PredictionEngine(
            registry, retry_policy=policy, breaker=None, serve_last_good=False
        )
        failed_before = counter("serving.failed")
        with engine:
            with inject(FaultPlan.fail_every("engine.evaluate", 1)):
                with pytest.raises(InjectedFault):
                    engine.predict("m", np.zeros(basis.num_vars))
        assert counter("serving.failed") - failed_before == 1


# ----------------------------------------------------------------------
# Breaker + serve-last-good degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_poisoned_version_degrades_to_last_good(self, basis):
        registry = ModelRegistry()
        registry.publish("m", constant_model(basis, 1.0))
        registry.publish("m", overflow_model(basis))
        breaker = CircuitBreaker(failure_threshold=1)
        degraded_before = counter("serving.degraded")
        with PredictionEngine(registry, breaker=breaker) as engine:
            value = engine.predict("m", np.zeros(basis.num_vars))
            # Answered from the previous good version, one version stale.
            assert value[0] == pytest.approx(1.0)
            assert engine.stats()["max_version_lag"] == 1
            assert engine.stats()["degraded"] >= 1
        assert counter("serving.degraded") - degraded_before >= 1
        # The breaker opened on the bad version, so it was quarantined and
        # the registry's active pointer stepped back to the good one.
        assert registry.is_bad("m", 2)
        assert registry.current("m").version == 1

    def test_requests_after_quarantine_serve_last_good_directly(self, basis):
        registry = ModelRegistry()
        registry.publish("m", constant_model(basis, 7.0))
        registry.publish("m", overflow_model(basis))
        breaker = CircuitBreaker(failure_threshold=1)
        with PredictionEngine(registry, breaker=breaker) as engine:
            first = engine.predict("m", np.zeros(basis.num_vars))
            second = engine.predict("m", np.zeros(basis.num_vars))
        assert first[0] == pytest.approx(7.0)
        assert second[0] == pytest.approx(7.0)
        # Second request resolved the stepped-back version: no extra lag.
        assert engine.stats()["max_version_lag"] <= 1

    def test_no_good_fallback_fails_requests(self, basis):
        registry = ModelRegistry()
        registry.publish("m", overflow_model(basis))
        breaker = CircuitBreaker(failure_threshold=1)
        with PredictionEngine(registry, breaker=breaker) as engine:
            with pytest.raises(ModelEvaluationError):
                engine.predict("m", np.zeros(basis.num_vars))
        assert engine.stats()["failed"] >= 1

    def test_breaker_stats_visible_in_engine_stats(self, basis):
        registry = ModelRegistry()
        registry.publish("m", overflow_model(basis))
        breaker = CircuitBreaker(failure_threshold=1)
        with PredictionEngine(registry, breaker=breaker) as engine:
            with pytest.raises(ModelEvaluationError):
                engine.predict("m", np.zeros(basis.num_vars))
            snapshot = engine.stats()["breaker"]
        key = registry.current("m").key
        assert snapshot[key]["state"] == "open"

    def test_disabled_breaker_reports_empty_snapshot(self, basis, registry):
        with PredictionEngine(registry, breaker=None) as engine:
            engine.predict("m", np.zeros(basis.num_vars))
            assert engine.stats()["breaker"] == {}


# ----------------------------------------------------------------------
# Registry serve-last-good semantics
# ----------------------------------------------------------------------
class TestRegistryLastGood:
    def test_injected_publish_fault_preserves_current(self, basis):
        registry = ModelRegistry()
        registry.publish("m", constant_model(basis, 1.0))
        rejected_before = counter("serving.rejected_publishes")
        with inject(FaultPlan.fail_once("registry.publish")):
            with pytest.raises(PublishRejectedError):
                registry.publish("m", constant_model(basis, 2.0))
        assert registry.current("m").version == 1
        assert counter("serving.rejected_publishes") - rejected_before == 1
        # Registry heals: the next publish goes through.
        registry.publish("m", constant_model(basis, 3.0))
        assert registry.current("m").version == 2

    def test_non_finite_publish_rejected(self, basis):
        registry = ModelRegistry()
        registry.publish("m", constant_model(basis, 1.0))
        poisoned = FittedModel(basis, np.full(basis.size, np.nan))
        with pytest.raises(PublishRejectedError, match="non-finite"):
            registry.publish("m", poisoned)
        assert registry.current("m").version == 1

    def test_validation_can_be_disabled(self, basis):
        registry = ModelRegistry(validate=False)
        poisoned = FittedModel(basis, np.full(basis.size, np.nan))
        registry.publish("m", poisoned)
        assert registry.current("m").version == 1

    def test_mark_bad_steps_active_back(self, basis):
        registry = ModelRegistry()
        registry.publish("m", constant_model(basis, 1.0))
        registry.publish("m", constant_model(basis, 2.0))
        record = registry.mark_bad("m", 2)
        assert record is not None and record.version == 1
        assert registry.current("m").version == 1
        assert registry.is_bad("m", 2)
        assert not registry.is_bad("m", 1)

    def test_mark_bad_with_no_good_version_keeps_pointer(self, basis):
        registry = ModelRegistry()
        registry.publish("m", constant_model(basis, 1.0))
        record = registry.mark_bad("m", 1)
        # A possibly-bad model beats no model.
        assert record is not None and record.version == 1
        assert registry.current("m").version == 1

    def test_mark_bad_unknown_name_returns_none(self):
        assert ModelRegistry().mark_bad("ghost", 1) is None

    def test_mark_bad_is_idempotent(self, basis):
        registry = ModelRegistry()
        registry.publish("m", constant_model(basis, 1.0))
        registry.publish("m", constant_model(basis, 2.0))
        marked_before = counter("serving.marked_bad")
        registry.mark_bad("m", 2)
        registry.mark_bad("m", 2)
        assert counter("serving.marked_bad") - marked_before == 1

    def test_previous_good_skips_quarantined(self, basis):
        registry = ModelRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.publish("m", constant_model(basis, value))
        registry.mark_bad("m", 2)
        fallback = registry.previous_good("m", before_version=3)
        assert fallback is not None and fallback.version == 1

    def test_previous_good_default_is_before_active(self, basis):
        registry = ModelRegistry()
        registry.publish("m", constant_model(basis, 1.0))
        registry.publish("m", constant_model(basis, 2.0))
        fallback = registry.previous_good("m")
        assert fallback is not None and fallback.version == 1

    def test_previous_good_unknown_name(self):
        assert ModelRegistry().previous_good("ghost") is None

    def test_last_good_prefers_newest_good(self, basis):
        registry = ModelRegistry()
        registry.publish("m", constant_model(basis, 1.0))
        registry.publish("m", constant_model(basis, 2.0))
        registry.mark_bad("m", 2)
        record = registry.last_good("m")
        assert record is not None and record.version == 1

    def test_serve_last_good_disabled_keeps_bad_active(self, basis):
        registry = ModelRegistry(serve_last_good=False)
        registry.publish("m", constant_model(basis, 1.0))
        registry.publish("m", constant_model(basis, 2.0))
        registry.mark_bad("m", 2)
        assert registry.current("m").version == 2

    def test_prune_discards_bad_bookkeeping(self, basis):
        registry = ModelRegistry(max_versions=2)
        registry.publish("m", constant_model(basis, 1.0))
        registry.mark_bad("m", 1)
        registry.publish("m", constant_model(basis, 2.0))
        registry.publish("m", constant_model(basis, 3.0))  # prunes v1
        versions = [record.version for record in registry.versions("m")]
        assert versions == [2, 3]
        assert not registry.is_bad("m", 1)


# ----------------------------------------------------------------------
# Shutdown / drain
# ----------------------------------------------------------------------
class TestShutdown:
    @pytest.mark.parametrize(
        "scenario", ["close_while_queued", "close_while_evaluating", "double_close"]
    )
    def test_close_never_hangs_or_orphans(self, basis, registry, scenario):
        engine = PredictionEngine(registry, workers=1)
        engine.start()
        x = np.zeros(basis.num_vars)
        futures = []
        if scenario == "close_while_queued":
            # Stall the single worker so later requests pile up queued.
            with inject(FaultPlan.latency("engine.evaluate", 0.05)):
                futures = [engine.submit("m", x) for _ in range(8)]
                engine.close()
        elif scenario == "close_while_evaluating":
            with inject(FaultPlan.latency("engine.evaluate", 0.05)):
                futures = [engine.submit("m", x)]
                time.sleep(0.01)  # let the dispatcher pick it up
                engine.close()
        else:
            futures = [engine.submit("m", x)]
            engine.close()
            engine.close()  # idempotent
        assert not engine.running
        # Every future resolves: either with a value (flushed) or with
        # EngineStoppedError (failed fast) -- never left hanging.
        for future in futures:
            try:
                value = future.result(timeout=5.0)
            except EngineStoppedError:
                continue
            assert value.shape == (1,)

    def test_submit_after_close_raises(self, basis, registry):
        engine = PredictionEngine(registry)
        engine.start()
        engine.close()
        with pytest.raises(EngineStoppedError):
            engine.submit("m", np.zeros(basis.num_vars))

    def test_close_before_start_is_noop(self, registry):
        engine = PredictionEngine(registry)
        engine.close()  # never started; must not raise
        assert not engine.running

    def test_no_dispatcher_thread_survives_close(self, basis, registry):
        engine = PredictionEngine(registry)
        engine.start()
        engine.predict("m", np.zeros(basis.num_vars))
        engine.close()
        lingering = [
            thread
            for thread in threading.enumerate()
            if thread.name.startswith("repro-serve")
        ]
        assert lingering == []

    def test_shutdown_drops_are_counted(self, basis, registry):
        engine = PredictionEngine(registry, workers=1)
        engine.start()
        drops_before = counter("serving.shutdown_drops")
        with inject(FaultPlan.latency("engine.evaluate", 0.05)):
            futures = [
                engine.submit("m", np.zeros(basis.num_vars)) for _ in range(8)
            ]
            engine.close()
        resolved_as_drop = 0
        for future in futures:
            try:
                future.result(timeout=5.0)
            except EngineStoppedError:
                resolved_as_drop += 1
        assert counter("serving.shutdown_drops") - drops_before == resolved_as_drop
