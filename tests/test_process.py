"""Unit tests for the process-variation substrate (space + PDK)."""

import numpy as np
import pytest

from repro.process import PHYSICAL_DELTAS, ProcessKit, ProcessSpace, VariationVariable


class TestVariationVariable:
    def test_defaults(self):
        var = VariationVariable("x0")
        assert var.kind == "mismatch"
        assert var.device is None

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            VariationVariable("x0", kind="global")


class TestProcessSpace:
    def test_add_and_lookup(self):
        space = ProcessSpace()
        index = space.add(VariationVariable("a"))
        assert index == 0
        assert space.index_of("a") == 0

    def test_duplicate_name_rejected(self):
        space = ProcessSpace([VariationVariable("a")])
        with pytest.raises(ValueError, match="duplicate"):
            space.add(VariationVariable("a"))

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="no variation variable"):
            ProcessSpace().index_of("ghost")

    def test_add_block(self):
        space = ProcessSpace()
        block = space.add_block("dev.m", 4, kind="mismatch", device="dev")
        assert list(block) == [0, 1, 2, 3]
        assert space.size == 4
        assert space.variables[2].name == "dev.m2"

    def test_indices_of_kind(self):
        space = ProcessSpace(
            [
                VariationVariable("g0", kind="interdie"),
                VariationVariable("m0", kind="mismatch"),
                VariationVariable("p0", kind="parasitic"),
                VariationVariable("m1", kind="mismatch"),
            ]
        )
        assert list(space.indices_of_kind("mismatch")) == [1, 3]
        assert list(space.indices_of_kind("interdie")) == [0]
        with pytest.raises(ValueError, match="kind"):
            space.indices_of_kind("wibble")

    def test_indices_of_device(self):
        space = ProcessSpace(
            [
                VariationVariable("a", device="m1"),
                VariationVariable("b", device="m2"),
                VariationVariable("c", device="m1"),
            ]
        )
        assert list(space.indices_of_device("m1")) == [0, 2]

    def test_extended_is_a_copy(self):
        base = ProcessSpace([VariationVariable("a")])
        extended = base.extended([VariationVariable("b")])
        assert base.size == 1
        assert extended.size == 2
        assert extended.index_of("a") == 0

    def test_sampling_shape_and_distribution(self, rng):
        space = ProcessSpace([VariationVariable(f"v{i}") for i in range(6)])
        samples = space.sample(50_000, rng)
        assert samples.shape == (50_000, 6)
        assert np.allclose(samples.mean(axis=0), 0.0, atol=0.03)
        assert np.allclose(samples.std(axis=0), 1.0, atol=0.03)

    def test_negative_sample_count_rejected(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            ProcessSpace().sample(-1, rng)


class TestProcessKit:
    def test_projections_unit_norm(self):
        kit = ProcessKit(params_per_device=10, interdie_params=7)
        for delta in PHYSICAL_DELTAS:
            assert np.linalg.norm(kit.mismatch_projection(delta)) == pytest.approx(1.0)
            assert np.linalg.norm(kit.interdie_projection(delta)) == pytest.approx(1.0)
            assert kit.mismatch_projection(delta).shape == (10,)
            assert kit.interdie_projection(delta).shape == (7,)

    def test_projections_mutually_orthogonal(self):
        """Physical deltas are independent principal components: pushing the
        raw variables along the vth direction must not leak into cap/beta."""
        kit = ProcessKit(params_per_device=12, interdie_params=6)
        for accessor in (kit.mismatch_projection, kit.interdie_projection):
            for i, a in enumerate(PHYSICAL_DELTAS):
                for b in PHYSICAL_DELTAS[i + 1 :]:
                    assert abs(accessor(a) @ accessor(b)) < 1e-10

    def test_deterministic_given_seed(self):
        a = ProcessKit(seed=5)
        b = ProcessKit(seed=5)
        assert np.allclose(a.mismatch_projection("vth"), b.mismatch_projection("vth"))

    def test_different_seeds_differ(self):
        a = ProcessKit(seed=5)
        b = ProcessKit(seed=6)
        assert not np.allclose(
            a.mismatch_projection("vth"), b.mismatch_projection("vth")
        )

    def test_sigma_accessors(self):
        kit = ProcessKit(sigma_vth_mm=0.02, sigma_beta_g=0.03)
        assert kit.mismatch_sigma("vth") == 0.02
        assert kit.interdie_sigma("beta") == 0.03

    def test_unknown_delta_rejected(self):
        kit = ProcessKit()
        with pytest.raises(ValueError, match="delta"):
            kit.mismatch_sigma("mobility")

    def test_thermal_voltage(self):
        kit = ProcessKit(temperature=300.0)
        assert kit.thermal_voltage == pytest.approx(0.02585, rel=1e-3)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError, match="params_per_device"):
            ProcessKit(params_per_device=0)
        with pytest.raises(ValueError, match="interdie_params"):
            ProcessKit(interdie_params=0)
