"""Sharded, replicated serving tier (`repro.serving.sharding`).

Covers consistent-hash ring placement, the journal follower's
tail/skip/corrupt/resync behavior, publish-time synchronous replication,
failover routing with warm replicas, beyond-replication-factor backfill
from the store, and the kill/rebalance accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import OrthonormalBasis, total_degree_index_set
from repro.runtime.metrics import metrics
from repro.serving import (
    JournalFollower,
    ModelRegistry,
    ShardDeadError,
    ShardRouter,
)
from repro.store import ModelStore

NUM_VARS = 3


def _counter(name):
    return metrics.counters().get(name, 0)


def make_basis():
    return OrthonormalBasis(NUM_VARS, total_degree_index_set(NUM_VARS, 1))


def make_model(seed=0):
    from repro.regression import FittedModel

    basis = make_basis()
    coeffs = np.random.default_rng(seed).normal(size=len(basis.indices))
    return FittedModel(basis, coeffs)


@pytest.fixture
def store(tmp_path):
    return ModelStore(tmp_path, use_fsync=False)


def make_router(store, **kwargs):
    kwargs.setdefault("num_shards", 3)
    kwargs.setdefault("replication_factor", 2)
    kwargs.setdefault("engine_kwargs", {"workers": 1, "max_delay_seconds": 0.0})
    return ShardRouter(store, **kwargs)


class TestRingPlacement:
    def test_preference_is_a_permutation_of_all_shards(self, store):
        router = make_router(store, num_shards=4)
        for name in ("power", "delay", "gain", "offset", "model-0007"):
            preference = router.preference(name)
            assert sorted(preference) == [0, 1, 2, 3]
            assert router.primary(name) == preference[0]
            assert router.replicas(name) == preference[:2]

    def test_placement_is_deterministic_across_routers(self, store, tmp_path):
        first = make_router(store)
        second = make_router(ModelStore(tmp_path / "other", use_fsync=False))
        names = [f"model-{i:04d}" for i in range(32)]
        assert [first.preference(n) for n in names] == [
            second.preference(n) for n in names
        ]

    def test_keys_spread_over_shards(self, store):
        router = make_router(store, num_shards=3)
        homes = {router.primary(f"model-{i:04d}") for i in range(64)}
        assert homes == {0, 1, 2}  # 64 keys never all land on one shard

    def test_replication_factor_clamped_to_shard_count(self, store):
        router = make_router(store, num_shards=2, replication_factor=5)
        assert router.replication_factor == 2
        assert len(router.replicas("power")) == 2

    def test_constructor_validation(self, store):
        with pytest.raises(ValueError, match="num_shards"):
            ShardRouter(store, num_shards=0)
        with pytest.raises(ValueError, match="replication_factor"):
            ShardRouter(store, replication_factor=0)
        with pytest.raises(ValueError, match="virtual_nodes"):
            ShardRouter(store, virtual_nodes=0)


class TestJournalFollower:
    def test_tail_applies_new_entries_idempotently(self, store):
        primary = ModelRegistry(store=store)
        replica = ModelRegistry()
        follower = JournalFollower(store, replica)
        primary.publish("power", make_model(seed=1))
        primary.publish("power", make_model(seed=2))
        before = _counter("serving.shard.replica_applied")
        assert follower.poll() == 2
        assert _counter("serving.shard.replica_applied") - before == 2
        assert follower.poll() == 0  # offset advanced: nothing new
        assert follower.lag() == 0
        # The replica is bitwise comparable to the primary.
        assert replica.snapshot() == primary.snapshot()
        assert replica.current("power").version == 2

    def test_should_replicate_filters_names(self, store):
        primary = ModelRegistry(store=store)
        replica = ModelRegistry()
        follower = JournalFollower(
            store, replica, should_replicate=lambda name: name == "power"
        )
        primary.publish("power", make_model(seed=1))
        primary.publish("delay", make_model(seed=2))
        assert follower.poll() == 1
        assert replica.names() == ("power",)
        assert follower.offset == 2  # filtered entries still consumed

    def test_already_held_versions_skipped(self, store):
        registry = ModelRegistry(store=store)
        follower = JournalFollower(store, registry)
        registry.publish("power", make_model())
        before = _counter("serving.shard.replica_skipped")
        assert follower.poll() == 0  # the publisher already holds v1
        assert _counter("serving.shard.replica_skipped") - before == 1

    def test_corrupt_record_counted_and_skipped(self, store):
        primary = ModelRegistry(store=store)
        replica = ModelRegistry()
        follower = JournalFollower(store, replica)
        primary.publish("power", make_model(seed=1))
        primary.publish("power", make_model(seed=2))
        path = store.records_dir / store.record_filename("power", 2)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        before = _counter("serving.shard.replica_corrupt")
        assert follower.poll() == 1  # v1 applied, v2 corrupt
        assert _counter("serving.shard.replica_corrupt") - before == 1
        assert replica.current("power").version == 1

    def test_resync_bootstraps_fresh_registry(self, store):
        primary = ModelRegistry(store=store)
        primary.publish("power", make_model(seed=1))
        primary.publish("delay", make_model(seed=2))
        follower = JournalFollower(store, ModelRegistry())
        assert follower.resync() == 2
        assert follower.registry.snapshot() == primary.snapshot()
        assert follower.lag() == 0  # offset jumped to the journal end
        # Incremental tailing resumes after the bootstrap.
        primary.publish("power", make_model(seed=3))
        assert follower.poll() == 1

    def test_resync_refuses_populated_registry(self, store):
        registry = ModelRegistry(store=store)
        registry.publish("power", make_model())
        follower = JournalFollower(store, registry)
        with pytest.raises(RuntimeError, match="fresh"):
            follower.resync()


class TestReplicationAndRouting:
    def test_publish_replicates_synchronously(self, store):
        with make_router(store) as router:
            router.publish("power", make_model())
            replicas = router.replicas("power")
            for shard_id in range(router.num_shards):
                held = "power" in router.shard(shard_id).registry
                assert held == (shard_id in replicas)

    def test_predict_serves_from_primary(self, store):
        basis = make_basis()
        coefficients = np.zeros(len(basis.indices))
        coefficients[0] = 2.0
        from repro.regression import FittedModel

        with make_router(store) as router:
            router.publish("power", FittedModel(basis, coefficients))
            x = np.zeros(NUM_VARS)
            expected = coefficients[0] * basis.design_matrix(x[None, :])[0, 0]
            assert router.predict("power", x) == pytest.approx(expected)

    def test_unknown_name_raises_keyerror(self, store):
        with make_router(store) as router:
            with pytest.raises(KeyError, match="no model published"):
                router.submit("ghost", np.zeros(NUM_VARS))

    def test_failover_routes_to_warm_replica(self, store):
        with make_router(store) as router:
            router.publish("power", make_model())
            primary, standby = router.replicas("power")
            routes_before = _counter("serving.shard.failover_routes")
            backfills_before = _counter("serving.shard.backfills")
            assert router.kill_shard(primary) == 1
            # The standby already replicated the model at publish time:
            # failover serves it warm, no backfill, no refit.
            result = router.predict("power", np.zeros(NUM_VARS))
            assert result.shape == (1,)
            assert router.engine_for("power") is router.shard(standby).engine
            assert _counter("serving.shard.failover_routes") - routes_before >= 1
            assert _counter("serving.shard.backfills") - backfills_before == 0

    def test_backfill_past_the_replica_set(self, store):
        with make_router(store, num_shards=3, replication_factor=1) as router:
            router.publish("power", make_model())
            primary = router.primary("power")
            survivor = router.preference("power")[1]
            assert "power" not in router.shard(survivor).registry
            router.kill_shard(primary)
            before = _counter("serving.shard.backfills")
            result = router.predict("power", np.zeros(NUM_VARS))
            assert result.shape == (1,)
            assert _counter("serving.shard.backfills") - before == 1
            # The survivor now holds a warm replica: no second backfill.
            router.predict("power", np.zeros(NUM_VARS))
            assert _counter("serving.shard.backfills") - before == 1

    def test_all_replicas_dead_raises(self, store):
        with make_router(store, num_shards=2) as router:
            router.publish("power", make_model())
            router.kill_shard(0)
            router.kill_shard(1)
            with pytest.raises(ShardDeadError, match="dead"):
                router.submit("power", np.zeros(NUM_VARS))

    def test_publish_after_failover_replicates_to_successor(self, store):
        with make_router(store, num_shards=3, replication_factor=2) as router:
            router.publish("power", make_model(seed=1))
            primary = router.primary("power")
            router.kill_shard(primary)
            # Replication duty follows the failover: the next publish
            # lands on the two *live* successors.
            router.publish("power", make_model(seed=2))
            live = [s for s in router.preference("power") if s != primary]
            for shard_id in live[:2]:
                assert router.shard(shard_id).registry.current(
                    "power"
                ).version == 2


class TestKillAndRebalance:
    def test_kill_counts_names_routed_to_the_dead_shard(self, store):
        with make_router(store, num_shards=3) as router:
            names = [f"model-{i:04d}" for i in range(12)]
            for name in names:
                router.publish(name, make_model())
            victim = router.primary(names[0])
            owned = sum(1 for n in names if router.primary(n) == victim)
            failovers_before = _counter("serving.shard.failovers")
            assert router.kill_shard(victim) == owned
            assert _counter("serving.shard.failovers") - failovers_before == 1
            assert victim not in router.alive_shards()
            stats = router.stats()
            assert stats["failovers"] == 1
            assert stats["rebalanced_keys"] == owned
            assert victim not in stats["shards"]

    def test_kill_is_idempotent(self, store):
        with make_router(store) as router:
            router.publish("power", make_model())
            victim = router.primary("power")
            first = router.kill_shard(victim)
            assert first >= 1
            assert router.kill_shard(victim) == 0  # already dead: no-op
            assert router.stats()["failovers"] == 1

    def test_second_kill_rebalances_onto_third_shard(self, store):
        with make_router(store, num_shards=3, replication_factor=2) as router:
            router.publish("power", make_model())
            preference = router.preference("power")
            router.kill_shard(preference[0])
            router.kill_shard(preference[1])
            # Both ring replicas are gone: the third shard backfills from
            # the store and keeps serving.
            result = router.predict("power", np.zeros(NUM_VARS))
            assert result.shape == (1,)
            assert router.engine_for("power") is router.shard(
                preference[2]
            ).engine

    def test_all_requests_answered_across_a_kill(self, store):
        with make_router(store, num_shards=3) as router:
            names = [f"model-{i:04d}" for i in range(6)]
            for name in names:
                router.publish(name, make_model())
            rng = np.random.default_rng(5)
            answered = 0
            for index in range(60):
                if index == 30:
                    router.kill_shard(router.primary(names[0]))
                name = names[int(rng.integers(len(names)))]
                x = rng.normal(size=NUM_VARS)
                future = router.submit(name, x)
                assert future.result(timeout=10.0).shape == (1,)
                answered += 1
            assert answered == 60
            assert router.max_version_lag() == 0


class TestIntrospection:
    def test_stats_shape(self, store):
        with make_router(store) as router:
            router.publish("power", make_model())
            stats = router.stats()
            assert stats["num_shards"] == 3
            assert stats["replication_factor"] == 2
            assert stats["alive_shards"] == (0, 1, 2)
            assert stats["names"] == 1
            assert set(stats["shards"]) == {0, 1, 2}
            for shard_stats in stats["shards"].values():
                assert "max_version_lag" in shard_stats

    def test_names_and_placement(self, store):
        with make_router(store) as router:
            router.publish("power", make_model())
            router.publish("delay", make_model())
            assert router.names() == ("power", "delay")
            placement = router.placement()
            assert set(placement) == {"power", "delay"}
            assert placement["power"] == router.replicas("power")

    def test_catch_up_sweeps_all_followers(self, store):
        # Publish through a *separate* registry on the shared store: no
        # router shard has seen the journal entries yet.
        outside = ModelRegistry(store=store)
        outside.publish("power", make_model())
        with make_router(store) as router:
            assert max(router.follower_lag().values()) == 1
            applied = router.catch_up()
            assert applied == len(router.replicas("power"))
            assert max(router.follower_lag().values()) == 0


class TestRollingRestart:
    def test_restart_shard_rebuilds_from_store(self, store):
        with make_router(store) as router:
            names = [f"model-{i:04d}" for i in range(6)]
            for name in names:
                router.publish(name, make_model())
            old_shard = router.shard(0)
            restarts_before = _counter("serving.shard.restarts")
            restored = router.restart_shard(0)
            assert restored == len(names)  # resync is a full replica
            assert router.shard(0) is not old_shard
            assert _counter("serving.shard.restarts") - restarts_before == 1
            assert 0 in router.alive_shards()
            # The replacement serves immediately, warm from the store.
            for name in names:
                assert router.predict(name, np.zeros(NUM_VARS)).shape == (1,)

    def test_drive_callback_runs_while_shard_is_down(self, store):
        with make_router(store) as router:
            router.publish("power", make_model())
            observed = {}

            def drive(shard_id):
                observed["alive_during"] = router.alive_shards()
                # Live traffic keeps flowing through the degraded ring.
                assert router.predict("power", np.zeros(NUM_VARS)).shape == (1,)

            router.restart_shard(router.primary("power"), drive=drive)
            assert router.primary("power") not in observed["alive_during"]
            assert router.alive_shards() == (0, 1, 2)

    def test_rolling_restart_answers_every_request(self, store):
        with make_router(store, num_shards=3, replication_factor=2) as router:
            names = [f"model-{i:04d}" for i in range(8)]
            for name in names:
                router.publish(name, make_model())
            rng = np.random.default_rng(9)
            answered = 0

            def drive(shard_id):
                nonlocal answered
                for _ in range(10):
                    name = names[int(rng.integers(len(names)))]
                    x = rng.normal(size=NUM_VARS)
                    assert router.predict(name, x, timeout=10.0).shape == (1,)
                    answered += 1

            restored = router.rolling_restart(drive=drive)
            assert set(restored) == {0, 1, 2}
            assert all(count == len(names) for count in restored.values())
            assert answered == 30  # every request during every restart
            assert router.stats()["restarts"] == 3
            assert router.alive_shards() == (0, 1, 2)
            assert router.max_version_lag() == 0

    def test_restart_preserves_registry_config(self, store):
        with make_router(
            store,
            registry_kwargs={"max_versions": 3, "serve_last_good": False},
        ) as router:
            router.publish("power", make_model())
            config_before = router.shard(1).registry.export_config()
            router.restart_shard(1)
            assert router.shard(1).registry.export_config() == config_before
            assert router.shard(1).registry.max_versions == 3
            assert router.shard(1).registry.serve_last_good is False

    def test_restart_revives_a_dead_shard(self, store):
        with make_router(store) as router:
            router.publish("power", make_model())
            router.kill_shard(0)
            assert 0 not in router.alive_shards()
            router.restart_shard(0)
            assert 0 in router.alive_shards()
            assert router.predict("power", np.zeros(NUM_VARS)).shape == (1,)

    def test_rolling_restart_across_compaction_boundary(self, store):
        from repro.store import compact

        with make_router(store) as router:
            names = [f"model-{i:04d}" for i in range(4)]
            for name in names:
                router.publish(name, make_model(seed=1))
                router.publish(name, make_model(seed=2))
            compact(store, history_window=0)
            restored = router.rolling_restart()
            # Only the surviving latest version per name is restorable.
            assert all(count == len(names) for count in restored.values())
            for shard_id in router.alive_shards():
                follower = router.shard(shard_id).follower
                assert follower.generation == 1
                assert follower.offset == store.journal_view().end_offset
            for name in names:
                assert router.predict(name, np.zeros(NUM_VARS)).shape == (1,)


class TestRegistryExportConfig:
    def test_round_trips_constructor_kwargs(self):
        registry = ModelRegistry(
            max_versions=5,
            validate=False,
            serve_last_good=False,
            durability="best-effort",
        )
        config = registry.export_config()
        assert config == {
            "max_versions": 5,
            "validate": False,
            "serve_last_good": False,
            "durability": "best-effort",
        }
        clone = ModelRegistry(**config)
        assert clone.export_config() == config
