"""Tests for the runtime lock-order watchdog (`repro.locks`)."""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro import locks
from repro.locks import (
    enable_watchdog,
    disable_watchdog,
    graph_cycles,
    named_condition,
    named_lock,
    named_rlock,
    watch_locks,
    watchdog,
)
from repro.runtime.metrics import metrics

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestGraphCycles:
    def test_acyclic_graph_has_no_cycles(self):
        edges = {("a", "b"), ("b", "c"), ("a", "c")}
        assert graph_cycles(edges) == []

    def test_simple_cycle_is_reported_as_closed_walk(self):
        cycles = graph_cycles({("a", "b"), ("b", "c"), ("c", "a")})
        assert len(cycles) == 1
        walk = cycles[0]
        assert walk[0] == walk[-1]
        assert set(walk) == {"a", "b", "c"}

    def test_self_loop_is_a_cycle(self):
        assert graph_cycles({("d", "d")}) == [["d", "d"]]

    def test_two_disjoint_cycles_both_reported(self):
        cycles = graph_cycles({("a", "b"), ("b", "a"), ("d", "d")})
        assert len(cycles) == 2

    def test_deterministic_across_calls(self):
        edges = {("x", "y"), ("y", "x"), ("p", "q"), ("q", "p")}
        assert graph_cycles(set(edges)) == graph_cycles(set(edges))


class TestDisarmedFactories:
    def test_named_lock_returns_raw_primitive(self):
        assert watchdog() is None
        lock = named_lock("test.raw")
        assert type(lock) is type(threading.Lock())

    def test_named_rlock_returns_raw_primitive(self):
        rlock = named_rlock("test.raw_r")
        assert type(rlock) is type(threading.RLock())

    def test_named_condition_returns_plain_condition(self):
        cond = named_condition("test.raw_cond")
        assert isinstance(cond, threading.Condition)
        assert type(cond._lock) is type(threading.RLock())


class TestEnableDisable:
    def test_enable_is_idempotent_and_disable_returns_previous(self):
        try:
            first = enable_watchdog()
            second = enable_watchdog()
            assert first is second
            assert watchdog() is first
        finally:
            previous = disable_watchdog()
        assert previous is first
        assert watchdog() is None

    def test_armed_factory_locks_are_tracked(self):
        with watch_locks() as wd:
            lock = named_lock("test.tracked")
            with lock:
                pass
        assert wd.report()["locks"]["test.tracked"]["acquires"] == 1

    def test_watch_locks_restores_prior_state(self):
        assert watchdog() is None
        with watch_locks():
            assert watchdog() is not None
        assert watchdog() is None


class TestAcquisitionGraph:
    def test_nested_acquisition_records_edge(self):
        with watch_locks() as wd:
            outer = named_lock("test.outer")
            inner = named_lock("test.inner")
            with outer:
                with inner:
                    pass
        assert wd.edges() == {("test.outer", "test.inner"): 1}
        assert wd.inversions() == []
        assert wd.cycles() == []

    def test_inversion_and_cycle_detected_across_threads(self):
        with watch_locks() as wd:
            a = named_lock("test.a")
            b = named_lock("test.b")

            with a:
                with b:
                    pass

            def reversed_order():
                with b:
                    with a:
                        pass

            worker = threading.Thread(target=reversed_order)
            worker.start()
            worker.join()

            report = wd.report()
        assert report["inversions"] == [["test.a", "test.b"]]
        assert len(report["cycles"]) == 1
        assert set(report["cycles"][0]) == {"test.a", "test.b"}

    def test_edge_counts_accumulate(self):
        with watch_locks() as wd:
            a = named_lock("test.a")
            b = named_lock("test.b")
            for _ in range(3):
                with a:
                    with b:
                        pass
        assert wd.edges()[("test.a", "test.b")] == 3

    def test_condition_wait_keeps_held_stack_consistent(self):
        with watch_locks() as wd:
            cond = named_condition("test.cond")
            ready = []

            def producer():
                with cond:
                    ready.append(True)
                    cond.notify()

            worker = threading.Thread(target=producer)
            with cond:
                worker.start()
                ok = cond.wait_for(lambda: ready, timeout=5.0)
            worker.join()
            assert ok
            # After wait() reacquires, release must still balance: taking
            # another lock now must not fabricate a stale edge.
            other = named_lock("test.other")
            with other:
                pass
        edges = wd.edges()
        assert ("test.cond", "test.other") not in edges
        assert wd.cycles() == []


class TestLongHolds:
    def test_long_hold_counted_against_tiny_threshold(self):
        with watch_locks(long_hold_seconds=0.001) as wd:
            lock = named_lock("test.slow")
            with lock:
                time.sleep(0.01)
        stats = wd.report()["locks"]["test.slow"]
        assert stats["long_holds"] == 1
        assert stats["max_hold_seconds"] >= 0.001

    def test_fast_hold_not_counted(self):
        with watch_locks(long_hold_seconds=10.0) as wd:
            lock = named_lock("test.fast")
            with lock:
                pass
        assert wd.report()["locks"]["test.fast"]["long_holds"] == 0


class TestPublishMetrics:
    def test_deltas_and_registry_increments(self):
        before = metrics.counters()
        with watch_locks() as wd:
            a = named_lock("test.a")
            b = named_lock("test.b")
            with a:
                with b:
                    pass
            first = wd.publish_metrics()
            second = wd.publish_metrics()
        assert first["lock.acquires"] == 2
        assert first["lock.order_edges"] == 1
        assert first["lock.order_inversions"] == 0
        assert first["lock.order_cycles"] == 0
        assert all(value == 0 for value in second.values())
        after = metrics.counters()
        assert after.get("lock.acquires", 0) - before.get("lock.acquires", 0) == 2
        assert (
            after.get("lock.order_edges", 0) - before.get("lock.order_edges", 0)
            == 1
        )


class TestReport:
    def test_write_report_round_trips_json(self, tmp_path):
        path = tmp_path / "lock-report.json"
        with watch_locks() as wd:
            lock = named_lock("test.reported")
            with lock:
                pass
            wd.write_report(str(path))
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert set(payload) == {
            "long_hold_seconds",
            "locks",
            "edges",
            "inversions",
            "cycles",
        }
        assert payload["locks"]["test.reported"]["acquires"] == 1
        assert payload["edges"] == []
        assert payload["cycles"] == []

    def test_report_edges_carry_first_thread(self):
        with watch_locks() as wd:
            a = named_lock("test.a")
            b = named_lock("test.b")
            with a:
                with b:
                    pass
        (edge,) = wd.report()["edges"]
        assert edge["from"] == "test.a"
        assert edge["to"] == "test.b"
        assert edge["count"] == 1
        assert edge["first_thread"]


class TestEnvArming:
    def test_env_var_arms_and_atexit_writes_report(self, tmp_path):
        report_path = tmp_path / "env-report.json"
        script = (
            "from repro.locks import named_lock, watchdog\n"
            "assert watchdog() is not None\n"
            "a = named_lock('env.a')\n"
            "b = named_lock('env.b')\n"
            "with a:\n"
            "    with b:\n"
            "        pass\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_LOCK_WATCHDOG"] = "1"
        env["REPRO_LOCK_REPORT"] = str(report_path)
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["locks"]["env.a"]["acquires"] == 1
        assert [e["from"] for e in payload["edges"]] == ["env.a"]

    def test_env_var_off_leaves_watchdog_disarmed(self, tmp_path):
        script = (
            "from repro.locks import watchdog\n"
            "import sys\n"
            "sys.exit(0 if watchdog() is None else 1)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_LOCK_WATCHDOG", None)
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
