"""Unit tests for hyper-parameter / prior selection (Section IV-D)."""

import numpy as np
import pytest

from repro.bmf import (
    KernelMapSolver,
    cross_validate_eta,
    default_eta_grid,
    nonzero_mean_prior,
    select_prior_and_eta,
    zero_mean_prior,
)


@pytest.fixture
def fusion_data(rng):
    """Late data whose early prior is excellent -> NZM should win."""
    num_samples, num_terms = 60, 150
    design = rng.standard_normal((num_samples, num_terms))
    truth = rng.standard_normal(num_terms) * (rng.random(num_terms) < 0.3)
    truth[0] = 5.0
    target = design @ truth + 0.02 * rng.standard_normal(num_samples)
    early_good = truth * (1 + 0.05 * rng.standard_normal(num_terms))
    return design, target, truth, early_good


class TestDefaultGrid:
    def test_grid_is_positive_and_geometric(self):
        prior = zero_mean_prior(np.array([1.0, 2.0, 0.5]))
        grid = default_eta_grid(prior, num_samples=100)
        assert np.all(grid > 0)
        ratios = grid[1:] / grid[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_grid_scales_with_sample_count(self):
        prior = zero_mean_prior(np.ones(4))
        small = default_eta_grid(prior, num_samples=10)
        large = default_eta_grid(prior, num_samples=1000)
        assert np.allclose(large / small, 100.0)

    def test_grid_centered_on_median_scale(self):
        prior = zero_mean_prior(np.array([10.0, 10.0, 10.0]))
        grid = default_eta_grid(prior, num_samples=1)
        reference = 100.0  # K * median(s^2) = 1 * 100
        assert grid.min() < reference < grid.max()

    def test_all_missing_prior_still_works(self):
        from repro.bmf import uninformative_prior

        grid = default_eta_grid(uninformative_prior(5), num_samples=50)
        assert np.all(np.isfinite(grid)) and np.all(grid > 0)


class TestCrossValidateEta:
    def test_returns_one_error_per_eta(self, fusion_data):
        design, target, _truth, early = fusion_data
        solver = KernelMapSolver(design, target, nonzero_mean_prior(early))
        errors = cross_validate_eta(solver, [0.1, 1.0, 10.0], n_folds=4)
        assert errors.shape == (3,)
        assert np.all(errors > 0)

    def test_extreme_etas_are_worse(self, fusion_data):
        """The CV error curve is U-ish: both extremes lose to the middle."""
        design, target, _truth, early = fusion_data
        prior = nonzero_mean_prior(early)
        solver = KernelMapSolver(design, target, prior)
        grid = default_eta_grid(prior, design.shape[0])
        errors = cross_validate_eta(solver, grid, n_folds=5)
        best = errors.min()
        assert errors[0] > best
        assert errors[-1] > best

    def test_invalid_eta_rejected(self, fusion_data):
        design, target, _truth, early = fusion_data
        solver = KernelMapSolver(design, target, zero_mean_prior(early))
        with pytest.raises(ValueError, match="positive"):
            cross_validate_eta(solver, [1.0, -1.0], n_folds=3)

    def test_invalid_folds_rejected(self, fusion_data):
        design, target, _truth, early = fusion_data
        solver = KernelMapSolver(design, target, zero_mean_prior(early))
        with pytest.raises(ValueError, match="n_folds"):
            cross_validate_eta(solver, [1.0], n_folds=1)


class TestSelectPriorAndEta:
    def test_good_prior_selects_nonzero_mean(self, fusion_data):
        """Accurate early info -> the sign-carrying NZM prior should win."""
        design, target, _truth, early = fusion_data
        report = select_prior_and_eta(
            design,
            target,
            [zero_mean_prior(early), nonzero_mean_prior(early)],
        )
        assert report.prior.name == "nonzero-mean"
        assert np.isfinite(report.error)

    def test_sign_scrambled_prior_selects_zero_mean(self, fusion_data, rng):
        """Sign-scrambled early coefficients: magnitudes fine, means wrong.

        This is exactly the situation the paper says favors the zero-mean
        prior (it only encodes magnitudes).
        """
        design, target, _truth, early = fusion_data
        scrambled = np.abs(early) * rng.choice([-1.0, 1.0], early.shape)
        report = select_prior_and_eta(
            design,
            target,
            [zero_mean_prior(scrambled), nonzero_mean_prior(scrambled)],
        )
        assert report.prior.name == "zero-mean"

    def test_report_contains_all_curves(self, fusion_data):
        design, target, _truth, early = fusion_data
        report = select_prior_and_eta(
            design,
            target,
            [zero_mean_prior(early), nonzero_mean_prior(early)],
        )
        assert set(report.per_prior_errors) == {"zero-mean", "nonzero-mean"}
        assert set(report.per_prior_grids) == {"zero-mean", "nonzero-mean"}
        for name, errors in report.per_prior_errors.items():
            assert errors.shape == report.per_prior_grids[name].shape

    def test_explicit_grids_respected(self, fusion_data):
        design, target, _truth, early = fusion_data
        grid = [0.5, 5.0]
        report = select_prior_and_eta(
            design,
            target,
            [zero_mean_prior(early)],
            eta_grids={"zero-mean": grid},
        )
        assert report.eta in grid

    def test_empty_priors_rejected(self, fusion_data):
        design, target, _truth, _early = fusion_data
        with pytest.raises(ValueError, match="at least one"):
            select_prior_and_eta(design, target, [])
