"""Unit tests for transient analysis."""

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    Mosfet,
    PiecewiseLinear,
    Pulse,
    Resistor,
    VoltageSource,
    transient,
)


def rc_circuit(tau_r=1e3, tau_c=1e-12, delay=1e-9):
    ckt = Circuit("rc")
    ckt.add(
        VoltageSource(
            "VIN", "in", "0",
            waveform=Pulse(0.0, 1.0, delay=delay, rise=1e-12, width=1e-3),
        )
    )
    ckt.add(Resistor("R", "in", "out", tau_r))
    ckt.add(Capacitor("C", "out", "0", tau_c))
    return ckt


class TestRcStep:
    def test_charging_curve(self):
        result = transient(rc_circuit(), t_stop=6e-9, dt=5e-12, initial="zero")
        tau = 1e-9
        crossing = result.crossing_time("out", 1 - np.exp(-1))
        assert crossing == pytest.approx(1e-9 + tau, rel=0.02)

    def test_final_value(self):
        result = transient(rc_circuit(), t_stop=10e-9, dt=1e-11, initial="zero")
        assert result.voltage("out")[-1] == pytest.approx(1.0, abs=1e-3)

    def test_dc_initial_condition(self):
        """Starting from the DC point with the source low: output stays 0
        until the pulse."""
        result = transient(rc_circuit(), t_stop=2e-9, dt=1e-11, initial="dc")
        before = result.voltage("out")[: int(0.9e-9 / 1e-11)]
        assert np.allclose(before, 0.0, atol=1e-9)

    def test_time_axis(self):
        result = transient(rc_circuit(), t_stop=1e-9, dt=1e-10)
        assert result.times[0] == 0.0
        assert result.times[-1] >= 1e-9
        assert np.allclose(np.diff(result.times), 1e-10)

    def test_ground_voltage_is_zero(self):
        result = transient(rc_circuit(), t_stop=1e-9, dt=1e-10)
        assert np.allclose(result.voltage("0"), 0.0)

    def test_unknown_node_rejected(self):
        result = transient(rc_circuit(), t_stop=1e-9, dt=1e-10)
        with pytest.raises(KeyError):
            result.voltage("nope")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            transient(rc_circuit(), t_stop=0.0, dt=1e-12)
        with pytest.raises(ValueError, match="initial"):
            transient(rc_circuit(), t_stop=1e-9, dt=1e-12, initial="warm")


class TestCrossingTime:
    def test_rising_and_falling(self):
        ckt = Circuit("tri")
        ckt.add(
            VoltageSource(
                "V", "n", "0",
                waveform=PiecewiseLinear([(0, 0.0), (1e-9, 1.0), (2e-9, 0.0)]),
            )
        )
        ckt.add(Resistor("R", "n", "0", 1e3))
        result = transient(ckt, t_stop=2e-9, dt=1e-11, initial="zero")
        rise = result.crossing_time("n", 0.5, rising=True)
        fall = result.crossing_time("n", 0.5, rising=False)
        assert rise == pytest.approx(0.5e-9, rel=0.05)
        assert fall == pytest.approx(1.5e-9, rel=0.05)

    def test_no_crossing_returns_none(self):
        result = transient(rc_circuit(), t_stop=0.5e-9, dt=1e-11, initial="zero")
        assert result.crossing_time("out", 0.9) is None


class TestCmosInverter:
    def test_switching(self):
        ckt = Circuit("inv")
        ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.0))
        ckt.add(
            VoltageSource(
                "VIN", "in", "0",
                waveform=Pulse(0.0, 1.0, delay=0.2e-9, rise=10e-12, width=1e-6),
            )
        )
        ckt.add(Mosfet("MN", "out", "in", "0", kp=4e-4, vth=0.3))
        ckt.add(Mosfet("MP", "out", "in", "vdd", kp=3e-4, vth=0.3, polarity="pmos"))
        ckt.add(Capacitor("CL", "out", "0", 5e-15))
        result = transient(ckt, t_stop=2e-9, dt=2e-12)
        assert result.voltage("out")[0] == pytest.approx(1.0, abs=1e-3)
        assert result.voltage("out")[-1] == pytest.approx(0.0, abs=1e-3)
        assert result.crossing_time("out", 0.5, rising=False) is not None

    def test_propagation_delay_scales_with_load(self):
        def delay_with_load(cap):
            ckt = Circuit("inv")
            ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.0))
            ckt.add(
                VoltageSource(
                    "VIN", "in", "0",
                    waveform=Pulse(0.0, 1.0, delay=0.1e-9, rise=5e-12, width=1e-6),
                )
            )
            ckt.add(Mosfet("MN", "out", "in", "0", kp=4e-4, vth=0.3))
            ckt.add(
                Mosfet("MP", "out", "in", "vdd", kp=3e-4, vth=0.3,
                       polarity="pmos")
            )
            ckt.add(Capacitor("CL", "out", "0", cap))
            result = transient(ckt, t_stop=3e-9, dt=1e-12)
            return result.crossing_time("out", 0.5, rising=False) - 0.1e-9

        assert delay_with_load(10e-15) > 1.5 * delay_with_load(5e-15)
