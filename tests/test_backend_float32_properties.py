"""Property-based tests (hypothesis) for the float32 serving mode.

Two invariants, driven by the same seeded problem generator as the PR-3
Woodbury property suite (``test_properties_woodbury.random_config``):

* fused float32 predictions always satisfy the serving contract bound
  (:data:`repro.backends.FLOAT32_SERVING_RTOL`) against the float64
  reference -- the exact check ``repro.analysis.contracts.check_close``
  enforces on the ``REPRO_CONTRACTS`` serving path;
* chaining ``extend_gram_kernel`` one row at a time over float32-sourced
  designs never drifts past the documented float32 gram tolerance, either
  against a fresh one-shot build (chaining adds no error) or against the
  float64 oracle kernel (rounding stays bounded).
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.analysis.contracts import check_close  # noqa: E402
from repro.backends import FLOAT32_SERVING_RTOL, TOLERANCES  # noqa: E402
from repro.backends.oracle import oracle_gram_kernel  # noqa: E402
from repro.basis import OrthonormalBasis  # noqa: E402
from repro.linalg import extend_gram_kernel, gram_kernel  # noqa: E402

from test_properties_woodbury import random_config  # noqa: E402

FLOAT32_GRAM_RTOL = TOLERANCES[("numpy", "float32")].gram

seeds = st.integers(min_value=0, max_value=2_000)


def relative_inf_error(actual, reference):
    scale = max(float(np.max(np.abs(reference), initial=0.0)), 1e-300)
    return float(np.max(np.abs(actual - reference), initial=0.0)) / scale


class TestFloat32ServingContract:
    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_fused_float32_predictions_satisfy_contract_bound(self, seed):
        rng = np.random.default_rng(3_000_000 + seed)
        num_vars = int(rng.integers(2, 6))
        degree = int(rng.integers(1, 4))
        basis = OrthonormalBasis.total_degree(num_vars, degree)
        x = rng.standard_normal((int(rng.integers(1, 80)), num_vars))
        coefficients = rng.standard_normal(basis.size)
        reference = basis.fused_predict(x, coefficients)
        served = basis.fused_predict(x, coefficients, dtype=np.float32)
        assert served.dtype == np.dtype(np.float32)
        # check_close raises ContractViolationError on a bound miss -- the
        # very call the serving engine makes under REPRO_CONTRACTS.
        check_close(
            served, reference, rtol=FLOAT32_SERVING_RTOL, name="float32 serving"
        )

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_float32_design_predictions_stay_bounded(self, seed):
        """The bound also holds when the float32 design path feeds a plain
        matvec (the cached-serving shape) rather than the fused kernel."""
        rng = np.random.default_rng(4_000_000 + seed)
        basis = OrthonormalBasis.total_degree(3, int(rng.integers(1, 4)))
        x = rng.standard_normal((int(rng.integers(1, 50)), 3))
        coefficients = rng.standard_normal(basis.size)
        design32 = basis.design_matrix(x, dtype=np.float32)
        served = design32 @ coefficients.astype(np.float32)
        reference = basis.design_matrix(x) @ coefficients
        check_close(
            served, reference, rtol=FLOAT32_SERVING_RTOL, name="float32 matvec"
        )


class TestFloat32ChainedExtensions:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_chained_extensions_never_drift_past_bound(self, seed):
        num_old, design64, _, prior, _, missing_scale = random_config(seed)
        scale_sq = prior.effective_scale(missing_scale) ** 2
        design = design64.astype(np.float32).astype(np.float64)
        kernel = gram_kernel(design[:num_old], scale_sq)
        for row in range(num_old, design.shape[0]):
            kernel = extend_gram_kernel(
                kernel, design[:row], design[row : row + 1], scale_sq
            )
        fresh = gram_kernel(design, scale_sq)
        assert relative_inf_error(kernel, fresh) <= FLOAT32_GRAM_RTOL
        oracle = oracle_gram_kernel(design64, scale_sq)
        assert relative_inf_error(kernel, oracle) <= FLOAT32_GRAM_RTOL
