"""Cross-backend differential conformance suite.

Every registered backend x {float64, float32} is driven over the hot-path
operations -- design-matrix assembly, Gram kernels, MAP solves, incremental
Woodbury refits, and fused serving predictions -- and compared to the
bitwise-deterministic float64 oracle (:mod:`repro.backends.oracle`) within
the documented tolerance table (:data:`repro.backends.TOLERANCES`, whose
prose copy lives in ``docs/backends.md``).  A tolerance of ``0.0`` means
*bitwise equal*; the meta-tests at the bottom pin the numpy backend to the
oracle's exact bits so the reference itself cannot drift.

Backends whose optional extra is not installed skip with the registry's
reason text -- unless named in ``REPRO_REQUIRE_BACKENDS`` (comma-separated),
in which case the guard test FAILS: the CI backend matrix sets that
variable per job, so a silently-skipped backend can never go green.
"""

import os

import numpy as np
import pytest

from repro.backends import (
    TOLERANCES,
    active_backend_name,
    backend_available,
    backend_unavailable_reason,
    registered_backends,
    use_backend,
)
from repro.backends.oracle import (
    oracle_design_matrix,
    oracle_gram_kernel,
    oracle_map_solve,
    oracle_predict,
)
from repro.basis import OrthonormalBasis
from repro.bmf import GaussianCoefficientPrior, KernelMapSolver
from repro.linalg import extend_gram_kernel, gram_kernel

from test_properties_woodbury import random_config

DTYPES = ("float64", "float32")

#: Seeds driving the randomized solve/refit conformance cases.
SOLVE_SEEDS = tuple(range(0, 40, 4))


def _required_backends():
    raw = os.environ.get("REPRO_REQUIRE_BACKENDS", "")
    return tuple(name.strip() for name in raw.split(",") if name.strip())


@pytest.fixture(params=sorted(registered_backends()))
def backend_name(request):
    name = request.param
    if not backend_available(name):
        reason = backend_unavailable_reason(name)
        if name in _required_backends():
            pytest.fail(f"required backend unavailable: {reason}")
        pytest.skip(reason)
    return name


@pytest.fixture(params=DTYPES)
def dtype(request):
    return np.dtype(request.param)


def tolerance(backend_name, dtype, operation):
    return TOLERANCES[(backend_name, dtype.name)].for_operation(operation)


def assert_conforms(actual, reference, tol, label):
    """Inf-norm relative comparison; ``tol == 0`` demands bitwise equality."""
    actual = np.asarray(actual, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    assert actual.shape == reference.shape, label
    if tol == 0:
        assert np.array_equal(actual, reference), f"{label}: expected bitwise equality"
        return
    scale = max(float(np.max(np.abs(reference), initial=0.0)), 1e-300)
    error = float(np.max(np.abs(actual - reference), initial=0.0)) / scale
    assert error <= tol, f"{label}: relative error {error:.3e} exceeds {tol:.1e}"


@pytest.fixture(scope="module")
def problem():
    """One moderate dense problem: basis, samples, coefficients."""
    basis = OrthonormalBasis.total_degree(4, 3)
    rng = np.random.default_rng(77)
    x = rng.standard_normal((61, 4))
    coefficients = rng.standard_normal(basis.size)
    return basis, x, coefficients


class TestDesignMatrixConformance:
    def test_assembly_matches_oracle(self, backend_name, dtype, problem):
        basis, x, _ = problem
        reference = oracle_design_matrix(basis, x)
        with use_backend(backend_name):
            actual = basis.design_matrix(x, dtype=dtype)
        assert actual.dtype == dtype
        tol = tolerance(backend_name, dtype, "design")
        # float32 tolerances are measured against the float64 oracle, so
        # the float32 rounding of the reference itself is inside the bound.
        assert_conforms(actual, reference, tol, f"design[{backend_name}/{dtype}]")

    def test_column_subsets_match_oracle(self, backend_name, dtype, problem):
        basis, x, _ = problem
        columns = list(range(0, basis.size, 3))
        reference = oracle_design_matrix(basis, x)[:, columns]
        with use_backend(backend_name):
            actual = basis.design_matrix(x, columns=columns, dtype=dtype)
        tol = tolerance(backend_name, dtype, "design")
        assert_conforms(actual, reference, tol, f"design-cols[{backend_name}/{dtype}]")


class TestGramKernelConformance:
    def test_gram_kernel_matches_oracle(self, backend_name, dtype, problem):
        basis, x, _ = problem
        design64 = oracle_design_matrix(basis, x)
        design = design64.astype(dtype)
        rng = np.random.default_rng(5)
        scale_sq = np.abs(rng.standard_normal(basis.size)) + 0.1
        reference = oracle_gram_kernel(design64, scale_sq)
        with use_backend(backend_name):
            actual = gram_kernel(design, scale_sq)
        tol = tolerance(backend_name, dtype, "gram")
        assert_conforms(actual, reference, tol, f"gram[{backend_name}/{dtype}]")

    def test_extend_gram_kernel_matches_oracle(self, backend_name, dtype, problem):
        basis, x, _ = problem
        design64 = oracle_design_matrix(basis, x)
        design = design64.astype(dtype)
        split = design.shape[0] // 2
        reference = oracle_gram_kernel(design64)
        with use_backend(backend_name):
            base = gram_kernel(design[:split])
            actual = extend_gram_kernel(base, design[:split], design[split:])
        tol = tolerance(backend_name, dtype, "gram")
        assert_conforms(actual, reference, tol, f"extend[{backend_name}/{dtype}]")


class TestSolveConformance:
    @pytest.mark.parametrize("seed", SOLVE_SEEDS)
    def test_map_solve_matches_oracle(self, backend_name, dtype, seed):
        _, design64, target, prior, eta, missing_scale = random_config(seed)
        design = design64.astype(dtype)
        reference = oracle_map_solve(design64, target, prior, eta, missing_scale)
        with use_backend(backend_name):
            solver = KernelMapSolver(design, target, prior, missing_scale)
            actual = solver.solve(eta)
        tol = tolerance(backend_name, dtype, "solve")
        assert_conforms(actual, reference, tol, f"solve[{backend_name}/{dtype}]")

    @pytest.mark.parametrize("seed", SOLVE_SEEDS)
    def test_incremental_refit_matches_oracle(self, backend_name, dtype, seed):
        num_old, design64, target, prior, eta, missing_scale = random_config(seed)
        design = design64.astype(dtype)
        reference = oracle_map_solve(design64, target, prior, eta, missing_scale)
        with use_backend(backend_name):
            base = KernelMapSolver(
                design[:num_old], target[:num_old], prior, missing_scale
            )
            grown = base.extended(design[num_old:], target[num_old:])
            actual = grown.solve(eta)
        tol = tolerance(backend_name, dtype, "refit")
        assert_conforms(actual, reference, tol, f"refit[{backend_name}/{dtype}]")


class TestServingConformance:
    def test_fused_predict_matches_oracle(self, backend_name, dtype, problem):
        basis, x, coefficients = problem
        reference = oracle_predict(basis, coefficients, x)
        with use_backend(backend_name):
            actual = basis.fused_predict(x, coefficients, dtype=dtype)
        assert actual.dtype == dtype
        tol = tolerance(backend_name, dtype, "serving")
        assert_conforms(actual, reference, tol, f"serving[{backend_name}/{dtype}]")


class TestNumpyBitwiseMetaTest:
    """The canonical backend must reproduce the oracle's exact bits.

    These are the anchors of the whole tolerance table: if numpy/float64
    drifted from the oracle, every other row would silently be measured
    against a moved reference.
    """

    def test_design_assembly_is_bitwise(self, problem):
        basis, x, _ = problem
        with use_backend("numpy"):
            actual = basis.design_matrix(x)
        assert np.array_equal(actual, oracle_design_matrix(basis, x))

    def test_deterministic_gram_is_bitwise(self, problem):
        basis, x, _ = problem
        design = oracle_design_matrix(basis, x)
        rng = np.random.default_rng(9)
        scale_sq = np.abs(rng.standard_normal(basis.size)) + 0.1
        with use_backend("numpy"):
            actual = gram_kernel(design, scale_sq, deterministic=True)
        assert np.array_equal(actual, oracle_gram_kernel(design, scale_sq))

    @pytest.mark.parametrize("seed", SOLVE_SEEDS[:3])
    def test_deterministic_solve_is_bitwise(self, seed):
        _, design, target, prior, eta, missing_scale = random_config(seed)
        with use_backend("numpy"):
            solver = KernelMapSolver(
                design, target, prior, missing_scale, deterministic=True
            )
            actual = solver.solve(eta)
        reference = oracle_map_solve(design, target, prior, eta, missing_scale)
        assert np.array_equal(actual, reference)


class TestRequiredBackendGuard:
    """CI matrix guard: required backends must run, not skip."""

    def test_required_backends_are_available(self):
        for name in _required_backends():
            assert backend_available(name), backend_unavailable_reason(name)

    def test_required_selection_did_not_fall_back(self):
        """When the matrix pins REPRO_BACKEND to a required backend, the
        process-wide selection must resolve to it (no silent numpy
        fallback turning the whole job into a duplicate numpy run)."""
        requested = os.environ.get("REPRO_BACKEND", "").strip()
        if not requested or requested not in _required_backends():
            pytest.skip("REPRO_BACKEND does not name a required backend")
        assert active_backend_name() == requested
