"""Synthetic-load harness and report schema (`repro.loadgen`).

Covers config validation, the two-way schema contract (missing keys,
wrong types, and unknown keys all fail), the harness's deterministic
outcome accounting (quota gate, shard kill, overload burst), and the
CLI's run / ``--check-schema`` modes.
"""

from __future__ import annotations

import json

import pytest

from repro.loadgen import (
    REPORT_SCHEMA,
    SCHEMA_VERSION,
    LoadConfig,
    latency_percentiles,
    run_load,
    validate_report,
)
from repro.loadgen.__main__ import main as loadgen_main


def small_config(**overrides):
    kwargs = dict(
        seed=0,
        num_requests=40,
        num_tenants=4,
        num_models=4,
        num_shards=2,
        replication_factor=2,
        max_queue_depth=8,
        workers=1,
    )
    kwargs.update(overrides)
    return LoadConfig(**kwargs)


class TestLoadConfig:
    def test_defaults_are_valid(self):
        config = LoadConfig()
        assert config.seed == 0
        assert config.tenant_quota is None
        assert config.kill_shard_after is None

    @pytest.mark.parametrize(
        "field",
        [
            "num_requests",
            "num_tenants",
            "num_models",
            "num_shards",
            "max_queue_depth",
            "workers",
        ],
    )
    def test_counts_must_be_positive(self, field):
        with pytest.raises(ValueError, match=field):
            LoadConfig(**{field: 0})

    def test_kill_and_quota_bounds(self):
        with pytest.raises(ValueError, match="kill_shard_after"):
            LoadConfig(num_requests=10, kill_shard_after=11)
        with pytest.raises(ValueError, match="kill_shard"):
            LoadConfig(num_shards=2, kill_shard=2)
        with pytest.raises(ValueError, match="tenant_quota"):
            LoadConfig(tenant_quota=-1)
        with pytest.raises(ValueError, match="overload_burst"):
            LoadConfig(overload_burst=-1)
        with pytest.raises(ValueError, match="request_timeout_seconds"):
            LoadConfig(request_timeout_seconds=0.0)

    def test_hedge_and_slow_shard_bounds(self):
        with pytest.raises(ValueError, match="hedge_budget_fraction"):
            LoadConfig(hedge_budget_fraction=0.0)
        with pytest.raises(ValueError, match="hedge_budget_fraction"):
            LoadConfig(hedge_budget_fraction=1.5)
        with pytest.raises(ValueError, match="hedge_min_samples"):
            LoadConfig(hedge_min_samples=0)
        with pytest.raises(ValueError, match="hedge_max_delay_seconds"):
            LoadConfig(hedge_max_delay_seconds=0.0)
        with pytest.raises(ValueError, match="hedge_min_delay_seconds"):
            LoadConfig(hedge_min_delay_seconds=0.5, hedge_max_delay_seconds=0.1)
        with pytest.raises(ValueError, match="slow_shard"):
            LoadConfig(num_shards=2, slow_shard=2)
        with pytest.raises(ValueError, match="slow_shard_latency_seconds"):
            LoadConfig(slow_shard_latency_seconds=-1.0)
        with pytest.raises(ValueError, match="slow_shard_every"):
            LoadConfig(slow_shard_every=0)
        with pytest.raises(ValueError, match="low_priority_fraction"):
            LoadConfig(low_priority_fraction=1.5)


class TestReportSchema:
    def _valid_report(self, tmp_path):
        report = run_load(small_config(num_requests=10), tmp_path / "store")
        return report.to_dict()

    def test_emitted_report_validates(self, tmp_path):
        data = self._valid_report(tmp_path)
        validate_report(data)  # must not raise
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["kind"] == "loadgen"
        assert set(data) == set(REPORT_SCHEMA)

    def test_missing_key_fails(self, tmp_path):
        data = self._valid_report(tmp_path)
        del data["latency_p999_ms"]
        with pytest.raises(ValueError, match="missing key 'latency_p999_ms'"):
            validate_report(data)

    def test_wrong_type_fails(self, tmp_path):
        data = self._valid_report(tmp_path)
        data["answered"] = "lots"
        with pytest.raises(ValueError, match="key 'answered' has type str"):
            validate_report(data)

    def test_bool_is_not_an_int(self, tmp_path):
        data = self._valid_report(tmp_path)
        data["failed"] = True
        with pytest.raises(ValueError, match="'failed'"):
            validate_report(data)

    def test_unknown_key_fails(self, tmp_path):
        data = self._valid_report(tmp_path)
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown key 'surprise'"):
            validate_report(data)

    def test_non_object_fails(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_report([1, 2, 3])

    def test_write_json_round_trips(self, tmp_path):
        report = run_load(small_config(num_requests=10), tmp_path / "store")
        path = report.write_json(tmp_path / "out" / "report.json")
        data = json.loads(path.read_text())
        validate_report(data)
        assert data["submitted"] == report.submitted

    def test_bool_fields_reject_ints(self, tmp_path):
        data = self._valid_report(tmp_path)
        assert isinstance(data["hedge_enabled"], bool)
        assert isinstance(data["brownout_enabled"], bool)
        data["hedge_enabled"] = 1
        with pytest.raises(ValueError, match="'hedge_enabled'"):
            validate_report(data)

    def test_schema_v2_has_tail_tolerance_fields(self, tmp_path):
        assert SCHEMA_VERSION == 2
        data = self._valid_report(tmp_path)
        for key in (
            "hedge_enabled",
            "brownout_enabled",
            "slow_shard",
            "slow_shard_latency_ms",
            "hedged",
            "hedge_wins",
            "hedge_primary_wins",
            "hedge_budget_denied",
            "hedge_cancelled",
            "brownout_shed",
        ):
            assert key in REPORT_SCHEMA
            assert key in data
        del data["hedged"]
        with pytest.raises(ValueError, match="missing key 'hedged'"):
            validate_report(data)

    def test_signature_echoes_config_but_not_hedge_counts(self, tmp_path):
        report = run_load(small_config(num_requests=10), tmp_path / "store")
        signature = report.deterministic_signature()
        assert signature["hedge_enabled"] is False
        assert signature["brownout_enabled"] is False
        assert signature["slow_shard"] is None
        # Hedge/brownout event counts are wall-clock races; they must
        # never enter the bitwise same-seed signature.
        for key in ("hedged", "hedge_wins", "brownout_shed"):
            assert key not in signature

    def test_percentiles_empty_and_ordered(self):
        empty = latency_percentiles([])
        assert empty["latency_p50_ms"] == 0.0
        values = latency_percentiles([0.001] * 99 + [0.1])
        assert (
            values["latency_p50_ms"]
            <= values["latency_p99_ms"]
            <= values["latency_p999_ms"]
            <= values["latency_max_ms"]
        )


class TestRunLoad:
    def test_plain_run_answers_everything(self, tmp_path):
        report = run_load(small_config(), tmp_path / "store")
        assert report.submitted == 40
        assert report.admitted == 40
        assert report.answered == 40
        assert report.failed == 0
        assert report.expired == 0
        assert report.answered_fraction == 1.0
        assert report.killed_shard is None
        assert report.rebalanced_keys == 0
        assert report.duration_seconds > 0
        assert report.throughput_rps > 0

    def test_quota_gate_rejects_before_the_engine(self, tmp_path):
        quota = 3
        report = run_load(
            small_config(tenant_quota=quota), tmp_path / "store"
        )
        assert report.quota_rejected > 0
        assert report.submitted + report.quota_rejected == 40
        assert all(n <= quota for n in report.tenant_admitted.values())
        assert report.answered == report.submitted  # admitted all answered

    def test_shard_kill_mid_traffic(self, tmp_path):
        report = run_load(
            small_config(kill_shard_after=20), tmp_path / "store"
        )
        assert report.killed_shard is not None
        assert report.rebalanced_keys >= 1
        assert report.failovers == 1
        assert report.failed == 0
        assert report.post_kill_admitted == report.post_kill_answered
        assert report.backfills == 0  # warm replicas: no refit, no backfill
        assert report.replica_applied >= report.rebalanced_keys

    def test_overload_burst_counts(self, tmp_path):
        depth = 8
        report = run_load(
            small_config(max_queue_depth=depth, overload_burst=2),
            tmp_path / "store",
        )
        # The staged expired requests fill the queue; the 2x burst evicts
        # them (shed-oldest-expired) and the overflow is rejected.
        assert report.burst_staged == depth
        assert report.burst_submitted == 2 * depth
        assert report.burst_rejected == depth
        assert report.burst_answered == depth
        assert report.shed_expired == depth

    def test_same_seed_signature_is_identical(self, tmp_path):
        config = small_config(
            seed=13, kill_shard_after=20, tenant_quota=8, overload_burst=1
        )
        first = run_load(config, tmp_path / "a")
        second = run_load(config, tmp_path / "b")
        assert (
            first.deterministic_signature() == second.deterministic_signature()
        )

    def test_hedged_slow_shard_answers_everything(self, tmp_path):
        report = run_load(
            small_config(
                num_requests=60,
                num_shards=3,
                hedge=True,
                hedge_budget_fraction=0.2,
                hedge_max_delay_seconds=0.01,
                slow_shard_latency_seconds=0.03,
                slow_shard_every=3,
            ),
            tmp_path / "store",
        )
        assert report.hedge_enabled
        assert report.slow_shard is not None
        assert report.slow_shard_latency_ms == pytest.approx(30.0)
        assert report.failed == 0
        assert report.answered == report.admitted
        # Budget cap: hedges never exceed fraction * submitted + burst.
        assert report.hedged <= 0.2 * report.submitted + 4.0
        assert report.hedge_wins <= report.hedged

    def test_brownout_run_accounts_shed_requests(self, tmp_path):
        report = run_load(
            small_config(
                num_requests=60,
                brownout=True,
                low_priority_fraction=0.5,
            ),
            tmp_path / "store",
        )
        assert report.brownout_enabled
        # Healthy engines: low-priority work sails through.
        assert report.brownout_shed == 0
        assert report.answered == report.admitted

    def test_different_seeds_differ(self, tmp_path):
        first = run_load(small_config(seed=1), tmp_path / "a")
        second = run_load(small_config(seed=2), tmp_path / "b")
        assert first.deterministic_signature() != second.deterministic_signature()
        assert first.tenant_admitted != second.tenant_admitted


class TestCli:
    def test_run_and_check_schema(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = loadgen_main(
            [
                "--requests", "20",
                "--models", "4",
                "--queue-depth", "8",
                "--workers", "1",
                "--store", str(tmp_path / "store"),
                "--output", str(out),
            ]
        )
        assert code == 0
        assert "Synthetic load run" in capsys.readouterr().out
        validate_report(json.loads(out.read_text()))
        assert loadgen_main(["--check-schema", str(out)]) == 0

    def test_check_schema_rejects_drift(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 1}))
        assert loadgen_main(["--check-schema", str(path)]) == 1
        assert "missing key" in capsys.readouterr().err

    def test_check_schema_rejects_unreadable(self, tmp_path, capsys):
        assert loadgen_main(["--check-schema", str(tmp_path / "nope.json")]) == 1
        assert "could not read" in capsys.readouterr().err

    def test_bad_config_exits_1(self, capsys):
        assert loadgen_main(["--requests", "0"]) == 1
        assert "num_requests" in capsys.readouterr().err
