"""Unit tests for sparse Bayesian learning (ref. [29] baseline)."""

import numpy as np
import pytest

from repro.basis import OrthonormalBasis
from repro.regression import SparseBayesianRegressor, sparse_bayesian_fit


class TestSparseBayesianFit:
    def test_recovers_sparse_signal(self, rng):
        design = rng.standard_normal((70, 120))
        truth = np.zeros(120)
        truth[[5, 40, 90]] = [2.0, -1.5, 1.0]
        target = design @ truth + 0.02 * rng.standard_normal(70)
        mean, alpha, noise = sparse_bayesian_fit(design, target)
        big = np.flatnonzero(np.abs(mean) > 0.2)
        assert set(big) == {5, 40, 90}
        assert np.allclose(mean[big], truth[big], atol=0.1)

    def test_noise_estimate_is_sane(self, rng):
        design = rng.standard_normal((80, 30))
        truth = np.zeros(30)
        truth[2] = 3.0
        sigma = 0.1
        target = design @ truth + sigma * rng.standard_normal(80)
        _mean, _alpha, noise = sparse_bayesian_fit(design, target)
        assert noise == pytest.approx(sigma**2, rel=0.5)

    def test_pure_noise_prunes_everything_important(self, rng):
        design = rng.standard_normal((60, 40))
        target = rng.standard_normal(60)
        mean, _alpha, noise = sparse_bayesian_fit(design, target)
        # Whatever survives must explain almost nothing.
        assert np.linalg.norm(design @ mean) < 2 * np.linalg.norm(target)
        assert noise > 0.3 * np.var(target)


class TestSparseBayesianRegressor:
    def test_accurate_prediction(self, rng):
        basis = OrthonormalBasis.linear(80)
        truth = np.zeros(basis.size)
        truth[0] = 5.0
        truth[[3, 20, 50]] = [2.0, -1.0, 0.5]
        x = rng.standard_normal((60, 80))
        f = basis.evaluate(truth, x) + 0.02 * rng.standard_normal(60)
        model = SparseBayesianRegressor(basis).fit(x, f)
        x_test = rng.standard_normal((400, 80))
        reference = basis.evaluate(truth, x_test)
        error = np.linalg.norm(model.predict(x_test) - reference)
        assert error / np.linalg.norm(reference) < 0.02

    def test_huge_mean_handled_by_intercept(self, rng):
        """The centering path must keep a 1e9-mean target workable."""
        basis = OrthonormalBasis.linear(20)
        x = rng.standard_normal((50, 20))
        f = 1e9 + 2.0 * x[:, 3] + 0.01 * rng.standard_normal(50)
        model = SparseBayesianRegressor(basis).fit(x, f)
        prediction = model.predict(np.zeros((1, 20)))
        assert prediction[0] == pytest.approx(1e9, rel=1e-6)

    def test_num_relevant(self, rng):
        basis = OrthonormalBasis.linear(50)
        truth = np.zeros(basis.size)
        truth[7] = 2.0
        x = rng.standard_normal((60, 50))
        f = basis.evaluate(truth, x) + 0.01 * rng.standard_normal(60)
        model = SparseBayesianRegressor(basis).fit(x, f)
        # Pruning keeps a fraction of the basis; the true term dominates.
        assert 1 <= model.num_relevant() < basis.size
        assert int(np.argmax(np.abs(model.coefficients_[1:]))) + 1 == 7

    def test_num_relevant_before_fit_rejected(self):
        model = SparseBayesianRegressor(OrthonormalBasis.linear(5))
        with pytest.raises(RuntimeError, match="not fitted"):
            model.num_relevant()

    def test_records_hyperparameters(self, rng):
        basis = OrthonormalBasis.linear(10)
        x = rng.standard_normal((30, 10))
        f = x[:, 0] + 0.05 * rng.standard_normal(30)
        model = SparseBayesianRegressor(basis).fit(x, f)
        assert model.precisions_ is not None
        assert model.precisions_.shape == (basis.size,)
        assert model.noise_variance_ > 0
