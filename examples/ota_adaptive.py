"""Adaptive BMF on a netlist-level OTA, with a quadratic model and
rare-failure yield analysis.

Goes beyond the paper's linear-model experiments, using the extension
hooks the paper's conclusion points to:

1. a 5T OTA simulated with the package's MNA engine (DC + AC per sample);
2. a *quadratic* (total-degree-2) performance model of the unity-gain
   bandwidth -- BMF works with any orthonormal basis (Section V's closing
   remark);
3. late-stage samples collected *adaptively* with
   :class:`repro.bmf.SequentialBmf`, stopping when the cross-validation
   error curve flattens instead of fixing the budget up front;
4. the fused model feeds mean-shift importance sampling to resolve a
   far-tail bandwidth failure probability that plain Monte Carlo could
   never see.

Run:  python examples/ota_adaptive.py           (~1 minute)
"""

import numpy as np

from repro import FusionProblem, Stage
from repro.applications import estimate_failure_probability
from repro.bmf import SequentialBmf
from repro.circuits import FiveTransistorOta
from repro.regression import relative_error


def main():
    rng = np.random.default_rng(2016)
    ota = FiveTransistorOta()
    metric = "unity_gain_bandwidth"
    problem = FusionProblem(ota, metric, degree=2)
    print(f"{ota.name}: quadratic model, "
          f"{problem.early_basis.size} schematic terms -> "
          f"{problem.late_basis.size} post-layout terms "
          f"({len(problem.missing_indices())} without prior)")

    # --- schematic stage ---------------------------------------------------
    print("fitting schematic model (300 MNA simulations)...")
    alpha_early = problem.fit_early_model(300, rng, method="ridge")
    aligned = problem.align_early_coefficients(alpha_early)

    # --- adaptive late-stage collection -------------------------------------
    sequential = SequentialBmf(
        problem.late_basis,
        aligned,
        prior_kind="select",
        missing_indices=problem.missing_indices(),
    )
    batch_size = 8
    while sequential.num_samples < 80:
        x = ota.sample(Stage.POST_LAYOUT, batch_size, rng)
        f = ota.simulate(Stage.POST_LAYOUT, x, metric)
        sequential.add_samples(x, f)
        print(f"  {sequential.num_samples:3d} samples, "
              f"CV error {sequential.cv_error_history[-1]:.4%}")
        if sequential.has_converged(relative_improvement=0.10, window=2):
            print("  CV error has flattened -- stopping the simulation loop.")
            break

    # --- validation ----------------------------------------------------------
    x_test = ota.sample(Stage.POST_LAYOUT, 200, rng)
    f_test = ota.simulate(Stage.POST_LAYOUT, x_test, metric)
    error = relative_error(sequential.predict(x_test), f_test)
    print(f"fused quadratic model: {error:.4%} error on 200 held-out samples")

    # --- rare-failure yield ---------------------------------------------------
    model = sequential.model.fitted_model()
    spec = float(np.mean(f_test) - 4.5 * np.std(f_test))
    result = estimate_failure_probability(
        model, 200_000, rng, spec_low=spec
    )
    print(f"\nminimum-bandwidth spec: {spec / 1e6:.2f} MHz (~4.5 sigma)")
    print(f"P(fail) = {result.probability:.3e} +/- {result.std_error:.1e} "
          f"({result.sigma_level():.2f} sigma equivalent)")
    print("plain Monte Carlo would need ~1e7 simulations to see one failure;")
    print(f"importance sampling resolved it with {result.num_samples} model "
          "evaluations.")


if __name__ == "__main__":
    main()
