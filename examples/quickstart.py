"""Quickstart: Bayesian model fusion on a synthetic modeling problem.

Demonstrates the core BMF workflow of the paper on a self-contained
synthetic example (no circuit simulation needed):

1. a "true" late-stage linear performance model in 500 variables;
2. an early-stage model whose coefficients are similar but not identical
   (as a schematic model is to a post-layout model);
3. fuse the early coefficients with only 60 late-stage samples and compare
   against OMP fitted on the same 60 samples.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BmfRegressor, OrthonormalBasis, OrthogonalMatchingPursuit
from repro.regression import relative_error


def main():
    rng = np.random.default_rng(2013)
    num_vars, num_late_samples = 500, 60

    # --- the "circuit": a sparse linear performance function ------------
    basis = OrthonormalBasis.linear(num_vars)
    alpha_true = np.zeros(basis.size)
    alpha_true[0] = 10.0  # nominal performance (constant term)
    important = rng.choice(np.arange(1, basis.size), size=40, replace=False)
    alpha_true[important] = rng.normal(0.0, 0.25, size=40)

    # --- early-stage knowledge: similar, not identical ------------------
    alpha_early = alpha_true * (1.0 + 0.15 * rng.normal(size=basis.size))

    # --- very few late-stage "simulations" ------------------------------
    x_train = rng.standard_normal((num_late_samples, num_vars))
    f_train = basis.evaluate(alpha_true, x_train) + 0.01 * rng.normal(
        size=num_late_samples
    )
    x_test = rng.standard_normal((3000, num_vars))
    f_test = basis.evaluate(alpha_true, x_test)

    # --- fuse ------------------------------------------------------------
    bmf = BmfRegressor(basis, alpha_early, prior_kind="select")
    bmf.fit(x_train, f_train)
    bmf_error = relative_error(bmf.predict(x_test), f_test)

    omp = OrthogonalMatchingPursuit(basis)
    omp.fit(x_train, f_train)
    omp_error = relative_error(omp.predict(x_test), f_test)

    print(f"variables: {num_vars}, late-stage samples: {num_late_samples}")
    print(f"BMF-PS error : {bmf_error:.4%}  "
          f"(chose {bmf.chosen_prior_.name} prior, eta={bmf.chosen_eta_:.3g})")
    print(f"OMP error    : {omp_error:.4%}  "
          f"({len(omp.selected_terms_)} terms selected)")
    print(f"BMF is {omp_error / bmf_error:.1f}x more accurate with the same data.")


if __name__ == "__main__":
    main()
