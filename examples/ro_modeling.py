"""Ring-oscillator post-layout modeling with early-stage reuse (Section V-A).

Reproduces the paper's flow on the synthetic 32 nm-style ring oscillator:

1. fit the schematic-stage frequency model with OMP on 3000 cheap samples;
2. fuse it with only 100 *post-layout* samples via BMF-PS (prior selection,
   missing-prior handling for the layout-parasitic variables);
3. compare against OMP given 100 and 900 post-layout samples;
4. rank the devices dominating the frequency variability.

Run:  python examples/ro_modeling.py            (~1-2 minutes)
"""

import numpy as np

from repro import BmfRegressor, FusionProblem, RingOscillator, Stage
from repro.applications import top_contributors
from repro.montecarlo import simulate_dataset
from repro.regression import FittedModel, OrthogonalMatchingPursuit, relative_error


def main():
    rng = np.random.default_rng(42)
    ro = RingOscillator()
    metric = "frequency"
    print(f"{ro.name}: {ro.num_vars(Stage.SCHEMATIC)} schematic variables, "
          f"{ro.num_vars(Stage.POST_LAYOUT)} post-layout variables")

    # --- step 1: early-stage (schematic) model ---------------------------
    problem = FusionProblem(ro, metric)
    print("fitting schematic model (OMP on 3000 samples)...")
    alpha_early = problem.fit_early_model(3000, rng, method="omp")
    aligned = problem.align_early_coefficients(alpha_early)

    # --- step 2: late-stage data -----------------------------------------
    train = simulate_dataset(ro, Stage.POST_LAYOUT, 900, rng, [metric])
    test = simulate_dataset(ro, Stage.POST_LAYOUT, 300, rng, [metric])

    # --- step 3: BMF-PS with 100 samples vs OMP --------------------------
    few = train.head(100)
    bmf = BmfRegressor(
        problem.late_basis,
        aligned,
        prior_kind="select",
        missing_indices=problem.missing_indices(),
    )
    bmf.fit(few.x, few.metric(metric))
    bmf_error = relative_error(bmf.predict(test.x), test.metric(metric))
    print(f"BMF-PS @ 100 samples : {bmf_error:.4%} "
          f"(selected {bmf.chosen_prior_.name} prior)")

    for count in (100, 900):
        subset = train.head(count)
        omp = OrthogonalMatchingPursuit(problem.late_basis)
        omp.fit(subset.x, subset.metric(metric))
        error = relative_error(omp.predict(test.x), test.metric(metric))
        print(f"OMP    @ {count} samples : {error:.4%}")

    print("\n=> BMF with 100 post-layout simulations matches OMP with 900:")
    print("   a 9x reduction in (multi-hour-per-sample) simulation cost.")

    # --- step 4: who drives the variability? -----------------------------
    model = FittedModel(problem.late_basis, bmf.coefficients_)
    print("\nTop variance contributors (post-layout frequency):")
    for name, share in top_contributors(model, ro.space(Stage.POST_LAYOUT), count=8):
        print(f"  {name:<20s} {share:6.2%}")


if __name__ == "__main__":
    main()
