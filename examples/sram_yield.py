"""SRAM read-delay modeling and parametric yield estimation (Section V-B).

Builds the post-layout read-delay model of the SRAM read path with BMF-PS
from only 100 samples, then uses it for the downstream tasks performance
models exist for (refs. [17], [18] of the paper):

* parametric yield against a read-delay spec, validated against direct
  Monte Carlo simulation;
* worst-case corner extraction at 3 sigma.

Run:  python examples/sram_yield.py            (~1-2 minutes)
"""

import numpy as np

from repro import BmfRegressor, FusionProblem, SramReadPath, Stage
from repro.applications import estimate_yield, estimate_yield_direct, worst_case_corner
from repro.montecarlo import simulate_dataset
from repro.regression import relative_error


def main():
    rng = np.random.default_rng(7)
    sram = SramReadPath(n_cells=32, n_timing=10)
    metric = "read_delay"
    print(f"{sram.name}: {sram.num_vars(Stage.POST_LAYOUT)} post-layout variables")

    # --- model the read delay with BMF -----------------------------------
    problem = FusionProblem(sram, metric)
    print("fitting schematic model (OMP on 3000 samples)...")
    alpha_early = problem.fit_early_model(3000, rng, method="omp", max_terms=400)

    train = simulate_dataset(sram, Stage.POST_LAYOUT, 100, rng, [metric])
    test = simulate_dataset(sram, Stage.POST_LAYOUT, 300, rng, [metric])
    bmf = BmfRegressor(
        problem.late_basis,
        problem.align_early_coefficients(alpha_early),
        prior_kind="select",
        missing_indices=problem.missing_indices(),
    )
    bmf.fit(train.x, train.metric(metric))
    error = relative_error(bmf.predict(test.x), test.metric(metric))
    print(f"BMF-PS read-delay model from 100 samples: {error:.4%} error")
    model = bmf.fitted_model()

    # --- parametric yield -------------------------------------------------
    delays = test.metric(metric)
    spec = float(np.mean(delays) + 2.0 * np.std(delays))
    print(f"\nread-delay spec: {spec * 1e12:.2f} ps")

    model_yield = estimate_yield(model, 200_000, rng, spec_high=spec)
    direct_yield = estimate_yield_direct(
        sram, Stage.POST_LAYOUT, metric, 20_000, rng, spec_high=spec
    )
    print(f"model-based yield  : {model_yield.probability:.4f} "
          f"+/- {model_yield.std_error:.4f}  (200k model evaluations, instant)")
    print(f"direct-MC yield    : {direct_yield.probability:.4f} "
          f"+/- {direct_yield.std_error:.4f}  (20k 'simulations')")

    # --- worst-case corner --------------------------------------------------
    corner = worst_case_corner(model, sigma=3.0, direction="max")
    simulated = sram.simulate(Stage.POST_LAYOUT, corner.x[np.newaxis, :], metric)[0]
    print(f"\n3-sigma worst-case corner: model predicts "
          f"{corner.value * 1e12:.2f} ps, simulation gives {simulated * 1e12:.2f} ps")
    print(f"(nominal is {np.median(delays) * 1e12:.2f} ps)")


if __name__ == "__main__":
    main()
