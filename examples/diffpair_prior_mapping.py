"""Prior mapping for multifinger devices (Section IV-A), on a real netlist.

The input offset voltage of a differential pair is simulated with the
package's MNA (SPICE-lite) engine.  At the schematic stage each input
transistor is one device; after layout each is drawn with two fingers, and
every finger has its own threshold-mismatch variable -- so the post-layout
model has *different basis functions* than the schematic model.

The paper's prior-mapping rule (eq. 49) distributes each schematic
coefficient over its finger set as ``beta = alpha_E / sqrt(T)``.  This
example shows that the mapped prior lets BMF fit the post-layout offset
model from *fewer samples than it has coefficients*, where plain least
squares cannot even be formulated.

Run:  python examples/diffpair_prior_mapping.py     (~30 seconds)
"""

import math

import numpy as np

from repro import BmfRegressor, DifferentialPair, Stage
from repro.basis import OrthonormalBasis
from repro.bmf import map_prior_coefficients, uninformative_prior
from repro.regression import LeastSquaresRegressor, relative_error


def main():
    rng = np.random.default_rng(19)
    dp = DifferentialPair(fingers=2)
    metric = "offset_voltage"

    # --- schematic stage: plenty of cheap samples, plain least squares ---
    early_basis = OrthonormalBasis.linear(dp.num_vars(Stage.SCHEMATIC))
    x_early = dp.sample(Stage.SCHEMATIC, 200, rng)
    f_early = dp.simulate(Stage.SCHEMATIC, x_early, metric)
    early = LeastSquaresRegressor(early_basis).fit(x_early, f_early)
    print("schematic offset model (eq. 36):")
    labels = ["const", "vth(M1)", "vth(M2)", "R1", "R2"]
    for label, coefficient in zip(labels, early.coefficients_):
        print(f"  {label:<8s} {coefficient * 1e3:+8.4f} mV/sigma")

    # --- map the prior onto the two-finger post-layout basis (eq. 49) ----
    mapping = map_prior_coefficients(early_basis, early.coefficients_, dp.finger_map())
    print(f"\nmapped {early_basis.size} schematic coefficients onto "
          f"{mapping.late_basis.size} post-layout basis functions")
    m1 = early.coefficients_[1]
    print(f"  e.g. vth(M1) {m1 * 1e3:+.4f} mV -> each finger "
          f"{m1 / math.sqrt(2) * 1e3:+.4f} mV  (alpha / sqrt(2))")

    # --- post-layout stage: fewer samples than coefficients --------------
    num_late = 5  # the mapped basis has 7 coefficients!
    x_late = dp.sample(Stage.POST_LAYOUT, num_late, rng)
    f_late = dp.simulate(Stage.POST_LAYOUT, x_late, metric)
    x_test = dp.sample(Stage.POST_LAYOUT, 300, rng)
    f_test = dp.simulate(Stage.POST_LAYOUT, x_test, metric)

    fused = BmfRegressor(mapping.late_basis, mapping.beta, prior_kind="select")
    fused.fit(x_late, f_late)
    fused_error = relative_error(fused.predict(x_test), f_test)

    blind = BmfRegressor(
        mapping.late_basis,
        priors=[uninformative_prior(mapping.late_basis.size)],
        prior_kind="zero-mean",
    )
    blind.fit(x_late, f_late)
    blind_error = relative_error(blind.predict(x_test), f_test)

    print(f"\npost-layout model from {num_late} samples "
          f"({mapping.late_basis.size} unknown coefficients):")
    print(f"  BMF with mapped prior : {fused_error:.4%} error "
          f"({fused.chosen_prior_.name})")
    print(f"  no prior knowledge    : {blind_error:.4%} error")
    print("  plain least squares   : not even solvable (underdetermined)")


if __name__ == "__main__":
    main()
