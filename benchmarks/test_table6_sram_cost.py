"""Table VI: modeling error and cost for the SRAM -- OMP@400 vs BMF-PS@100.

Paper reference:

                                    | OMP     | BMF-PS (fast solver)
    # of post-layout samples        | 400     | 100
    Modeling error for read delay   | 1.1330% | 1.0804%
    Simulation cost (Hour)          | 38.77   | 9.69
    Total modeling cost (Hour)      | 38.80   | 9.70     -> 4x speedup
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.experiments import SRAM_COST_MODEL, run_cost_comparison, scale

METRIC = "read_delay"


def test_table6_sram_cost(benchmark, sram):
    early = {METRIC: cached_early_coefficients(sram, METRIC, 3000, 400)}

    def run():
        return run_cost_comparison(
            sram,
            (METRIC,),
            SRAM_COST_MODEL,
            baseline_samples=400,
            fused_samples=100,
            rng=np.random.default_rng(106),
            omp_max_terms=400,
            early_coefficients=early,
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table6_sram_cost", comparison.format())

    assert comparison.speedup > 3.8
    assert abs(comparison.baseline.simulation_hours - 38.77) < 0.01
    assert abs(comparison.fused.simulation_hours - 9.69) < 0.01
    factor = 1.5 if scale() == "small" else 1.15
    assert comparison.fused.errors[METRIC] <= factor * (
        comparison.baseline.errors[METRIC]
    )
