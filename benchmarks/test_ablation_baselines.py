"""Ablation: is BMF's win the prior, or just regularization?

BMF regularizes -- so do ridge and the elastic net [15].  This ablation
fits the RO frequency model at K=150 with OMP, ridge (CV penalty), elastic
net (CV penalty), an *uninformative* BMF (regularization but no early-stage
information), and BMF-PS.  Only BMF-PS has the early-stage prior; it must
beat every prior-free method by a clear margin, isolating the contribution
of the reused early-stage data.
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.bmf import BmfRegressor, uninformative_prior
from repro.circuits import Stage
from repro.circuits.modeling import FusionProblem
from repro.montecarlo import simulate_dataset
from repro.regression import (
    ElasticNetRegressor,
    LeastAngleRegression,
    OrthogonalMatchingPursuit,
    RidgeRegressor,
    SparseBayesianRegressor,
    relative_error,
)

METRIC = "frequency"
TRAIN = 150


def test_ablation_baselines(benchmark, ring_oscillator):
    problem = FusionProblem(ring_oscillator, METRIC)
    alpha_early = cached_early_coefficients(ring_oscillator, METRIC, 3000, 300)
    aligned = problem.align_early_coefficients(alpha_early)
    basis = problem.late_basis

    rng = np.random.default_rng(116)
    train = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, TRAIN, rng, [METRIC])
    test = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, 300, rng, [METRIC])
    design = basis.design_matrix(train.x)
    design_test = basis.design_matrix(test.x)
    target = train.metric(METRIC)
    target_test = test.metric(METRIC)

    def error_of(coefficients: np.ndarray) -> float:
        return relative_error(design_test @ coefficients, target_test)

    def run():
        errors = {}
        errors["OMP"] = error_of(
            OrthogonalMatchingPursuit(basis).fit_design(design, target)
        )
        # Ridge with a small CV sweep over penalties.
        best = np.inf
        for penalty in np.geomspace(1e-2, 1e4, 7):
            candidate = error_of(
                RidgeRegressor(basis, penalty=penalty).fit_design(design, target)
            )
            best = min(best, candidate)
        errors["ridge (oracle penalty)"] = best
        errors["elastic net"] = error_of(
            ElasticNetRegressor(
                basis, num_penalties=8, max_sweeps=100, n_folds=3
            ).fit_design(design, target)
        )
        errors["LAR"] = error_of(
            LeastAngleRegression(basis).fit_design(design, target)
        )
        errors["sparse Bayesian (RVM)"] = error_of(
            SparseBayesianRegressor(basis).fit_design(design, target)
        )
        # Flat-prior BMF control, centered for a fair intercept treatment
        # (the real priors carry the nominal value; a flat prior does not).
        offset = float(target.mean())
        flat = BmfRegressor(
            basis,
            priors=[uninformative_prior(basis.size)],
            prior_kind="zero-mean",
        ).fit_design(design, target - offset)
        flat = flat.copy()
        flat[0] += offset
        errors["BMF (no prior info)"] = error_of(flat)
        errors["BMF-PS (early-stage prior)"] = error_of(
            BmfRegressor(
                basis,
                aligned,
                prior_kind="select",
                missing_indices=problem.missing_indices(),
            ).fit_design(design, target)
        )
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"Baseline ablation ({METRIC}, K={TRAIN}, M={basis.size})"]
    for name, error in errors.items():
        lines.append(f"  {name:<28s} {error * 100:.4f}%")
    save_result("ablation_baselines", "\n".join(lines))

    fused = errors["BMF-PS (early-stage prior)"]
    for name, error in errors.items():
        if name != "BMF-PS (early-stage prior)":
            assert fused < 0.8 * error, (
                f"BMF with the early-stage prior should clearly beat {name}"
            )
