"""Table I: relative modeling error of POWER for the ring oscillator.

Paper reference (32 nm SOI RO, 7177 variables, 50 repeats):

    K    | OMP    | BMF-ZM | BMF-NZM | BMF-PS
    100  | 2.7187 | 0.7466 | 0.5558  | 0.5558
    900  | 0.8671 | 0.4501 | 0.4525  | 0.4518

Shape requirements verified here: errors decrease with K; every BMF
variant beats OMP at small K by a multiple; BMF-PS tracks the better of
ZM/NZM; BMF-PS at K=100 is comparable to OMP at K=900.
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.experiments import (
    early_samples,
    repeats,
    run_error_table,
    scale,
    table_sample_counts,
)

METRIC = "power"


def test_table1_ro_power(benchmark, ring_oscillator):
    alpha_early = cached_early_coefficients(
        ring_oscillator, METRIC, early_samples(), max_terms=300
    )

    def run():
        return run_error_table(
            ring_oscillator,
            METRIC,
            sample_counts=table_sample_counts(),
            repeats=repeats(),
            rng=np.random.default_rng(101),
            alpha_early=alpha_early,
            omp_max_terms=300,
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table1_ro_power", table.format())

    counts = table.sample_counts
    first, last = counts[0], counts[-1]
    i0, i9 = 0, len(counts) - 1
    for method in table.errors:
        assert table.errors[method][i9] < table.errors[method][i0], (
            f"{method} error must decrease from K={first} to K={last}"
        )
    # BMF beats OMP by a clear factor at small K.
    assert table.errors["BMF-PS"][i0] < 0.75 * table.errors["OMP"][i0]
    # Prior selection tracks the better prior at every K.
    for i in range(len(counts)):
        best = min(table.errors["BMF-ZM"][i], table.errors["BMF-NZM"][i])
        assert table.errors["BMF-PS"][i] <= 1.3 * best
    # BMF at K=100 rivals OMP at K=900 (strict at paper scale; the small
    # problem lets OMP catch up more at K=900, hence the looser factor).
    factor = 1.75 if scale() == "small" else 1.2
    assert table.errors["BMF-PS"][i0] <= factor * table.errors["OMP"][i9]
