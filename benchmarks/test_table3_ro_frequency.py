"""Table III: relative modeling error of FREQUENCY for the ring oscillator.

Paper reference:

    K    | OMP    | BMF-ZM | BMF-NZM | BMF-PS
    100  | 1.8346 | 0.5800 | 0.6664  | 0.6069
    900  | 0.7471 | 0.2487 | 0.2500  | 0.2487

Note the paper's observation on this metric: the *zero-mean* prior beats
the nonzero-mean one (the opposite of the power metric), demonstrating
that the optimal prior is case-dependent -- which is exactly why BMF-PS
exists.  We assert the case-independence property (PS tracks the winner)
rather than which variant wins, since the winner depends on the synthetic
layout realization.
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.experiments import (
    early_samples,
    repeats,
    run_error_table,
    scale,
    table_sample_counts,
)

METRIC = "frequency"


def test_table3_ro_frequency(benchmark, ring_oscillator):
    alpha_early = cached_early_coefficients(
        ring_oscillator, METRIC, early_samples(), max_terms=300
    )

    def run():
        return run_error_table(
            ring_oscillator,
            METRIC,
            sample_counts=table_sample_counts(),
            repeats=repeats(),
            rng=np.random.default_rng(103),
            alpha_early=alpha_early,
            omp_max_terms=300,
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table3_ro_frequency", table.format())

    i0, i9 = 0, len(table.sample_counts) - 1
    for method in table.errors:
        assert table.errors[method][i9] < table.errors[method][i0]
    assert table.errors["BMF-PS"][i0] < 0.75 * table.errors["OMP"][i0]
    for i in range(len(table.sample_counts)):
        best = min(table.errors["BMF-ZM"][i], table.errors["BMF-NZM"][i])
        assert table.errors["BMF-PS"][i] <= 1.3 * best
    factor = 1.75 if scale() == "small" else 1.2
    assert table.errors["BMF-PS"][i0] <= factor * table.errors["OMP"][i9]
