"""Benchmark guards for generational store compaction.

Two bars from the ISSUE:

* **recovery speedup** -- with 500 superseded versions on disk, full
  recovery of a compacted store (snapshot + live tail) must be >= 3x
  faster than replaying the uncompacted journal, because compaction is
  exactly the knob that keeps long-lived serving fleets cheap to
  restart;
* **serving unaffected** -- the store-backed cached serving path must
  keep the >= 4.75x bar of ``test_runtime_vectorization`` when the model
  is served out of a *compacted* generation: compaction does its work at
  maintenance time, never on the serve path.
"""

from __future__ import annotations

import shutil
import time

import numpy as np

from conftest import save_result
from repro.basis import OrthonormalBasis
from repro.regression import FittedModel
from repro.runtime import DesignMatrixCache, set_design_cache
from repro.serving import ModelRegistry
from repro.store import ModelStore, RecoveryManager, compact

#: The ISSUE working point: 500 superseded generations of one model.
SUPERSEDED = 500
RECOVERY_REPEATS = 3

# The >= 4.75x serving bar's working point (test_runtime_vectorization).
R = 100
K = 2000
DEGREE = 2
REPEATS = 3


def _best_of(repeats, fn):
    best = np.inf
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_compacted_recovery_speedup(benchmark, tmp_path):
    basis = OrthonormalBasis.total_degree(4, 2)
    rng = np.random.default_rng(13)

    def run():
        full_root = tmp_path / "full"
        store = ModelStore(full_root, use_fsync=False)
        registry = ModelRegistry(store=store, max_versions=2)
        for _ in range(SUPERSEDED + 1):
            registry.publish(
                "power", FittedModel(basis, rng.standard_normal(basis.size))
            )

        # Same history twice: one copy stays append-only, one compacts.
        compacted_root = tmp_path / "compacted"
        shutil.copytree(full_root, compacted_root)
        # history_window=1 keeps the same two versions max_versions=2
        # registries retain, so both recoveries see identical history.
        report = compact(
            ModelStore(compacted_root, use_fsync=False), history_window=1
        )
        assert len(report.dropped) == SUPERSEDED - 1

        def recover(root):
            out = RecoveryManager(ModelStore(root, use_fsync=False)).recover(
                registry=ModelRegistry(max_versions=2),
                quarantine_corrupt=False,
            )
            return out

        full_seconds, full = _best_of(
            RECOVERY_REPEATS, lambda: recover(full_root)
        )
        compacted_seconds, compacted_report = _best_of(
            RECOVERY_REPEATS, lambda: recover(compacted_root)
        )

        return {
            "full_seconds": full_seconds,
            "compacted_seconds": compacted_seconds,
            "speedup": full_seconds / compacted_seconds,
            "full_snapshot": full.registry.snapshot(),
            "compacted_snapshot": compacted_report.registry.snapshot(),
            "compacted_restored": compacted_report.restored,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    # Same answer, much faster: the registry state is bitwise identical.
    assert result["compacted_snapshot"] == result["full_snapshot"]
    assert result["compacted_restored"] == (
        ("power", SUPERSEDED),
        ("power", SUPERSEDED + 1),
    )
    assert result["speedup"] >= 3.0, (
        f"compacted recovery only {result['speedup']:.2f}x faster than full "
        f"replay over {SUPERSEDED} superseded versions (bar: 3x)"
    )
    save_result(
        "store_compaction_recovery",
        f"Recovery over {SUPERSEDED} superseded versions: full replay "
        f"{result['full_seconds'] * 1e3:.2f} ms, compacted "
        f"{result['compacted_seconds'] * 1e3:.2f} ms "
        f"({result['speedup']:.2f}x)",
    )


def test_compacted_store_serving_path_keeps_speedup(benchmark, tmp_path):
    basis = OrthonormalBasis.total_degree(R, DEGREE)
    x = np.random.default_rng(42).standard_normal((K, R))
    coefficients = np.random.default_rng(7).standard_normal(basis.size)

    def run():
        loop_seconds, reference = _best_of(
            REPEATS, lambda: basis._design_matrix_loop(x)
        )

        store = ModelStore(tmp_path / "store")  # durability on: real fsyncs
        registry = ModelRegistry(store=store)
        registry.publish("power", FittedModel(basis, coefficients))
        registry.publish("power", FittedModel(basis, coefficients))
        compact(store, history_window=0)  # maintenance happens pre-serve

        recovered = RecoveryManager(store).recover(
            registry=ModelRegistry(store=store)
        )
        model = recovered.registry.model("power")

        previous = set_design_cache(DesignMatrixCache())
        try:
            model.basis.design_matrix(x)  # warming miss
            served_seconds, served = _best_of(
                REPEATS, lambda: model.basis.design_matrix(x)
            )
        finally:
            set_design_cache(previous)

        return {
            "loop_seconds": loop_seconds,
            "served_seconds": served_seconds,
            "served_speedup": loop_seconds / served_seconds,
            "generation": store.generation,
            "records": len(store.record_paths()),
            "reference": reference,
            "served": served,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result["generation"] == 1  # really serving out of a compaction
    assert result["records"] == 1  # the superseded version was dropped
    assert np.allclose(result["served"], result["reference"])
    assert result["served_speedup"] >= 4.75, (
        "compacted-store cached serving path only "
        f"{result['served_speedup']:.2f}x faster (bar: within 5% of 5.0x)"
    )
    save_result(
        "store_compaction_serving",
        "Compacted-store cached serving path, quadratic basis, "
        f"R = {R}, K = {K}: loop {result['loop_seconds'] * 1e3:.2f} ms, "
        f"served {result['served_seconds'] * 1e3:.2f} ms "
        f"({result['served_speedup']:.2f}x)",
    )
