"""Runtime-layer benchmark: vectorized + cached design-matrix assembly.

Measures quadratic-basis design-matrix assembly at the paper's "large"
working point -- R = 100 variables, K = 2000 Monte Carlo samples,
M = 5151 basis functions -- three ways:

* ``loop``:       the pre-PR per-column Python loop
  (kept as ``OrthonormalBasis._design_matrix_loop`` for reference);
* ``vectorized``: one cold pass through the blocked gather-product assembly
  (cache bypassed);
* ``cached``:     the production ``design_matrix`` entry point on repeated
  requests for the same (basis, samples) pair -- the pattern of the
  cross-validation sweep and the multi-metric cost runners, where the pool
  is fixed and the matrix is re-requested per metric / per method.

Assertions: the served (cached) path is >= 5x faster than the pre-PR loop,
a single cold vectorized pass is >= 1.3x faster, and both produce the same
matrix to ``np.allclose`` tolerance.  On this box the cold pass is bounded
below by pure memory bandwidth (the 82 MB output is written once and
multiplied once), which is why the 5x headline belongs to the serving path.
The cold floor was 2x when ``design_matrix`` returned Fortran-ordered
output; the array contract introduced with ``repro.analysis`` guarantees
C-contiguous float64 on every path, and row-major assembly of a
column-defined basis costs real bandwidth (measured best ~1.5-2.3x
depending on load), so the floor asserts a solid-but-smaller margin.
"""

import time

import numpy as np

from conftest import save_result
from repro.basis import OrthonormalBasis
from repro.regression import FittedModel
from repro.runtime import DesignMatrixCache, set_design_cache
from repro.serving import ModelRegistry
from repro.store import ModelStore

R = 100
K = 2000
DEGREE = 2
REPEATS = 3


def _best_of(repeats, fn):
    best = np.inf
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_design_matrix_vectorization_speedup(benchmark):
    basis = OrthonormalBasis.total_degree(R, DEGREE)
    x = np.random.default_rng(42).standard_normal((K, R))

    def run():
        # Pre-PR reference: one Python-level loop iteration per basis column.
        loop_seconds, reference = _best_of(REPEATS, lambda: basis._design_matrix_loop(x))

        # Cold vectorized assembly, cache bypassed.
        previous = set_design_cache(None)
        try:
            cold_seconds, vectorized = _best_of(REPEATS, lambda: basis.design_matrix(x))
        finally:
            set_design_cache(previous)

        # Production serving path: fresh cache, one warming miss, then
        # repeated requests for the same (basis, samples) pair.
        previous = set_design_cache(DesignMatrixCache())
        try:
            basis.design_matrix(x)
            served_seconds, served = _best_of(REPEATS, lambda: basis.design_matrix(x))
        finally:
            set_design_cache(previous)

        return {
            "loop_seconds": loop_seconds,
            "cold_seconds": cold_seconds,
            "served_seconds": served_seconds,
            "cold_speedup": loop_seconds / cold_seconds,
            "served_speedup": loop_seconds / served_seconds,
            "reference": reference,
            "vectorized": vectorized,
            "served": served,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert np.allclose(result["vectorized"], result["reference"])
    assert np.allclose(result["served"], result["reference"])
    assert result["served_speedup"] >= 5.0, (
        f"cached serving path only {result['served_speedup']:.2f}x faster"
    )
    # The floor is intentionally below the ~1.9x typical margin: the cold
    # path now also guarantees C-contiguous output (see module docstring),
    # and this single-core box's timings jitter by +/- 20%.
    assert result["cold_speedup"] >= 1.3, (
        f"cold vectorized assembly only {result['cold_speedup']:.2f}x faster"
    )

    lines = [
        "Design-matrix assembly: quadratic basis, "
        f"R = {R}, K = {K}, M = {basis.size}",
        f"  per-column loop (pre-PR)   {result['loop_seconds'] * 1e3:9.2f} ms",
        f"  vectorized, cold           {result['cold_seconds'] * 1e3:9.2f} ms"
        f"   ({result['cold_speedup']:.2f}x)",
        f"  cached serving path        {result['served_seconds'] * 1e3:9.2f} ms"
        f"   ({result['served_speedup']:.2f}x)",
    ]
    save_result("runtime_vectorization", "\n".join(lines))


def test_store_backed_serving_path_keeps_speedup(benchmark, tmp_path):
    """Crash-safe persistence must not tax the serve path.

    The store does all its work at *publish* time (encode, fsync, rename,
    journal); once a version is registered, serving resolves the same
    frozen model and hits the same design-matrix cache as before.  This
    guard publishes through a store-backed registry (real fsyncs, no
    failpoints armed) and re-measures the cached serving path of
    ``test_design_matrix_vectorization_speedup`` -- the speedup must stay
    within 5% of that test's 5.0x bar (>= 4.75x).
    """
    basis = OrthonormalBasis.total_degree(R, DEGREE)
    x = np.random.default_rng(42).standard_normal((K, R))
    coefficients = np.random.default_rng(7).standard_normal(basis.size)

    def run():
        loop_seconds, reference = _best_of(REPEATS, lambda: basis._design_matrix_loop(x))

        store = ModelStore(tmp_path / "store")  # durability on: real fsyncs
        registry = ModelRegistry(store=store)
        registry.publish("power", FittedModel(basis, coefficients))
        model = registry.model("power")

        previous = set_design_cache(DesignMatrixCache())
        try:
            model.basis.design_matrix(x)  # warming miss
            served_seconds, served = _best_of(
                REPEATS, lambda: model.basis.design_matrix(x)
            )
        finally:
            set_design_cache(previous)

        return {
            "loop_seconds": loop_seconds,
            "served_seconds": served_seconds,
            "served_speedup": loop_seconds / served_seconds,
            "records": len(store.record_paths()),
            "reference": reference,
            "served": served,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result["records"] == 1  # persistence really was enabled
    assert np.allclose(result["served"], result["reference"])
    assert result["served_speedup"] >= 4.75, (
        "store-backed cached serving path only "
        f"{result['served_speedup']:.2f}x faster (bar: within 5% of 5.0x)"
    )
    save_result(
        "runtime_store_serving",
        "Store-backed cached serving path, quadratic basis, "
        f"R = {R}, K = {K}: loop {result['loop_seconds'] * 1e3:.2f} ms, "
        f"served {result['served_seconds'] * 1e3:.2f} ms "
        f"({result['served_speedup']:.2f}x)",
    )


def test_linear_design_matrix_vectorization(benchmark):
    """Linear bases (the SRAM path's 66k-variable regime) must not regress.

    Both the old per-column loop and the new two-assignment gather move the
    same ``K x (R + 1)`` floats, so at this shape the assembly is purely
    memory-bound; the vectorized path removes the Python per-column
    overhead but cannot beat bandwidth.  Assert parity-or-better plus exact
    agreement.
    """
    basis = OrthonormalBasis.linear(4000)
    x = np.random.default_rng(43).standard_normal((500, 4000))

    def run():
        loop_seconds, reference = _best_of(REPEATS, lambda: basis._design_matrix_loop(x))
        previous = set_design_cache(None)
        try:
            fast_seconds, fast = _best_of(REPEATS, lambda: basis.design_matrix(x))
        finally:
            set_design_cache(previous)
        return {
            "loop_seconds": loop_seconds,
            "fast_seconds": fast_seconds,
            "speedup": loop_seconds / fast_seconds,
            "reference": reference,
            "fast": fast,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert np.allclose(result["fast"], result["reference"])
    assert result["speedup"] >= 0.9, f"linear path regressed: {result['speedup']:.2f}x"
    save_result(
        "runtime_linear_design",
        "Linear design matrix, R = 4000, K = 500: "
        f"loop {result['loop_seconds'] * 1e3:.2f} ms, "
        f"vectorized {result['fast_seconds'] * 1e3:.2f} ms "
        f"({result['speedup']:.2f}x)",
    )
