"""Fig. 5: fitting cost of the RO models -- OMP vs BMF-PS (conventional
Cholesky solver) vs BMF-PS (fast low-rank solver).

The paper's Fig. 5 shows the fast solver up to 600x faster than the
conventional solver at M = 7177 basis functions, with the gap growing with
problem size.  We regenerate the wall-clock sweep (the conventional curve
runs the same cross-validation structure with O(M^3) solves) and a
single-solve microbenchmark isolating the solver ratio, asserting

* fast solver beats the conventional solver per solve,
* the two solvers agree to floating-point accuracy (the low-rank update is
  exact, Section IV-C),
* full BMF-PS fitting with the fast solver is cheaper than the
  conventional-solver fit.
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.bmf import nonzero_mean_prior
from repro.circuits import Stage
from repro.circuits.modeling import FusionProblem
from repro.experiments import run_fitting_cost, scale, solver_speedup
from repro.montecarlo import simulate_dataset

METRIC = "frequency"


def test_fig5_ro_fitting_cost(benchmark, ring_oscillator):
    include_conventional = scale() in ("small", "medium")

    def run():
        return run_fitting_cost(
            ring_oscillator,
            METRIC,
            sample_counts=(100, 300, 500, 700, 900),
            rng=np.random.default_rng(109),
            include_conventional=include_conventional,
            omp_max_terms=300,
        )

    curve = benchmark.pedantic(run, rounds=1, iterations=1)

    # Single-solve microbenchmark (the "600x" claim at paper scale).  The
    # target is standardized (and the prior scaled to match) so that the
    # conventional M x M system is well-conditioned enough for its answer
    # to be meaningful -- with the raw ~6 GHz values the huge constant
    # coefficient makes the primal system numerically singular, which is
    # itself an argument for the dual-form fast solver.
    problem = FusionProblem(ring_oscillator, METRIC)
    alpha_early = cached_early_coefficients(ring_oscillator, METRIC, 3000, 300)
    aligned = problem.align_early_coefficients(alpha_early)
    rng = np.random.default_rng(110)
    data = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, 100, rng, [METRIC])
    design = problem.late_basis.design_matrix(data.x)
    target = data.metric(METRIC)
    center, spread = float(target.mean()), float(target.std())
    standardized = (target - center) / spread
    scaled = aligned / spread
    scaled[0] -= center / spread
    prior = nonzero_mean_prior(scaled).with_missing(problem.missing_indices())
    micro = solver_speedup(design, prior, eta=1.0, target=standardized)

    text = curve.format() + (
        f"\n\nSingle MAP solve at K=100, M={problem.late_basis.size}:"
        f"\n  fast solver   : {micro['fast_seconds'] * 1e3:.2f} ms"
        f"\n  conventional  : {micro['direct_seconds'] * 1e3:.2f} ms"
        f"\n  speedup       : {micro['speedup']:.1f}x"
        f"\n  max |fast - direct| / max|direct| = "
        f"{micro['max_relative_difference']:.2e}"
    )
    save_result("fig5_ro_fitting_cost", text)

    # The fast solver is exact and faster.
    assert micro["max_relative_difference"] < 1e-6
    assert micro["speedup"] > 1.5
    if include_conventional:
        # The Woodbury trick wins exactly when K < M (always true at the
        # paper's 7k-66k variable counts); at small scale the sweep's
        # largest K values cross above M, so only assert in-regime points.
        fast = curve.seconds["BMF-PS (fast solver)"]
        conventional = curve.seconds["BMF-PS (conventional solver)"]
        in_regime = [
            i for i, k in enumerate(curve.sample_counts) if k < curve.num_terms
        ]
        assert in_regime, "sweep should include K < M points"
        for i in in_regime:
            assert fast[i] < conventional[i]
