"""Table V: relative modeling error of READ DELAY for the SRAM read path.

Paper reference (66 117 variables, 50 repeats):

    K    | OMP    | BMF-ZM | BMF-NZM | BMF-PS
    100  | 3.2320 | 1.0592 | 1.1130  | 1.0804
    900  | 0.9974 | 0.6986 | 0.6958  | 0.6989

The paper's second observation on this table: BMF-NZM loses to BMF-ZM at
K=100 but wins for large K -- the optimal prior varies even for one metric.
We assert the selection property (PS tracks the per-K winner).
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.experiments import (
    early_samples,
    repeats,
    run_error_table,
    scale,
    table_sample_counts,
)

METRIC = "read_delay"


def test_table5_sram_delay(benchmark, sram):
    alpha_early = cached_early_coefficients(
        sram, METRIC, early_samples(), max_terms=400
    )

    def run():
        return run_error_table(
            sram,
            METRIC,
            sample_counts=table_sample_counts(),
            repeats=repeats(),
            rng=np.random.default_rng(105),
            alpha_early=alpha_early,
            omp_max_terms=400,
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table5_sram_delay", table.format())

    i0, i9 = 0, len(table.sample_counts) - 1
    for method in table.errors:
        assert table.errors[method][i9] < table.errors[method][i0]
    assert table.errors["BMF-PS"][i0] < 0.75 * table.errors["OMP"][i0]
    for i in range(len(table.sample_counts)):
        best = min(table.errors["BMF-ZM"][i], table.errors["BMF-NZM"][i])
        assert table.errors["BMF-PS"][i] <= 1.3 * best
    factor = 1.75 if scale() == "small" else 1.2
    assert table.errors["BMF-PS"][i0] <= factor * table.errors["OMP"][i9]
