"""Benchmark: synthetic load against the sharded serving tier.

Drives the :mod:`repro.loadgen` harness through its full scenario --
multi-tenant traffic with per-tenant quotas, a shard kill mid-run, and a
2x overload burst -- and archives the machine-readable JSON report
(p50/p99/p999 latency, throughput, shed/rebalance counts) under
``benchmarks/results/loadgen_serving.json``.  CI re-validates the file
against :data:`repro.loadgen.REPORT_SCHEMA`, so the report shape is a
tracked contract, not an incidental artifact.
"""

from __future__ import annotations

import json

from repro.loadgen import LoadConfig, run_load, validate_report

from conftest import save_result

CONFIG = LoadConfig(
    seed=0,
    num_requests=2000,
    num_tenants=16,
    num_models=12,
    num_shards=3,
    replication_factor=2,
    tenant_quota=120,
    max_queue_depth=64,
    workers=2,
    kill_shard_after=1000,
    overload_burst=2,
)


def test_loadgen_serving(results_dir, tmp_path):
    report = run_load(CONFIG, tmp_path / "store")

    # The serving tier may not drop accepted work on the floor.
    assert report.failed == 0
    assert report.expired == 0
    assert report.answered == report.admitted
    # The kill rebalanced keys onto warm replicas: zero store backfills.
    assert report.killed_shard is not None
    assert report.rebalanced_keys >= 1
    assert report.backfills == 0
    assert report.max_version_lag <= 1
    # Quota gate and overload burst both engaged.
    assert report.quota_rejected > 0
    assert report.burst_rejected == CONFIG.max_queue_depth
    assert report.latency_p50_ms <= report.latency_p99_ms

    path = report.write_json(results_dir / "loadgen_serving.json")
    validate_report(json.loads(path.read_text()))
    save_result("loadgen_serving", report.format())
