"""Shared fixtures for the benchmark suite.

Benchmarks regenerate every table and figure of the paper's Section V.
Scale is controlled by ``REPRO_SCALE`` (small | medium | paper) and the
number of repeated runs by ``REPRO_REPEATS`` -- see
:mod:`repro.experiments.config`.  Each benchmark writes its rendered
table/figure to ``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.circuits import RingOscillator, SramReadPath
from repro.circuits.modeling import FusionProblem
from repro.experiments import make_ring_oscillator, make_sram, scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Early-stage models are expensive (OMP on 3000 schematic samples) and
# reusable across benchmarks in one session; cache them per (circuit, metric).
_EARLY_CACHE: Dict[Tuple[str, str], np.ndarray] = {}


@pytest.fixture(scope="session")
def ring_oscillator() -> RingOscillator:
    return make_ring_oscillator()


@pytest.fixture(scope="session")
def sram() -> SramReadPath:
    return make_sram()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def cached_early_coefficients(
    testbench, metric: str, early_samples: int, max_terms: int, seed: int = 100
) -> np.ndarray:
    """Session-cached early-stage model fit (OMP on schematic samples)."""
    key = (testbench.name, metric, scale())
    if key not in _EARLY_CACHE:
        problem = FusionProblem(testbench, metric)
        rng = np.random.default_rng(seed)
        _EARLY_CACHE[key] = problem.fit_early_model(
            early_samples, rng, method="omp", max_terms=max_terms
        )
    return _EARLY_CACHE[key]
