"""Benchmark: incremental Woodbury refit vs from-scratch refit.

The streaming serving scenario of docs/serving.md: a fixed-eta
:class:`repro.bmf.SequentialBmf` has already absorbed ``K`` late-stage
samples and a batch of ``Delta-K`` new ones arrives.  The incremental path
grows the cached kernel by a rank-k border (``O(K * Delta-K * M)``) and
border-updates the Cholesky factor; the baseline rebuilds kernel and
factorization from scratch (``O(K^2 M)``).  The acceptance bar for the
serving-layer PR is a >= 3x speedup at K=400, Delta-K=20, M=5151.
"""

from __future__ import annotations

import time

import numpy as np

from repro.basis import OrthonormalBasis
from repro.bmf import SequentialBmf
from repro.runtime.cache import set_design_cache

from conftest import save_result

NUM_VARS = 100
DEGREE = 2  # M = 1 + 100 + 100*101/2 = 5151
WARM_SAMPLES = 400  # K
BATCH = 20  # Delta-K
REPEATS = 5
REQUIRED_SPEEDUP = 3.0


def build_stream(rng, basis):
    x = rng.normal(size=(WARM_SAMPLES + BATCH * REPEATS, NUM_VARS))
    truth = np.zeros(basis.size)
    truth[: NUM_VARS + 1] = rng.normal(size=NUM_VARS + 1)  # mostly-linear truth
    f = basis.design_matrix(x) @ truth + 0.01 * rng.normal(size=x.shape[0])
    alpha_early = truth + 0.05 * rng.normal(size=basis.size)
    return x, f, alpha_early


def timed_refits(sequential, x, f):
    """Feed REPEATS batches of size BATCH; return per-batch refit seconds."""
    seconds = []
    offset = WARM_SAMPLES
    for _ in range(REPEATS):
        start = time.perf_counter()
        sequential.add_samples(x[offset : offset + BATCH], f[offset : offset + BATCH])
        seconds.append(time.perf_counter() - start)
        offset += BATCH
    return seconds


def test_incremental_refit_speedup(results_dir):
    rng = np.random.default_rng(51_51)
    basis = OrthonormalBasis.total_degree(NUM_VARS, DEGREE)
    x, f, alpha_early = build_stream(rng, basis)

    # Fixed-eta serving configuration: hyper-parameter selection already
    # happened offline, each refit is a pure solve (the scenario in which
    # the refit latency is on the serving path).  The design cache is
    # disabled so the baseline pays its real assembly cost every refit.
    def fresh(incremental):
        sequential = SequentialBmf(
            basis,
            alpha_early,
            prior_kind="nonzero-mean",
            eta=0.5,
            incremental=incremental,
        )
        sequential.add_samples(x[:WARM_SAMPLES], f[:WARM_SAMPLES])
        return sequential

    previous_cache = set_design_cache(None)
    try:
        incremental = fresh(incremental=True)
        baseline = fresh(incremental=False)
        incremental_seconds = timed_refits(incremental, x, f)
        baseline_seconds = timed_refits(baseline, x, f)
    finally:
        set_design_cache(previous_cache)

    assert incremental.last_refit_mode == "incremental"
    assert baseline.last_refit_mode == "full"
    # Both paths converge to the same model.
    drift = np.linalg.norm(
        incremental.model.coefficients_ - baseline.model.coefficients_
    ) / np.linalg.norm(baseline.model.coefficients_)
    assert drift < 1e-8

    mean_incremental = float(np.mean(incremental_seconds))
    mean_baseline = float(np.mean(baseline_seconds))
    speedup = mean_baseline / mean_incremental

    lines = [
        "Incremental Woodbury refit vs from-scratch refit",
        f"  basis terms (M)       : {basis.size}",
        f"  warm samples (K)      : {WARM_SAMPLES}",
        f"  batch size (Delta-K)  : {BATCH}",
        f"  refits timed          : {REPEATS}",
        f"  from-scratch per refit: {mean_baseline * 1e3:8.2f} ms",
        f"  incremental per refit : {mean_incremental * 1e3:8.2f} ms",
        f"  speedup               : {speedup:8.2f} x",
        f"  coefficient drift     : {drift:.2e} (relative)",
    ]
    save_result("serving_incremental", "\n".join(lines))

    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental refit speedup {speedup:.2f}x is below the "
        f"{REQUIRED_SPEEDUP}x acceptance bar"
    )
