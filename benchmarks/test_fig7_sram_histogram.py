"""Fig. 7: histogram of post-layout Monte Carlo read-delay samples (SRAM).

The paper's Fig. 7 shows a single-moded, slightly right-skewed read-delay
distribution (the leakage race and sense-amp offset stretch the slow
tail).  We regenerate it and check those properties.
"""

import numpy as np

from conftest import save_result
from repro.circuits import Stage
from repro.experiments import metric_histogram


def test_fig7_sram_histogram(benchmark, sram):
    rng = np.random.default_rng(108)

    def run():
        return metric_histogram(
            sram, "read_delay", 3000, rng, stage=Stage.POST_LAYOUT
        )

    histogram = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig7_sram_histogram", histogram.format())

    assert int(histogram.counts.sum()) == 3000
    peak_bin = int(np.argmax(histogram.counts))
    assert 0 < peak_bin < len(histogram.counts) - 1
    # A few-percent relative spread, like the paper's plot.
    rel = histogram.std / histogram.mean
    assert 0.01 < rel < 0.15
    # Right skew from the leakage race: reconstruct skewness from bins.
    centers = 0.5 * (histogram.edges[:-1] + histogram.edges[1:])
    weights = histogram.counts / histogram.counts.sum()
    mean = float(np.sum(weights * centers))
    std = float(np.sqrt(np.sum(weights * (centers - mean) ** 2)))
    skew = float(np.sum(weights * ((centers - mean) / std) ** 3))
    assert skew > -0.2, "read delay should not be left-skewed"
