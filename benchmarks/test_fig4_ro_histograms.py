"""Fig. 4: histograms of post-layout Monte Carlo samples for the RO.

The paper's Fig. 4 shows (a) power, (b) phase noise, (c) frequency
histograms of the post-layout simulation samples -- roughly Gaussian,
single-moded, with a few percent relative spread.  We regenerate all three
as ASCII histograms and check their statistical shape.
"""

import numpy as np

from conftest import save_result
from repro.circuits import Stage
from repro.experiments import metric_histogram


def test_fig4_ro_histograms(benchmark, ring_oscillator):
    rng = np.random.default_rng(107)

    def run():
        return {
            metric: metric_histogram(
                ring_oscillator, metric, 3000, rng, stage=Stage.POST_LAYOUT
            )
            for metric in ring_oscillator.metrics
        }

    histograms = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n\n".join(h.format() for h in histograms.values())
    save_result("fig4_ro_histograms", text)

    for metric, histogram in histograms.items():
        total = int(histogram.counts.sum())
        assert total == 3000
        # Single-moded, centered bulk: the top bin is not at the edges.
        peak_bin = int(np.argmax(histogram.counts))
        assert 0 < peak_bin < len(histogram.counts) - 1, metric
        # A few-percent relative spread for power/frequency, sub-percent
        # for the dB-scaled phase noise (as in the paper's plots).
        rel = histogram.std / abs(histogram.mean)
        if metric == "phase_noise":
            assert rel < 0.02
        else:
            assert 0.01 < rel < 0.15
