"""Backend benchmark: fused serving kernel and compiled assembly.

Measures end-to-end prediction (design-matrix assembly + coefficient
matvec) at the paper's "large" working point -- R = 100 variables,
K = 2000 samples, M = 5151 quadratic basis functions -- on the serving
paths introduced with :mod:`repro.backends`:

* ``loop``:      the pre-vectorization per-column loop followed by a
                 matvec (the historical baseline);
* ``fused hot``: ``OrthonormalBasis.fused_predict`` on a warm design
                 cache -- one dispatch, a single matvec on the cached
                 read-only matrix;
* ``fused cold``: ``fused_predict`` with the cache disabled -- the
                 streaming kernel that never materializes the K x M
                 intermediate;
* ``cold unfused``: cache-bypassed ``design_matrix`` + matvec, what the
                 serving engine used to do on uncached batches.

Bars (recorded in ``benchmarks/results/backend_speedup.txt``): the fused
cached serving path must clear **8.0x** over the loop baseline -- strictly
above the previous 5.0x cached-design bar of
``test_runtime_vectorization.py``, which this PR keeps in force -- and the
streaming fused kernel must beat the materialize-then-matvec cold path by
**1.3x** (measured ~1.9x: it saves writing and re-reading the 82 MB
intermediate).

``test_numba_cold_assembly_speedup`` additionally pins the numba backend's
parallel-JIT assembly to >= 2.0x over numpy's cold assembly at the same
working point; it skips where the numba extra is not installed (the CI
backend matrix runs it and archives the numbers).
"""

import time

import numpy as np

from conftest import save_result
from repro.backends import backend_available, backend_unavailable_reason, use_backend
from repro.basis import OrthonormalBasis
from repro.runtime import DesignMatrixCache, set_design_cache

import pytest

R = 100
K = 2000
DEGREE = 2
REPEATS = 3

#: The fused cached serving bar; the pre-backend cached-design bar was 5.0x.
FUSED_HOT_BAR = 8.0
#: Streaming fused kernel vs. materialize-then-matvec on the same backend.
FUSED_COLD_BAR = 1.3
#: numba parallel-JIT cold assembly vs. numpy cold assembly (CI matrix only).
NUMBA_COLD_BAR = 2.0


def _best_of(repeats, fn):
    best = np.inf
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_fused_serving_kernel_speedup(benchmark):
    basis = OrthonormalBasis.total_degree(R, DEGREE)
    x = np.random.default_rng(42).standard_normal((K, R))
    coefficients = np.random.default_rng(7).standard_normal(basis.size)

    def run():
        loop_seconds, reference = _best_of(
            REPEATS, lambda: basis._design_matrix_loop(x) @ coefficients
        )

        # Hot serving: warm cache, fused_predict is one matvec per call.
        previous = set_design_cache(DesignMatrixCache())
        try:
            basis.fused_predict(x, coefficients)  # warming miss
            hot_seconds, hot = _best_of(
                REPEATS, lambda: basis.fused_predict(x, coefficients)
            )
        finally:
            set_design_cache(previous)

        # Cold paths, cache disabled: streaming fused kernel vs. the old
        # materialize-then-matvec sequence.
        previous = set_design_cache(None)
        try:
            cold_seconds, cold = _best_of(
                REPEATS, lambda: basis.fused_predict(x, coefficients)
            )
            unfused_seconds, _ = _best_of(
                REPEATS, lambda: basis.design_matrix(x) @ coefficients
            )
        finally:
            set_design_cache(previous)

        return {
            "loop_seconds": loop_seconds,
            "hot_seconds": hot_seconds,
            "cold_seconds": cold_seconds,
            "unfused_seconds": unfused_seconds,
            "hot_speedup": loop_seconds / hot_seconds,
            "cold_speedup": unfused_seconds / cold_seconds,
            "reference": reference,
            "hot": hot,
            "cold": cold,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert np.allclose(result["hot"], result["reference"])
    assert np.allclose(result["cold"], result["reference"])
    assert result["hot_speedup"] >= FUSED_HOT_BAR, (
        f"fused cached serving only {result['hot_speedup']:.2f}x over the "
        f"loop baseline (bar: {FUSED_HOT_BAR}x, measured ~14.9x)"
    )
    assert result["cold_speedup"] >= FUSED_COLD_BAR, (
        f"streaming fused kernel only {result['cold_speedup']:.2f}x over "
        f"materialize-then-matvec (bar: {FUSED_COLD_BAR}x, measured ~1.9x)"
    )

    lines = [
        "Fused serving kernel: quadratic basis, "
        f"R = {R}, K = {K}, M = {basis.size}",
        f"  loop assembly + matvec     {result['loop_seconds'] * 1e3:9.2f} ms",
        f"  fused, warm cache          {result['hot_seconds'] * 1e3:9.2f} ms"
        f"   ({result['hot_speedup']:.2f}x, bar {FUSED_HOT_BAR}x)",
        f"  materialize + matvec, cold {result['unfused_seconds'] * 1e3:9.2f} ms",
        f"  fused streaming, cold      {result['cold_seconds'] * 1e3:9.2f} ms"
        f"   ({result['cold_speedup']:.2f}x vs materialize, "
        f"bar {FUSED_COLD_BAR}x)",
    ]
    save_result("backend_speedup", "\n".join(lines))


def test_numba_cold_assembly_speedup(benchmark):
    if not backend_available("numba"):
        pytest.skip(backend_unavailable_reason("numba"))
    basis = OrthonormalBasis.total_degree(R, DEGREE)
    x = np.random.default_rng(42).standard_normal((K, R))

    def run():
        previous = set_design_cache(None)
        try:
            with use_backend("numpy"):
                numpy_seconds, reference = _best_of(
                    REPEATS, lambda: basis.design_matrix(x)
                )
            with use_backend("numba"):
                basis.design_matrix(x)  # JIT warm-up compile
                numba_seconds, compiled = _best_of(
                    REPEATS, lambda: basis.design_matrix(x)
                )
        finally:
            set_design_cache(previous)
        return {
            "numpy_seconds": numpy_seconds,
            "numba_seconds": numba_seconds,
            "speedup": numpy_seconds / numba_seconds,
            "reference": reference,
            "compiled": compiled,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert np.allclose(result["compiled"], result["reference"])
    assert result["speedup"] >= NUMBA_COLD_BAR, (
        f"numba cold assembly only {result['speedup']:.2f}x over numpy "
        f"(bar: {NUMBA_COLD_BAR}x)"
    )
    save_result(
        "backend_numba_assembly",
        f"Numba cold design-matrix assembly, R = {R}, K = {K}, "
        f"M = {basis.size}: numpy {result['numpy_seconds'] * 1e3:.2f} ms, "
        f"numba {result['numba_seconds'] * 1e3:.2f} ms "
        f"({result['speedup']:.2f}x, bar {NUMBA_COLD_BAR}x)",
    )
