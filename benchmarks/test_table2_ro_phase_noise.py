"""Table II: relative modeling error of PHASE NOISE for the ring oscillator.

Paper reference: phase-noise errors are ~10x smaller than the power/
frequency errors (the dB scale compresses relative variability), with the
same ordering -- BMF-* well below OMP at every sample count:

    K    | OMP    | BMF-ZM | BMF-NZM | BMF-PS
    100  | 0.2871 | 0.1033 | 0.0974  | 0.0982
    900  | 0.1053 | 0.0849 | 0.0830  | 0.0830
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.experiments import (
    early_samples,
    repeats,
    run_error_table,
    scale,
    table_sample_counts,
)

METRIC = "phase_noise"


def test_table2_ro_phase_noise(benchmark, ring_oscillator):
    alpha_early = cached_early_coefficients(
        ring_oscillator, METRIC, early_samples(), max_terms=300
    )

    def run():
        return run_error_table(
            ring_oscillator,
            METRIC,
            sample_counts=table_sample_counts(),
            repeats=repeats(),
            rng=np.random.default_rng(102),
            alpha_early=alpha_early,
            omp_max_terms=300,
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table2_ro_phase_noise", table.format())

    i0, i9 = 0, len(table.sample_counts) - 1
    for method in table.errors:
        assert table.errors[method][i9] < table.errors[method][i0]
    assert table.errors["BMF-PS"][i0] < 0.75 * table.errors["OMP"][i0]
    for i in range(len(table.sample_counts)):
        best = min(table.errors["BMF-ZM"][i], table.errors["BMF-NZM"][i])
        assert table.errors["BMF-PS"][i] <= 1.3 * best
    factor = 1.75 if scale() == "small" else 1.2
    assert table.errors["BMF-PS"][i0] <= factor * table.errors["OMP"][i9]
    # Phase-noise errors sit well below 1% -- the dB compression the paper
    # shows (its whole table is < 0.3%).
    assert table.errors["BMF-PS"][i0] < 0.01
