"""Ablation: cross-validation (Section IV-D) vs evidence maximization.

The paper selects the prior and hyper-parameter by N-fold CV.  The fully
Bayesian alternative maximizes the marginal likelihood (type-II ML) -- no
folds, every sample used for both fitting and selection.  This ablation
fits the RO frequency model with both strategies across sample counts and
checks that they land in the same accuracy class (each within 1.5x of the
other), i.e. the paper's CV choice is sound but not uniquely so.
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.bmf import BmfRegressor
from repro.circuits import Stage
from repro.circuits.modeling import FusionProblem
from repro.montecarlo import simulate_dataset
from repro.regression import relative_error

METRIC = "frequency"


def test_ablation_selection_strategy(benchmark, ring_oscillator):
    problem = FusionProblem(ring_oscillator, METRIC)
    alpha_early = cached_early_coefficients(ring_oscillator, METRIC, 3000, 300)
    aligned = problem.align_early_coefficients(alpha_early)
    missing = problem.missing_indices()

    rng = np.random.default_rng(117)
    pool = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, 400, rng, [METRIC])
    test = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, 300, rng, [METRIC])
    design_pool = problem.late_basis.design_matrix(pool.x)
    design_test = problem.late_basis.design_matrix(test.x)
    target_pool = pool.metric(METRIC)
    target_test = test.metric(METRIC)

    def run():
        rows = []
        for count in (60, 150, 400):
            errors = {}
            for strategy in ("cv", "evidence"):
                model = BmfRegressor(
                    problem.late_basis,
                    aligned,
                    prior_kind="select",
                    selection=strategy,
                    missing_indices=missing,
                )
                model.fit_design(design_pool[:count], target_pool[:count])
                errors[strategy] = (
                    relative_error(
                        design_test @ model.coefficients_, target_test
                    ),
                    model.chosen_prior_.name,
                )
            rows.append((count, errors))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Selection-strategy ablation ({METRIC})",
        f"{'K':>5s} {'CV %':>10s} {'(prior)':>14s} {'evidence %':>12s} {'(prior)':>14s}",
    ]
    for count, errors in rows:
        cv_error, cv_prior = errors["cv"]
        ev_error, ev_prior = errors["evidence"]
        lines.append(
            f"{count:>5d} {cv_error * 100:>10.4f} {cv_prior:>14s} "
            f"{ev_error * 100:>12.4f} {ev_prior:>14s}"
        )
    save_result("ablation_selection", "\n".join(lines))

    for count, errors in rows:
        cv_error = errors["cv"][0]
        ev_error = errors["evidence"][0]
        # At very small K the profiled evidence is noticeably noisier than
        # CV (it must estimate the noise floor from the same few samples);
        # from K=150 on the two strategies coincide.
        factor = 3.0 if count < 100 else 1.5
        assert ev_error < factor * cv_error, count
        assert cv_error < factor * ev_error, count
