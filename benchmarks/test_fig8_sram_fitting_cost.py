"""Fig. 8: fitting cost of the SRAM read-delay model -- OMP vs BMF-PS
(fast solver).

As in the paper, the conventional Cholesky solver is omitted here: at the
SRAM problem size it "becomes computationally infeasible" (Section V-B);
the fast-solver BMF-PS curve is compared against OMP instead.  We assert
that the fast-solver fit stays cheap and grows gently with K.
"""

import numpy as np

from conftest import save_result
from repro.experiments import run_fitting_cost

METRIC = "read_delay"


def test_fig8_sram_fitting_cost(benchmark, sram):
    def run():
        return run_fitting_cost(
            sram,
            METRIC,
            sample_counts=(100, 300, 500, 700, 900),
            rng=np.random.default_rng(111),
            include_conventional=False,
            omp_max_terms=300,
        )

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig8_sram_fitting_cost", curve.format())

    fast = curve.seconds["BMF-PS (fast solver)"]
    omp = curve.seconds["OMP"]
    # Both fitting costs must be a tiny fraction of even one accounted
    # post-layout simulation (349 s/sample), as in the paper's Table VI.
    assert np.all(fast < 349.0)
    assert np.all(omp < 349.0)
    # OMP's greedy selection dominates BMF's kernel solves at large K.
    assert fast[-1] < omp[-1]
