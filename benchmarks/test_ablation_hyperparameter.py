"""Ablation: does cross-validation pick a near-optimal hyper-parameter?

Section IV-D leaves the prior strength (sigma_0 / eta) to N-fold
cross-validation.  This ablation sweeps the eta grid for the RO frequency
model at K=200, computing both the CV error (what selection sees) and the
true test error (what selection cannot see), and asserts that the
CV-selected eta's test error is within a small factor of the grid-best
test error -- i.e. the selection machinery works.
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.bmf import KernelMapSolver, nonzero_mean_prior
from repro.bmf.cross_validation import cross_validate_eta, default_eta_grid
from repro.circuits import Stage
from repro.circuits.modeling import FusionProblem
from repro.montecarlo import simulate_dataset
from repro.regression import relative_error

METRIC = "frequency"
TRAIN = 200


def test_ablation_hyperparameter(benchmark, ring_oscillator):
    problem = FusionProblem(ring_oscillator, METRIC)
    alpha_early = cached_early_coefficients(ring_oscillator, METRIC, 3000, 300)
    aligned = problem.align_early_coefficients(alpha_early)
    prior = nonzero_mean_prior(aligned).with_missing(problem.missing_indices())

    rng = np.random.default_rng(112)
    train = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, TRAIN, rng, [METRIC])
    test = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, 300, rng, [METRIC])
    design = problem.late_basis.design_matrix(train.x)
    design_test = problem.late_basis.design_matrix(test.x)
    target = train.metric(METRIC)
    target_test = test.metric(METRIC)

    def run():
        solver = KernelMapSolver(design, target, prior)
        grid = default_eta_grid(prior, TRAIN)
        cv_errors = cross_validate_eta(solver, grid, n_folds=5)
        test_errors = np.array(
            [
                relative_error(design_test @ solver.solve(eta), target_test)
                for eta in grid
            ]
        )
        return grid, cv_errors, test_errors

    grid, cv_errors, test_errors = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Hyper-parameter sweep ({METRIC}, K={TRAIN}, nonzero-mean prior)",
        f"{'eta':>12s} {'CV error %':>12s} {'test error %':>14s}",
    ]
    for eta, cv, te in zip(grid, cv_errors, test_errors):
        lines.append(f"{eta:>12.3e} {cv * 100:>12.4f} {te * 100:>14.4f}")
    chosen = int(np.argmin(cv_errors))
    best = int(np.argmin(test_errors))
    lines.append(
        f"CV picks eta={grid[chosen]:.3e} (test {test_errors[chosen] * 100:.4f}%), "
        f"oracle eta={grid[best]:.3e} (test {test_errors[best] * 100:.4f}%)"
    )
    save_result("ablation_hyperparameter", "\n".join(lines))

    # The CV pick is near-oracle.
    assert test_errors[chosen] <= 1.3 * test_errors[best]
    # The sweep actually matters: the worst grid point is much worse.
    assert test_errors.max() > 2.0 * test_errors[best]
