"""Ablation: handling of late-stage-only basis functions (Section IV-B).

Layout-parasitic variables exist only in the post-layout model.  The paper
prescribes an uninformative (infinite-variance) prior for them.  Two
tempting shortcuts are compared against that treatment:

* pinning the unknown coefficients to zero (over-trusting the early model
  -- the parasitic contribution can never be learned);
* dropping the parasitic basis functions altogether (same bias, smaller
  model).

The uninformative treatment must win, because the parasitic wire caps do
move the RO frequency.
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.bmf import BmfRegressor, GaussianCoefficientPrior, nonzero_mean_prior
from repro.circuits import Stage
from repro.circuits.modeling import FusionProblem
from repro.montecarlo import simulate_dataset
from repro.regression import relative_error

METRIC = "frequency"
TRAIN = 200


def test_ablation_missing_prior(benchmark, ring_oscillator):
    problem = FusionProblem(ring_oscillator, METRIC)
    alpha_early = cached_early_coefficients(ring_oscillator, METRIC, 3000, 300)
    aligned = problem.align_early_coefficients(alpha_early)
    missing = problem.missing_indices()

    rng = np.random.default_rng(115)
    train = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, TRAIN, rng, [METRIC])
    test = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, 300, rng, [METRIC])
    design = problem.late_basis.design_matrix(train.x)
    design_test = problem.late_basis.design_matrix(test.x)
    target = train.metric(METRIC)
    target_test = test.metric(METRIC)

    def fit_with_prior(prior: GaussianCoefficientPrior) -> float:
        model = BmfRegressor(
            problem.late_basis, priors=[prior], prior_kind="nonzero-mean"
        )
        model.fit_design(design, target)
        return relative_error(design_test @ model.coefficients_, target_test)

    def run():
        base = nonzero_mean_prior(aligned)
        uninformative = base.with_missing(missing)

        pinned_scale = base.scale.copy()
        pinned_scale[missing] = 0.0  # coefficient frozen at its mean (zero)
        pinned = GaussianCoefficientPrior(base.mean, pinned_scale, "pinned")

        shared = len(aligned) - len(missing)
        dropped_model = BmfRegressor(
            problem.late_basis.restricted_to(range(shared)),
            priors=[nonzero_mean_prior(aligned[:shared])],
            prior_kind="nonzero-mean",
        )
        dropped_model.fit_design(design[:, :shared], target)
        dropped_error = relative_error(
            design_test[:, :shared] @ dropped_model.coefficients_, target_test
        )
        return {
            "uninformative (paper, eq. 50/51)": fit_with_prior(uninformative),
            "pinned to zero": fit_with_prior(pinned),
            "columns dropped": dropped_error,
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"Missing-prior ablation ({METRIC}, K={TRAIN})"]
    for name, error in errors.items():
        lines.append(f"  {name:<32s} {error * 100:.4f}%")
    save_result("ablation_missing_prior", "\n".join(lines))

    paper = errors["uninformative (paper, eq. 50/51)"]
    assert paper <= errors["pinned to zero"]
    assert paper <= errors["columns dropped"]
