"""Table IV: modeling error and cost for the RO -- OMP@900 vs BMF-PS@100.

Paper reference (the headline result):

                                    | OMP    | BMF-PS (fast solver)
    # of post-layout samples        | 900    | 100
    Modeling error for power        | 0.8671%| 0.5558%
    Modeling error for phase noise  | 0.1053%| 0.0982%
    Modeling error for frequency    | 0.7471%| 0.6069%
    Simulation cost (Hour)          | 12.58  | 1.40
    Total modeling cost (Hour)      | 12.62  | 1.40      -> 9x speedup

Simulation cost is accounted with the per-sample cost model back-solved
from this very table (50.3 s/post-layout sample); fitting cost is measured
wall-clock.  The 9x total-cost speedup is sample-count-driven and must
reproduce exactly; the "without surrendering accuracy" claim is checked
with a scale-dependent tolerance (see DESIGN.md section 3).
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.experiments import RO_COST_MODEL, run_cost_comparison, scale

METRICS = ("power", "phase_noise", "frequency")


def test_table4_ro_cost(benchmark, ring_oscillator):
    early = {
        metric: cached_early_coefficients(ring_oscillator, metric, 3000, 300)
        for metric in METRICS
    }

    def run():
        return run_cost_comparison(
            ring_oscillator,
            METRICS,
            RO_COST_MODEL,
            baseline_samples=900,
            fused_samples=100,
            rng=np.random.default_rng(104),
            omp_max_terms=300,
            early_coefficients=early,
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table4_ro_cost", comparison.format())

    # The 9x speedup of the paper (12.62h vs 1.40h) is reproduced by the
    # sample-count ratio plus the (small) measured fitting cost.
    assert comparison.speedup > 8.5
    assert abs(comparison.baseline.simulation_hours - 12.58) < 0.01
    assert abs(comparison.fused.simulation_hours - 1.398) < 0.01
    # Accuracy is not surrendered (looser at small scale where OMP@900 can
    # saturate the smaller variable count).
    factor = 1.75 if scale() == "small" else 1.2
    for metric in METRICS:
        assert comparison.fused.errors[metric] <= factor * (
            comparison.baseline.errors[metric]
        ), metric
