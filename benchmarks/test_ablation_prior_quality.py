"""Ablation: how prior quality drives the ZM / NZM choice (Section III-A).

The paper argues: a nonzero-mean prior encodes sign+magnitude and wins
when early and late coefficients are close; when they diverge, the weaker
zero-mean prior is safer -- and BMF-PS should track the winner either way.

We synthesize that divergence directly: corrupt the early-stage RO
frequency coefficients with increasing relative noise and fit BMF-ZM /
BMF-NZM / BMF-PS at K=150 for each corruption level.
"""

import numpy as np

from conftest import cached_early_coefficients, save_result
from repro.bmf import BmfRegressor
from repro.circuits import Stage
from repro.circuits.modeling import FusionProblem
from repro.montecarlo import simulate_dataset
from repro.regression import relative_error

METRIC = "frequency"
TRAIN = 150
CORRUPTIONS = (0.0, 0.3, 1.0, 3.0)


def test_ablation_prior_quality(benchmark, ring_oscillator):
    problem = FusionProblem(ring_oscillator, METRIC)
    alpha_early = cached_early_coefficients(ring_oscillator, METRIC, 3000, 300)
    aligned = problem.align_early_coefficients(alpha_early)
    missing = problem.missing_indices()

    rng = np.random.default_rng(113)
    train = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, TRAIN, rng, [METRIC])
    test = simulate_dataset(ring_oscillator, Stage.POST_LAYOUT, 300, rng, [METRIC])
    design = problem.late_basis.design_matrix(train.x)
    design_test = problem.late_basis.design_matrix(test.x)
    target = train.metric(METRIC)
    target_test = test.metric(METRIC)
    noise = np.random.default_rng(114).standard_normal(aligned.shape)

    def run():
        rows = []
        for level in CORRUPTIONS:
            # Multiplicative corruption keeps the magnitude profile usable
            # by ZM while scrambling the values NZM trusts.
            corrupted = aligned * (1.0 + level * noise)
            errors = {}
            for kind in ("zero-mean", "nonzero-mean", "select"):
                model = BmfRegressor(
                    problem.late_basis,
                    corrupted,
                    prior_kind=kind,
                    missing_indices=missing,
                )
                model.fit_design(design, target)
                errors[kind] = relative_error(
                    design_test @ model.coefficients_, target_test
                )
            rows.append((level, errors))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Prior-quality ablation ({METRIC}, K={TRAIN})",
        f"{'corruption':>10s} {'BMF-ZM %':>10s} {'BMF-NZM %':>10s} {'BMF-PS %':>10s}",
    ]
    for level, errors in rows:
        lines.append(
            f"{level:>10.1f} {errors['zero-mean'] * 100:>10.4f} "
            f"{errors['nonzero-mean'] * 100:>10.4f} "
            f"{errors['select'] * 100:>10.4f}"
        )
    save_result("ablation_prior_quality", "\n".join(lines))

    clean = dict(rows)[0.0]
    worst = dict(rows)[CORRUPTIONS[-1]]
    # NZM degrades as its means become wrong...
    assert worst["nonzero-mean"] > clean["nonzero-mean"]
    # ...and prior selection tracks (close to) the better variant at every level.
    for _level, errors in rows:
        best = min(errors["zero-mean"], errors["nonzero-mean"])
        assert errors["select"] <= 1.35 * best
