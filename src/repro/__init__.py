"""repro: Bayesian Model Fusion for large-scale AMS performance modeling.

A from-scratch reproduction of Wang et al., "Bayesian Model Fusion:
Large-Scale Performance Modeling of Analog and Mixed-Signal Circuits by
Reusing Early-Stage Data" (DAC 2013 / IEEE TCAD 2015).

Public API highlights
---------------------
* :class:`repro.basis.OrthonormalBasis` -- orthonormal polynomial bases.
* :class:`repro.regression.OrthogonalMatchingPursuit` -- the OMP baseline.
* :class:`repro.bmf.BmfRegressor` / :func:`repro.bmf.fuse` -- BMF itself.
* :mod:`repro.circuits` -- synthetic RO / SRAM / diff-pair testbenches with
  schematic and post-layout stages.
* :mod:`repro.applications` -- yield estimation, corners, design centering.
"""

from . import (
    analysis,
    applications,
    basis,
    bmf,
    circuits,
    devices,
    experiments,
    linalg,
    montecarlo,
    process,
    regression,
    runtime,
    spice,
)
from .basis import OrthonormalBasis
from .bmf import BmfRegressor, FingerMap, fuse, map_prior_coefficients
from .circuits import FusionProblem, RingOscillator, SramReadPath, Stage
from .circuits.diffpair import DifferentialPair
from .montecarlo import Dataset, simulate_dataset, train_test_split
from .regression import (
    ElasticNetRegressor,
    FittedModel,
    LeastSquaresRegressor,
    OrthogonalMatchingPursuit,
    RidgeRegressor,
    relative_error,
)

__version__ = "1.0.0"

__all__ = [
    "BmfRegressor",
    "Dataset",
    "DifferentialPair",
    "ElasticNetRegressor",
    "FingerMap",
    "FittedModel",
    "FusionProblem",
    "LeastSquaresRegressor",
    "OrthogonalMatchingPursuit",
    "OrthonormalBasis",
    "RidgeRegressor",
    "RingOscillator",
    "SramReadPath",
    "Stage",
    "analysis",
    "applications",
    "basis",
    "bmf",
    "circuits",
    "devices",
    "experiments",
    "fuse",
    "linalg",
    "map_prior_coefficients",
    "montecarlo",
    "process",
    "regression",
    "relative_error",
    "runtime",
    "simulate_dataset",
    "spice",
    "train_test_split",
]
