"""Behavioral MOSFET model under process variation.

The large-scale testbenches (ring oscillator, SRAM read path) need device
equations that are smooth in thousands of variation variables and cheap to
evaluate for thousands of Monte Carlo samples at once.  This module provides
an alpha-power-law MOSFET (Sakurai-Newton) evaluated *vectorized across
samples and devices*:

    I_on  = beta * (VDD - Vth)^alpha          (drive current)
    I_off = leak0 * exp(-(Vth - Vth0)/(n vT)) (subthreshold leakage)
    C     = cap0                              (gate + junction load)

where ``Vth``, ``beta``, ``cap`` and the leakage prefactor are per-sample,
per-device random quantities assembled from the process kit's inter-die and
mismatch projections, plus deterministic layout shifts at the post-layout
stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..process import ProcessKit, ProcessSpace

__all__ = ["DeviceElectrical", "MosfetArray"]


@dataclass
class DeviceElectrical:
    """Per-sample, per-device electrical quantities, each ``(K, D)``.

    Attributes
    ----------
    vth:
        Threshold voltage in volts.
    beta:
        Current factor in A/V^alpha (already includes layout shifts).
    cap:
        Switched load capacitance in farads.
    leak_scale:
        Dimensionless lognormal multiplier on the leakage prefactor
        (Vth dependence of leakage is applied separately in :meth:`MosfetArray.off_current`).
    """

    vth: np.ndarray
    beta: np.ndarray
    cap: np.ndarray
    leak_scale: np.ndarray


class MosfetArray:
    """A bank of behavioral MOSFETs sharing one mismatch block in the space.

    Parameters
    ----------
    name:
        Prefix for the device and variable names (e.g. ``"ro.inv"``).
    vth0 / beta0 / cap0 / leak0:
        Nominal per-device parameter arrays of shape ``(D,)`` (scalars are
        broadcast).  ``leak0`` is the nominal off-current in amperes.
    area:
        Relative device areas (mismatch scales as ``1/sqrt(area)``).
    alpha:
        Velocity-saturation exponent of the alpha-power law (~1.3 at 32 nm).
    subthreshold_slope:
        Ideality factor ``n`` of the leakage exponent.

    Call :meth:`register` exactly once to allocate this array's mismatch
    variables in a :class:`~repro.process.ProcessSpace`.
    """

    def __init__(
        self,
        name: str,
        count: int,
        vth0=0.32,
        beta0=4e-4,
        cap0=2e-16,
        leak0=5e-9,
        area=1.0,
        alpha: float = 1.3,
        subthreshold_slope: float = 1.4,
    ):
        if count < 1:
            raise ValueError(f"device count must be >= 1, got {count}")
        self.name = name
        self.count = int(count)
        self.vth0 = _broadcast(vth0, count, "vth0")
        self.beta0 = _broadcast(beta0, count, "beta0")
        self.cap0 = _broadcast(cap0, count, "cap0")
        self.leak0 = _broadcast(leak0, count, "leak0")
        self.area = _broadcast(area, count, "area")
        if np.any(self.area <= 0):
            raise ValueError("device areas must be positive")
        self.alpha = float(alpha)
        self.subthreshold_slope = float(subthreshold_slope)
        # Deterministic layout shifts (set by the post-layout stage).
        self.layout_beta_shift = np.zeros(count)
        self.layout_cap_shift = np.zeros(count)
        self._mismatch_start: Optional[int] = None
        self._params_per_device: Optional[int] = None

    # ------------------------------------------------------------------
    def register(self, space: ProcessSpace, kit: ProcessKit) -> None:
        """Allocate this array's mismatch variables in ``space``.

        Adds ``count * kit.params_per_device`` variables in one contiguous
        block, named ``{name}{d}.m{p}`` and tagged with their device.
        """
        if self._mismatch_start is not None:
            raise RuntimeError(f"MosfetArray {self.name!r} is already registered")
        self._mismatch_start = space.size
        self._params_per_device = kit.params_per_device
        for d in range(self.count):
            space.add_block(
                f"{self.name}{d}.m",
                kit.params_per_device,
                kind="mismatch",
                device=f"{self.name}{d}",
            )

    @property
    def mismatch_start(self) -> int:
        if self._mismatch_start is None:
            raise RuntimeError(f"MosfetArray {self.name!r} is not registered")
        return self._mismatch_start

    def mismatch_columns(self) -> np.ndarray:
        """Column indices of this array's mismatch block, shape ``(D * P,)``."""
        start = self.mismatch_start
        return np.arange(start, start + self.count * self._params_per_device)

    def device_columns(self, device_index: int) -> np.ndarray:
        """Columns belonging to one device of the array."""
        if not 0 <= device_index < self.count:
            raise IndexError(f"device index {device_index} out of range")
        p = self._params_per_device
        start = self.mismatch_start + device_index * p
        return np.arange(start, start + p)

    # ------------------------------------------------------------------
    def electrical(
        self,
        samples: np.ndarray,
        kit: ProcessKit,
        interdie_columns: Sequence[int],
        include_layout_shifts: bool = True,
    ) -> DeviceElectrical:
        """Evaluate per-sample, per-device electrical parameters.

        Parameters
        ----------
        samples:
            Variation samples of shape ``(K, R)`` over the full space.
        kit:
            The process kit supplying sigmas and projections.
        interdie_columns:
            Column indices of the global inter-die variables.
        include_layout_shifts:
            Apply the deterministic post-layout beta/cap shifts; the
            schematic stage evaluates with ``False``.

        Returns
        -------
        DeviceElectrical
            Arrays of shape ``(K, count)``.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2:
            raise ValueError(f"samples must be 2-D, got shape {samples.shape}")
        num_samples = samples.shape[0]
        p = self._params_per_device
        if p is None:
            raise RuntimeError(f"MosfetArray {self.name!r} is not registered")
        start = self.mismatch_start
        block = samples[:, start : start + self.count * p].reshape(
            num_samples, self.count, p
        )
        globals_block = samples[:, list(interdie_columns)]

        area_factor = 1.0 / np.sqrt(self.area)

        def local(delta: str) -> np.ndarray:
            sigma = kit.mismatch_sigma(delta)
            raw = block @ kit.mismatch_projection(delta)  # (K, D)
            return sigma * area_factor * raw

        def global_(delta: str) -> np.ndarray:
            sigma = kit.interdie_sigma(delta)
            raw = globals_block @ kit.interdie_projection(delta)  # (K,)
            return sigma * raw[:, np.newaxis]

        beta_shift = self.layout_beta_shift if include_layout_shifts else 0.0
        cap_shift = self.layout_cap_shift if include_layout_shifts else 0.0
        vth = self.vth0 + global_("vth") + local("vth")
        beta = (
            self.beta0
            * (1.0 + beta_shift)
            * (1.0 + global_("beta") + local("beta"))
        )
        cap = (
            self.cap0
            * (1.0 + cap_shift)
            * (1.0 + global_("cap") + local("cap"))
        )
        leak_scale = np.exp(global_("leak") + local("leak"))
        return DeviceElectrical(vth=vth, beta=beta, cap=cap, leak_scale=leak_scale)

    # ------------------------------------------------------------------
    def on_current(
        self, electrical: DeviceElectrical, vdd: float
    ) -> np.ndarray:
        """Alpha-power-law drive current ``beta (VDD - Vth)^alpha``, (K, D)."""
        overdrive = np.maximum(vdd - electrical.vth, 0.05)
        return electrical.beta * overdrive**self.alpha

    def off_current(
        self, electrical: DeviceElectrical, kit: ProcessKit
    ) -> np.ndarray:
        """Subthreshold leakage ``leak0 * exp(-dVth/(n vT)) * leak_scale``."""
        dvth = electrical.vth - self.vth0
        exponent = -dvth / (self.subthreshold_slope * kit.thermal_voltage)
        return self.leak0 * electrical.leak_scale * np.exp(exponent)


def _broadcast(value, count: int, name: str) -> np.ndarray:
    array = np.asarray(value, dtype=float)
    if array.ndim == 0:
        return np.full(count, float(array))
    if array.shape != (count,):
        raise ValueError(
            f"{name} must be a scalar or have shape ({count},), got {array.shape}"
        )
    return array.copy()
