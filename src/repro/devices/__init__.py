"""Behavioral device models parameterized by process variation."""

from .mosfet import DeviceElectrical, MosfetArray

__all__ = ["DeviceElectrical", "MosfetArray"]
