"""Sherman-Morrison-Woodbury low-rank solver (Section IV-C of the paper).

The MAP estimation of BMF requires solving

    (A + c * G^T G) x = b

where ``A = diag(a)`` is an M x M diagonal matrix of inverse prior
variances, ``G`` is the K x M design matrix with K << M, and ``c > 0`` is a
scalar (``sigma_0^{-2}`` for the zero-mean prior, ``1`` for the nonzero-mean
prior after scaling by eta).  A direct Cholesky solve costs ``O(M^3)``;
the Woodbury identity

    (A + c G^T G)^{-1} = A^{-1}
        - c A^{-1} G^T (I_K + c G A^{-1} G^T)^{-1} G A^{-1}

reduces this to a single K x K solve plus matrix-vector products, i.e.
``O(K^2 M + K^3)`` -- the paper's eqs. (53)-(58) -- while remaining *exact*.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .solvers import solve_spd

__all__ = [
    "solve_diag_plus_gram",
    "solve_diag_plus_gram_direct",
    "posterior_variance_diagonal",
]


def _validate(diag: np.ndarray, design: np.ndarray, rhs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    diag = np.asarray(diag, dtype=float)
    design = np.asarray(design, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if design.ndim != 2:
        raise ValueError(f"design must be 2-D, got shape {design.shape}")
    num_terms = design.shape[1]
    if diag.shape != (num_terms,):
        raise ValueError(
            f"diag must have shape ({num_terms},) to match design, got {diag.shape}"
        )
    if rhs.shape != (num_terms,):
        raise ValueError(
            f"rhs must have shape ({num_terms},) to match design, got {rhs.shape}"
        )
    if np.any(diag <= 0):
        raise ValueError("all diagonal entries must be strictly positive")
    return diag, design, rhs


def solve_diag_plus_gram(
    diag: np.ndarray,
    design: np.ndarray,
    rhs: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Solve ``(diag(diag) + scale * design.T @ design) x = rhs`` via Woodbury.

    Parameters
    ----------
    diag:
        Positive diagonal entries ``a`` of shape ``(M,)`` (inverse prior
        variances in the BMF MAP system).
    design:
        Design matrix ``G`` of shape ``(K, M)``.
    rhs:
        Right-hand side of shape ``(M,)``.
    scale:
        Positive scalar ``c`` multiplying the Gram matrix.

    Returns
    -------
    numpy.ndarray
        The exact solution ``x`` of shape ``(M,)``.

    Notes
    -----
    Cost is ``O(K^2 M)``; the only dense factorization is of the K x K
    capacitance matrix ``I + c G A^{-1} G^T``, which is SPD by construction.
    """
    diag, design, rhs = _validate(diag, design, rhs)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    inv_diag = 1.0 / diag
    base = inv_diag * rhs
    scaled_design = design * inv_diag  # G A^{-1}, shape (K, M)
    num_samples = design.shape[0]
    capacitance = np.eye(num_samples) + scale * (scaled_design @ design.T)
    correction = solve_spd(capacitance, design @ base)
    return base - scale * inv_diag * (design.T @ correction)


def solve_diag_plus_gram_direct(
    diag: np.ndarray,
    design: np.ndarray,
    rhs: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Reference ``O(M^3)`` direct solve of the same system (Cholesky).

    This is the paper's "conventional solver" used in the Fig. 5 / Fig. 8
    fitting-cost comparison; it exists so the Woodbury path can be validated
    bit-for-bit (well, to floating-point accuracy) against it.
    """
    diag, design, rhs = _validate(diag, design, rhs)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    system = scale * (design.T @ design)
    system[np.diag_indices_from(system)] += diag
    return solve_spd(system, rhs)


def posterior_variance_diagonal(
    diag: np.ndarray,
    design: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Diagonal of ``(diag(diag) + scale * design.T @ design)^{-1}``.

    Gives the marginal posterior variances of the BMF coefficients without
    ever forming the M x M posterior covariance -- useful for reporting
    per-coefficient uncertainty on top of the MAP point estimate.
    """
    diag = np.asarray(diag, dtype=float)
    design = np.asarray(design, dtype=float)
    if np.any(diag <= 0):
        raise ValueError("all diagonal entries must be strictly positive")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    inv_diag = 1.0 / diag
    scaled_design = design * inv_diag  # G A^{-1}
    num_samples = design.shape[0]
    capacitance = np.eye(num_samples) + scale * (scaled_design @ design.T)
    # Sigma = A^{-1} - c (G A^{-1})^T C^{-1} (G A^{-1})
    solved = np.linalg.solve(capacitance, scaled_design)
    reduction = scale * np.einsum("km,km->m", scaled_design, solved)
    return inv_diag - reduction
