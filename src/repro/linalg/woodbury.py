"""Sherman-Morrison-Woodbury low-rank solver (Section IV-C of the paper).

The MAP estimation of BMF requires solving

    (A + c * G^T G) x = b

where ``A = diag(a)`` is an M x M diagonal matrix of inverse prior
variances, ``G`` is the K x M design matrix with K << M, and ``c > 0`` is a
scalar (``sigma_0^{-2}`` for the zero-mean prior, ``1`` for the nonzero-mean
prior after scaling by eta).  A direct Cholesky solve costs ``O(M^3)``;
the Woodbury identity

    (A + c G^T G)^{-1} = A^{-1}
        - c A^{-1} G^T (I_K + c G A^{-1} G^T)^{-1} G A^{-1}

reduces this to a single K x K solve plus matrix-vector products, i.e.
``O(K^2 M + K^3)`` -- the paper's eqs. (53)-(58) -- while remaining *exact*.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..backends import get_backend
from ..faults import failpoint
from .numerics import is_effectively_zero
from .solvers import SolverError, solve_spd

#: Fires before each Cholesky factorization / border update; armed plans
#: here model the conditioning failures the streaming refit must survive.
_FP_CHOLESKY = failpoint("solver.cholesky")

__all__ = [
    "solve_diag_plus_gram",
    "solve_diag_plus_gram_direct",
    "posterior_variance_diagonal",
    "gram_kernel",
    "extend_gram_kernel",
    "CholeskyFactor",
]


def _validate(diag: np.ndarray, design: np.ndarray, rhs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    diag = np.asarray(diag, dtype=float)
    design = np.asarray(design, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if design.ndim != 2:
        raise ValueError(f"design must be 2-D, got shape {design.shape}")
    num_terms = design.shape[1]
    if diag.shape != (num_terms,):
        raise ValueError(
            f"diag must have shape ({num_terms},) to match design, got {diag.shape}"
        )
    if rhs.shape != (num_terms,):
        raise ValueError(
            f"rhs must have shape ({num_terms},) to match design, got {rhs.shape}"
        )
    if np.any(diag <= 0):
        raise ValueError("all diagonal entries must be strictly positive")
    return diag, design, rhs


def solve_diag_plus_gram(
    diag: np.ndarray,
    design: np.ndarray,
    rhs: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Solve ``(diag(diag) + scale * design.T @ design) x = rhs`` via Woodbury.

    Parameters
    ----------
    diag:
        Positive diagonal entries ``a`` of shape ``(M,)`` (inverse prior
        variances in the BMF MAP system).
    design:
        Design matrix ``G`` of shape ``(K, M)``.
    rhs:
        Right-hand side of shape ``(M,)``.
    scale:
        Positive scalar ``c`` multiplying the Gram matrix.

    Returns
    -------
    numpy.ndarray
        The exact solution ``x`` of shape ``(M,)``.

    Notes
    -----
    Cost is ``O(K^2 M)``; the only dense factorization is of the K x K
    capacitance matrix ``I + c G A^{-1} G^T``, which is SPD by construction.
    """
    diag, design, rhs = _validate(diag, design, rhs)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    backend = get_backend()
    inv_diag = 1.0 / diag
    base = inv_diag * rhs
    scaled_design = design * inv_diag  # G A^{-1}, shape (K, M)
    num_samples = design.shape[0]
    capacitance = np.eye(num_samples) + scale * backend.matmul_t(
        scaled_design, design
    )
    correction = solve_spd(capacitance, backend.matvec(design, base))
    return base - scale * inv_diag * backend.matvec(design.T, correction)


def solve_diag_plus_gram_direct(
    diag: np.ndarray,
    design: np.ndarray,
    rhs: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Reference ``O(M^3)`` direct solve of the same system (Cholesky).

    This is the paper's "conventional solver" used in the Fig. 5 / Fig. 8
    fitting-cost comparison; it exists so the Woodbury path can be validated
    bit-for-bit (well, to floating-point accuracy) against it.
    """
    diag, design, rhs = _validate(diag, design, rhs)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    system = scale * (design.T @ design)
    system[np.diag_indices_from(system)] += diag
    return solve_spd(system, rhs)


def posterior_variance_diagonal(
    diag: np.ndarray,
    design: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Diagonal of ``(diag(diag) + scale * design.T @ design)^{-1}``.

    Gives the marginal posterior variances of the BMF coefficients without
    ever forming the M x M posterior covariance -- useful for reporting
    per-coefficient uncertainty on top of the MAP point estimate.
    """
    diag = np.asarray(diag, dtype=float)
    design = np.asarray(design, dtype=float)
    if np.any(diag <= 0):
        raise ValueError("all diagonal entries must be strictly positive")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    inv_diag = 1.0 / diag
    scaled_design = design * inv_diag  # G A^{-1}
    num_samples = design.shape[0]
    capacitance = np.eye(num_samples) + scale * (scaled_design @ design.T)
    # Sigma = A^{-1} - c (G A^{-1})^T C^{-1} (G A^{-1})
    solved = np.linalg.solve(capacitance, scaled_design)
    reduction = scale * np.einsum("km,km->m", scaled_design, solved)
    return inv_diag - reduction


# ----------------------------------------------------------------------
# Incremental (streaming) kernel machinery
# ----------------------------------------------------------------------
#
# The dual-form solver of Section IV-C only ever factors the K x K kernel
# B = G diag(s^2) G^T.  When late-stage samples arrive in batches (the
# streaming workflow of repro.bmf.SequentialBmf), recomputing B from scratch
# costs O(K^2 M) per batch even though only Delta-K rows are new.  The
# helpers below maintain B -- and, for a fixed hyper-parameter, its Cholesky
# factor -- incrementally: a rank-k *border* update costs O(K * Delta-K * M)
# for the kernel and O(K^2 * Delta-K) for the factorization.


def _gram_product(left: np.ndarray, right: np.ndarray, deterministic: bool) -> np.ndarray:
    """``left @ right.T`` with an optional bitwise-deterministic reduction.

    BLAS matrix products choose different accumulation orders for different
    operand shapes, so the same kernel entry computed during a 1-row border
    update and during a 400-row rebuild can differ in the last bits.  The
    ``deterministic`` path uses an unoptimized ``einsum`` contraction, whose
    per-element reduction over the contracted axis is independent of the
    operand extents -- every entry of ``B`` is then bitwise identical no
    matter how the rows arrived (one at a time, in batches, or all at once).

    The non-deterministic (fast) path dispatches through the active
    :mod:`repro.backends` backend; deterministic mode always runs the
    einsum locally so its bits cannot depend on the backend selection.
    """
    if deterministic:
        return np.einsum("im,jm->ij", left, right, optimize=False)
    return get_backend().matmul_t(left, right)


def _mirror_lower(block: np.ndarray) -> np.ndarray:
    """Make a square block exactly symmetric from its lower triangle.

    Entry ``(i, j)`` of a weighted Gram block is ``sum((g_i * s^2) * g_j)``
    while ``(j, i)`` is ``sum((g_j * s^2) * g_i)`` -- equal analytically but
    not bitwise (float multiplication is commutative, the *triple* product
    association differs).  Canonicalizing on the lower triangle makes every
    kernel entry's computation independent of whether its row pair arrived
    in the same batch (corner block) or different batches (cross block).
    """
    lower = np.tril(block)
    return lower + np.tril(block, -1).T


def gram_kernel(
    design: np.ndarray,
    scale_sq: Optional[np.ndarray] = None,
    deterministic: bool = False,
) -> np.ndarray:
    """The K x K kernel ``B = G diag(scale_sq) G^T`` (eq. 36's dual matrix).

    Parameters
    ----------
    design:
        Design matrix ``G`` of shape ``(K, M)``.
    scale_sq:
        Per-column weights ``s^2`` of shape ``(M,)``; ``None`` means all
        ones (the plain Gram matrix ``G G^T``).
    deterministic:
        Use a blocking-independent reduction so the result is bitwise
        reproducible across incremental and from-scratch builds (slower:
        no BLAS).  See :func:`extend_gram_kernel`.
    """
    design = np.asarray(design, dtype=float)
    if design.ndim != 2:
        raise ValueError(f"design must be 2-D, got shape {design.shape}")
    scaled = design if scale_sq is None else design * scale_sq
    kernel = _gram_product(scaled, design, deterministic)
    if deterministic:
        kernel = _mirror_lower(kernel)
    return kernel


def extend_gram_kernel(
    kernel: np.ndarray,
    old_design: np.ndarray,
    new_design: np.ndarray,
    scale_sq: Optional[np.ndarray] = None,
    deterministic: bool = False,
) -> np.ndarray:
    """Rank-k border update of a cached kernel ``B = G diag(s^2) G^T``.

    Given the kernel of the first ``K`` design rows and ``Delta-K`` new rows,
    returns the ``(K + Delta-K)`` kernel of the stacked design, computing only
    the new cross and corner blocks:

        B' = [[ B,        G S G_new^T    ],
              [ G_new S G^T, G_new S G_new^T ]]

    Cost is ``O((K + Delta-K) * Delta-K * M)`` versus ``O((K + Delta-K)^2 M)``
    for a from-scratch rebuild -- this is what makes streaming refits in
    :class:`repro.bmf.SequentialBmf` cheap.  The result is exact (no
    approximation); with ``deterministic=True`` it is additionally *bitwise*
    identical to :func:`gram_kernel` on the stacked design.
    """
    kernel = np.asarray(kernel, dtype=float)
    old_design = np.asarray(old_design, dtype=float)
    new_design = np.asarray(new_design, dtype=float)
    if new_design.ndim != 2:
        raise ValueError(f"new_design must be 2-D, got shape {new_design.shape}")
    num_old = old_design.shape[0]
    if kernel.shape != (num_old, num_old):
        raise ValueError(
            f"kernel shape {kernel.shape} does not match {num_old} cached rows"
        )
    if new_design.shape[1] != old_design.shape[1]:
        raise ValueError(
            f"new rows have {new_design.shape[1]} columns, expected "
            f"{old_design.shape[1]}"
        )
    num_new = new_design.shape[0]
    scaled_new = new_design if scale_sq is None else new_design * scale_sq
    cross = _gram_product(scaled_new, old_design, deterministic)  # (dK, K)
    corner = _gram_product(scaled_new, new_design, deterministic)  # (dK, dK)
    if deterministic:
        corner = _mirror_lower(corner)
    total = num_old + num_new
    out = np.empty((total, total), dtype=float)
    out[:num_old, :num_old] = kernel
    out[num_old:, :num_old] = cross
    out[:num_old, num_old:] = cross.T
    out[num_old:, num_old:] = corner
    return out


class CholeskyFactor:
    """Updatable Cholesky factorization of a growing SPD matrix.

    Maintains the lower-triangular factor ``L`` with ``A = L L^T`` and
    supports appending a border (rank-k update):

        A' = [[A, cross], [cross^T, corner]]

    via one triangular solve (``O(K^2 * Delta-K)``) plus a small dense
    factorization of the Schur complement (``O(Delta-K^3)``) -- no work
    proportional to the existing ``K^2`` entries is redone.  This is the
    factorization half of the streaming Woodbury refit: for a *fixed*
    hyper-parameter the dual system ``(eta I + B)`` grows by exactly such a
    border per batch of late-stage samples.

    Conditioning is checked on every append: the Schur-complement diagonal
    must stay strictly positive and not be round-off noise relative to the
    corner's own scale (an :func:`repro.linalg.is_effectively_zero`-style
    test).  A degenerate border raises :class:`~repro.linalg.SolverError`,
    which callers treat as the signal to fall back to a fresh full
    factorization.
    """

    #: Relative tolerance of the Schur-diagonal conditioning check; a pivot
    #: below ``rtol * scale`` means the new row is numerically dependent on
    #: the existing ones and the factor update would amplify round-off.
    schur_rtol = 1e-10

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
        try:
            _FP_CHOLESKY.hit()
            self._lower = np.linalg.cholesky(matrix)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"matrix is not positive definite: {exc}") from exc

    @classmethod
    def from_lower(cls, lower: np.ndarray) -> "CholeskyFactor":
        """Rehydrate a factor from a previously exported ``lower`` triangle.

        This is the warm-restart entry point: a crash-safe store persists
        ``factor.lower`` alongside a published model, and recovery re-arms
        the sequential fitter with the *exact* factor it crashed with -- no
        re-factorization, so the first post-restart refit border-updates the
        restored ``L`` bitwise-identically to an uncrashed process.  The
        strictly-upper triangle of ``lower`` is discarded (canonical zeros);
        the lower part is preserved bit for bit.

        Raises :class:`~repro.linalg.SolverError` for a non-positive
        diagonal -- a factor that could not have come from an SPD matrix.
        """
        lower = np.asarray(lower, dtype=float)
        if lower.ndim != 2 or lower.shape[0] != lower.shape[1]:
            raise ValueError(
                f"expected a square lower factor, got shape {lower.shape}"
            )
        diagonal = np.diagonal(lower)
        if lower.size and (
            not np.all(np.isfinite(lower)) or np.any(diagonal <= 0)
        ):
            raise SolverError(
                "lower factor has a non-finite entry or non-positive "
                "diagonal; not a valid Cholesky factor"
            )
        factor = object.__new__(cls)
        factor._lower = np.tril(lower)
        return factor

    @property
    def size(self) -> int:
        """Current dimension ``K`` of the factored matrix."""
        return self._lower.shape[0]

    @property
    def lower(self) -> np.ndarray:
        """Read-only view of the lower-triangular factor ``L``."""
        view = self._lower.view()
        view.flags.writeable = False
        return view

    def append(self, cross: np.ndarray, corner: np.ndarray) -> "CholeskyFactor":
        """Extend the factor to the bordered matrix ``[[A, cross], [cross^T, corner]]``.

        Parameters
        ----------
        cross:
            Off-diagonal border block of shape ``(K, Delta-K)`` (a 1-D array
            of shape ``(K,)`` is promoted to one column).
        corner:
            New symmetric diagonal block of shape ``(Delta-K, Delta-K)`` (a
            scalar is promoted to a 1 x 1 block).

        Raises
        ------
        SolverError
            If the bordered matrix is numerically indefinite or the new
            pivots are degenerate (conditioning fallback signal).
        """
        cross = np.asarray(cross, dtype=float)
        corner = np.asarray(corner, dtype=float)
        if cross.ndim == 1:
            cross = cross[:, np.newaxis]
        if corner.ndim == 0:
            corner = corner.reshape(1, 1)
        size = self.size
        num_new = corner.shape[0]
        if cross.shape != (size, num_new):
            raise ValueError(
                f"cross must have shape ({size}, {num_new}), got {cross.shape}"
            )
        if corner.shape != (num_new, num_new):
            raise ValueError(
                f"corner must be square of size {num_new}, got {corner.shape}"
            )
        _FP_CHOLESKY.hit()
        # W = L^{-1} cross, then Schur complement S = corner - W^T W.
        backend = get_backend()
        wide = backend.triangular_solve(self._lower, cross)
        schur = corner - backend.matmul_t(wide.T, wide.T)
        pivot_scale = max(
            float(np.max(np.abs(corner), initial=0.0)),
            float(np.max(self._lower[np.diag_indices(size)], initial=0.0)) ** 2,
        )
        diag = np.diagonal(schur)
        for pivot in diag:
            if pivot <= 0 or is_effectively_zero(
                pivot, scale=pivot_scale, rtol=self.schur_rtol
            ):
                raise SolverError(
                    "degenerate Schur pivot in Cholesky border update: new "
                    "rows are numerically dependent on the factored ones"
                )
        try:
            schur_lower = np.linalg.cholesky(schur)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"bordered matrix is not positive definite: {exc}"
            ) from exc
        total = size + num_new
        grown = np.zeros((total, total), dtype=float)
        grown[:size, :size] = self._lower
        grown[size:, :size] = wide.T
        grown[size:, size:] = schur_lower
        self._lower = grown
        return self

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` using the cached factor (``O(K^2)``)."""
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.size:
            raise ValueError(
                f"rhs length {rhs.shape[0]} does not match factor size {self.size}"
            )
        backend = get_backend()
        forward = backend.triangular_solve(self._lower, rhs)
        return backend.triangular_solve(self._lower, forward, trans=True)
