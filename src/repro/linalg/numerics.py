"""Floating-point predicates shared across the numeric stack.

Exact equality against float literals is almost always a latent bug in
numerical code: quantities that are analytically zero (a residual norm, the
energy of a degenerate design-matrix column, the gradient of a flat model)
come back from floating-point arithmetic as values on the order of
``eps * scale`` rather than exactly ``0.0``.  The REP003 lint rule
(:mod:`repro.analysis`) bans literal float equality in ``src/``; code that
needs degenerate-scale detection uses :func:`is_effectively_zero` instead.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EPS", "is_effectively_zero"]

#: Machine epsilon of IEEE-754 double precision (~2.22e-16).
EPS = float(np.finfo(np.float64).eps)

#: Default relative tolerance: a generous multiple of machine epsilon, wide
#: enough to absorb accumulated round-off from norm/reduction computations
#: but far below any physically meaningful quantity in the pipeline.
DEFAULT_RTOL = 64.0 * EPS


def is_effectively_zero(value: float, scale: float = 1.0, rtol: float = DEFAULT_RTOL) -> bool:
    """True when ``value`` is indistinguishable from zero at ``scale``.

    Parameters
    ----------
    value:
        The quantity to test (a norm, a column energy, ...).
    scale:
        The natural magnitude of the computation that produced ``value``.
        A ``value`` below ``rtol * |scale|`` is treated as round-off noise.
        With ``scale=0`` the test degenerates to exact-zero comparison.
    rtol:
        Relative tolerance; defaults to ``64 * eps``.

    Notes
    -----
    ``nan`` inputs return ``False`` (a NaN is not "zero"; callers that can
    see NaNs should validate separately).
    """
    return abs(float(value)) <= rtol * abs(float(scale))
