"""Linear-algebra kernels: SPD solves and Woodbury low-rank updates."""

from .numerics import EPS, is_effectively_zero
from .solvers import SolverError, solve_least_squares, solve_spd
from .woodbury import (
    CholeskyFactor,
    extend_gram_kernel,
    gram_kernel,
    posterior_variance_diagonal,
    solve_diag_plus_gram,
    solve_diag_plus_gram_direct,
)

__all__ = [
    "CholeskyFactor",
    "EPS",
    "SolverError",
    "extend_gram_kernel",
    "gram_kernel",
    "is_effectively_zero",
    "posterior_variance_diagonal",
    "solve_diag_plus_gram",
    "solve_diag_plus_gram_direct",
    "solve_least_squares",
    "solve_spd",
]
