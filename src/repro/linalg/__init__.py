"""Linear-algebra kernels: SPD solves and Woodbury low-rank updates."""

from .solvers import SolverError, solve_least_squares, solve_spd
from .woodbury import (
    posterior_variance_diagonal,
    solve_diag_plus_gram,
    solve_diag_plus_gram_direct,
)

__all__ = [
    "SolverError",
    "posterior_variance_diagonal",
    "solve_diag_plus_gram",
    "solve_diag_plus_gram_direct",
    "solve_least_squares",
    "solve_spd",
]
