"""Dense symmetric-positive-definite solve helpers.

Thin wrappers over :mod:`scipy.linalg` with the error handling and
conventions used throughout the package (float64, explicit shapes).  The
"conventional solver" of the paper (Cholesky decomposition, ref. [30]) lives
here so that the fast low-rank solver of Section IV-C has an exact reference
implementation to be compared against.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = ["solve_spd", "solve_least_squares", "SolverError"]


class SolverError(RuntimeError):
    """Raised when a linear system cannot be solved reliably."""


def solve_spd(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` for symmetric positive definite ``matrix``.

    Uses a Cholesky factorization (the paper's "conventional solver").
    Falls back to an eigenvalue-clipped pseudo-solve if the matrix is
    numerically indefinite, which can happen when prior variances span many
    orders of magnitude.
    """
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    if rhs.shape[0] != matrix.shape[0]:
        raise ValueError(
            f"rhs length {rhs.shape[0]} does not match matrix size {matrix.shape[0]}"
        )
    try:
        chol = scipy.linalg.cho_factor(matrix, lower=True, check_finite=False)
        return scipy.linalg.cho_solve(chol, rhs, check_finite=False)
    except scipy.linalg.LinAlgError:
        # Regularized fallback: clip tiny/negative eigenvalues.
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
        floor = max(eigenvalues.max(), 1.0) * 1e-12
        clipped = np.maximum(eigenvalues, floor)
        projected = eigenvectors.T @ rhs
        return eigenvectors @ (projected / clipped)


def solve_least_squares(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Minimum-norm least-squares solution of ``design @ x ~= target``.

    This is the traditional fitting method of Section II-B (eq. 6); for an
    overdetermined system it returns the least-squares solution, and for an
    underdetermined one the minimum-norm solution (which is exactly why
    plain least squares fails in the paper's high-dimensional regime).
    """
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    solution, _residuals, _rank, _sv = np.linalg.lstsq(design, target, rcond=None)
    return solution
