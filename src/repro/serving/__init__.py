"""Streaming model-serving layer: versioned registry + micro-batching engine.

See ``docs/serving.md`` for the architecture and metrics reference.
"""

from .engine import EngineStoppedError, ModelEvaluationError, PredictionEngine
from .registry import ModelRegistry, ModelVersion, PublishRejectedError, model_key

__all__ = [
    "EngineStoppedError",
    "ModelEvaluationError",
    "ModelRegistry",
    "ModelVersion",
    "PredictionEngine",
    "PublishRejectedError",
    "model_key",
]
