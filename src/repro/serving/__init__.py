"""Streaming model-serving layer: versioned registry + micro-batching engine.

See ``docs/serving.md`` for the architecture and metrics reference.
"""

from .engine import EngineStoppedError, PredictionEngine
from .registry import ModelRegistry, ModelVersion, model_key

__all__ = [
    "EngineStoppedError",
    "ModelRegistry",
    "ModelVersion",
    "PredictionEngine",
    "model_key",
]
