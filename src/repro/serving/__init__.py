"""Streaming model-serving layer: versioned registry + micro-batching engine.

See ``docs/serving.md`` for the architecture and metrics reference, and
``docs/store.md`` for crash-safe persistence (:class:`ModelRegistry`'s
``store=`` parameter) and warm-restart recovery.
"""

from .engine import (
    EngineOverloadedError,
    EngineStoppedError,
    ModelEvaluationError,
    PredictionEngine,
)
from .registry import ModelRegistry, ModelVersion, PublishRejectedError, model_key
from .sharding import JournalFollower, ShardDeadError, ShardRouter

__all__ = [
    "EngineOverloadedError",
    "EngineStoppedError",
    "JournalFollower",
    "ModelEvaluationError",
    "ModelRegistry",
    "ModelVersion",
    "PredictionEngine",
    "PublishRejectedError",
    "ShardDeadError",
    "ShardRouter",
    "model_key",
]
