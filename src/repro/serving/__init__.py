"""Streaming model-serving layer: versioned registry + micro-batching engine.

See ``docs/serving.md`` for the architecture and metrics reference,
``docs/store.md`` for crash-safe persistence (:class:`ModelRegistry`'s
``store=`` parameter) and warm-restart recovery, and the "Health,
hedging, and brownout" section of ``docs/serving.md`` for the
tail-tolerance layer (:mod:`repro.serving.health`).
"""

from .engine import (
    BrownoutShedError,
    EngineOverloadedError,
    EngineStoppedError,
    ModelEvaluationError,
    PredictionEngine,
)
from .health import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AIMDLimiter,
    BrownoutController,
    HealthTracker,
    HedgedFuture,
    HedgePolicy,
    LatencyDigest,
)
from .registry import ModelRegistry, ModelVersion, PublishRejectedError, model_key
from .sharding import JournalFollower, ShardDeadError, ShardRouter

__all__ = [
    "AIMDLimiter",
    "BrownoutController",
    "BrownoutShedError",
    "EngineOverloadedError",
    "EngineStoppedError",
    "HealthTracker",
    "HedgePolicy",
    "HedgedFuture",
    "JournalFollower",
    "LatencyDigest",
    "ModelEvaluationError",
    "ModelRegistry",
    "ModelVersion",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PredictionEngine",
    "PublishRejectedError",
    "ShardDeadError",
    "ShardRouter",
    "model_key",
]
