"""Micro-batching prediction engine over a model registry.

Callers submit prediction requests (a model name plus sample rows); a
dispatcher thread coalesces concurrent requests into micro-batches, stacks
their samples, and evaluates each batch with a **single**
``design_matrix`` call -- so the per-call assembly cost (and the
:class:`repro.runtime.DesignMatrixCache` entry, for repeated batches) is
shared across requests.  Evaluation fans out across a worker pool, one
task per (model, micro-batch) group.

Consistency guarantee: the current model version is resolved **once per
micro-batch group**, so every row of a response is computed from exactly
one published :class:`~repro.serving.registry.ModelVersion` -- a publish
or rollback racing with predictions can only land between batches, never
inside one.

Throughput and latency are reported through :mod:`repro.runtime.metrics`:
``serving.requests`` / ``serving.batches`` counters, the accumulated
``serving.batch_size`` (mean batch size = ``batch_size / batches``), and
the ``serving.evaluate`` timer; per-request wall-clock lives in
:meth:`PredictionEngine.stats`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..runtime.metrics import metrics
from .registry import ModelRegistry, ModelVersion

__all__ = ["PredictionEngine", "EngineStoppedError"]


class EngineStoppedError(RuntimeError):
    """Raised when submitting to an engine that is not running."""


@dataclass
class _Request:
    name: str
    x: np.ndarray  # (B, R) float64
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0


_STOP = object()


class PredictionEngine:
    """Micro-batching, multi-worker prediction front end.

    Parameters
    ----------
    registry:
        The :class:`~repro.serving.registry.ModelRegistry` to resolve model
        names against (resolution happens per micro-batch, at evaluation
        time).
    max_batch_size:
        Maximum number of requests coalesced into one evaluation.
    max_delay_seconds:
        How long the dispatcher lingers for additional requests after the
        first one of a batch arrives.  Zero disables lingering (each
        request still batches with whatever is already queued).
    workers:
        Worker threads evaluating micro-batches.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_size: int = 64,
        max_delay_seconds: float = 0.001,
        workers: int = 2,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay_seconds < 0:
            raise ValueError(
                f"max_delay_seconds must be >= 0, got {max_delay_seconds}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.registry = registry
        self.max_batch_size = int(max_batch_size)
        self.max_delay_seconds = float(max_delay_seconds)
        self.workers = int(workers)
        self._queue: "queue.Queue" = queue.Queue()
        self._dispatcher: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._running = False
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._rows = 0
        self._latency_total = 0.0
        self._latency_max = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PredictionEngine":
        """Start the dispatcher and worker pool (idempotent)."""
        with self._state_lock:
            if self._running:
                return self
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-serve"
            )
            self._running = True
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
            )
            self._dispatcher.start()
        return self

    def stop(self) -> None:
        """Drain in-flight work and stop the engine (idempotent)."""
        with self._state_lock:
            if not self._running:
                return
            self._running = False
            dispatcher = self._dispatcher
            pool = self._pool
            self._dispatcher = None
            self._pool = None
        self._queue.put(_STOP)
        if dispatcher is not None:
            dispatcher.join()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "PredictionEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        with self._state_lock:
            return self._running

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, name: str, x: np.ndarray) -> Future:
        """Enqueue a prediction request; returns a ``Future`` of the result.

        ``x`` is a single sample ``(R,)`` or a block ``(B, R)``; the future
        resolves to the prediction vector of shape ``(B,)`` (a single
        sample yields shape ``(1,)``).  Raises
        :class:`EngineStoppedError` if the engine is not running.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[np.newaxis, :]
        if x.ndim != 2:
            raise ValueError(f"x must be 1-D or 2-D, got shape {x.shape}")
        if not self.running:
            raise EngineStoppedError("PredictionEngine is not running")
        request = _Request(name=name, x=x, enqueued_at=time.perf_counter())
        metrics.increment("serving.requests")
        with self._stats_lock:
            self._requests += 1
            self._rows += x.shape[0]
        self._queue.put(request)
        return request.future

    def predict(
        self, name: str, x: np.ndarray, timeout: Optional[float] = 30.0
    ) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(name, x).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            head = self._queue.get()
            if head is _STOP:
                return
            batch = [head]
            deadline = time.perf_counter() + self.max_delay_seconds
            stopped = False
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining > 0:
                        item = self._queue.get(timeout=remaining)
                    else:
                        item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _STOP:
                    stopped = True
                    break
                batch.append(item)
            self._flush(batch)
            if stopped:
                return

    def _flush(self, batch: List[_Request]) -> None:
        groups: Dict[str, List[_Request]] = {}
        for request in batch:
            groups.setdefault(request.name, []).append(request)
        pool = self._pool
        for name, requests in groups.items():
            try:
                version = self.registry.current(name)
            except KeyError as exc:
                for request in requests:
                    request.future.set_exception(exc)
                continue
            metrics.increment("serving.batches")
            metrics.increment("serving.batch_size", len(requests))
            if pool is None:  # stop() raced the flush; evaluate inline
                self._evaluate(version, requests)
            else:
                pool.submit(self._evaluate, version, requests)

    def _evaluate(self, version: ModelVersion, requests: List[_Request]) -> None:
        try:
            with metrics.timer("serving.evaluate"):
                stacked = np.concatenate([r.x for r in requests], axis=0)
                design = version.model.basis.design_matrix(stacked)
                values = design @ version.model.coefficients
            offset = 0
            done = time.perf_counter()
            for request in requests:
                rows = request.x.shape[0]
                request.future.set_result(values[offset : offset + rows])
                offset += rows
                latency = done - request.enqueued_at
                with self._stats_lock:
                    self._latency_total += latency
                    if latency > self._latency_max:
                        self._latency_max = latency
            with self._stats_lock:
                self._batches += 1
        except Exception as exc:  # surface failures to every waiting caller
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Locked snapshot of engine-local throughput/latency counters."""
        with self._stats_lock:
            requests = self._requests
            batches = self._batches
            return {
                "requests": requests,
                "rows": self._rows,
                "batches": batches,
                "mean_batch_requests": requests / batches if batches else 0.0,
                "mean_latency_seconds": (
                    self._latency_total / requests if requests else 0.0
                ),
                "max_latency_seconds": self._latency_max,
            }
