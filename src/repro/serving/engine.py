"""Micro-batching prediction engine over a model registry.

Callers submit prediction requests (a model name plus sample rows); a
dispatcher thread coalesces concurrent requests into micro-batches, stacks
their samples, and evaluates each batch with a **single**
``design_matrix`` call -- so the per-call assembly cost (and the
:class:`repro.runtime.DesignMatrixCache` entry, for repeated batches) is
shared across requests.  Evaluation fans out across a worker pool, one
task per (model, micro-batch) group.

Consistency guarantee: the current model version is resolved **once per
micro-batch group**, so every row of a response is computed from exactly
one published :class:`~repro.serving.registry.ModelVersion` -- a publish
or rollback racing with predictions can only land between batches, never
inside one.

Self-healing (``docs/faults.md``): requests carry
:class:`~repro.faults.Deadline` s that the dispatcher and workers honor
(expired requests are dropped *before* any design-matrix work and counted
as ``serving.expired``); evaluation failures are retried under a
decorrelated-jitter :class:`~repro.faults.RetryPolicy`; a per-model-key
:class:`~repro.faults.CircuitBreaker` stops hammering a version that
keeps failing; and when the current version cannot be served, the engine
degrades to the registry's newest good earlier version (at most one
version stale, counted as ``serving.degraded``) instead of failing the
request.  A version whose circuit opens is quarantined via
:meth:`~repro.serving.registry.ModelRegistry.mark_bad`.

Overload protection (``docs/store.md`` has the full metrics table): the
request queue is **bounded** (``max_queue_depth``).  When a submit finds
it full, admission control first sheds the *oldest already-expired*
queued requests -- they could never produce a useful answer, so they
make room for live work (``serving.shed.expired``); if the queue is
still full the new request is rejected immediately with
:class:`EngineOverloadedError` (``serving.shed.rejected``) instead of
growing an unbounded backlog.  The queue depth therefore never exceeds
the configured bound, and :meth:`PredictionEngine.stats` reports the
live and peak depths.

Throughput and latency are reported through :mod:`repro.runtime.metrics`:
``serving.requests`` / ``serving.batches`` counters, the accumulated
``serving.batch_size`` (mean batch size = ``batch_size / batches``), the
``serving.evaluate`` timer, plus the resilience counters
(``serving.expired`` / ``retries`` / ``degraded`` / ``failed``, the
``serving.shed.*`` load-shedding counters, and the ``serving.breaker.*``
transitions); per-request wall-clock lives in
:meth:`PredictionEngine.stats`.
"""

from __future__ import annotations

import queue
import threading
from ..locks import named_condition, named_lock
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..analysis.contracts import check_close, contracts_enabled
from ..backends import FLOAT32_SERVING_RTOL, resolve_dtype
from ..faults import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExpiredError,
    RetryPolicy,
    failpoint,
)
from ..runtime.metrics import metrics
from .health import (
    PRIORITY_NORMAL,
    AIMDLimiter,
    BrownoutController,
    HealthTracker,
)
from .registry import ModelRegistry, ModelVersion

__all__ = [
    "BrownoutShedError",
    "EngineOverloadedError",
    "EngineStoppedError",
    "ModelEvaluationError",
    "PredictionEngine",
]

#: Fires once per evaluation *attempt* (before the design-matrix call);
#: latency plans here model a slow worker, error plans a flaky evaluator.
_FP_EVALUATE = failpoint("engine.evaluate")


class EngineStoppedError(RuntimeError):
    """Raised when submitting to an engine that is not running."""


class EngineOverloadedError(RuntimeError):
    """A submit was rejected because the bounded request queue is full.

    Raised *immediately* at the submission site (no future involved), so
    an overloaded caller gets backpressure in microseconds instead of a
    deadline expiry seconds later.  Shedding already-expired queued
    requests is always tried first; see ``serving.shed.*``.
    """


class BrownoutShedError(EngineOverloadedError):
    """A request was shed by brownout priority admission.

    Raised at the submission site when a :class:`~repro.serving.health.
    BrownoutController` is configured and the engine's health score has
    degraded below the floor for the request's priority.  Subclasses
    :class:`EngineOverloadedError` so existing overload handling (the
    load harness, callers treating overload as backpressure) degrades
    gracefully without knowing about brownout.
    """


class ModelEvaluationError(RuntimeError):
    """A model version produced unusable (non-finite) predictions.

    Deterministic per version, so never retried -- it trips the circuit
    breaker and triggers degradation to the last good version instead.
    """


@dataclass
class _Request:
    name: str
    x: np.ndarray  # (B, R) float64
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0
    deadline: Optional[Deadline] = None


_STOP = object()

#: Sentinel meaning "construct a fresh default CircuitBreaker per engine"
#: (a shared default instance would couple unrelated engines' states).
_DEFAULT_BREAKER = object()

#: Slice length of the liveness-checked un-timed wait
#: (:meth:`PredictionEngine.await_result`): long enough that the poll is
#: free next to any real evaluation, short enough that a dead dispatcher
#: is noticed promptly.
_LIVENESS_POLL_SECONDS = 0.05


class _BoundedRequestQueue:
    """FIFO of :class:`_Request` s with a hard depth bound.

    Admission control lives here so depth accounting, shedding, and the
    bound check happen under one condition variable: :meth:`offer`
    either admits the request (possibly after evicting oldest-expired
    entries to make room) or reports rejection -- the depth can never
    exceed the bound, which :attr:`peak_depth` records for the tests.
    Control sentinels (stop markers) bypass the bound; they must always
    be deliverable.  :meth:`pause` parks consumers without blocking
    producers, so tests can stage a deterministic backlog.

    ``bound`` may be a static int, ``None`` (unbounded), or a callable
    returning the live bound -- the adaptive-concurrency path passes
    :meth:`AIMDLimiter.current_limit <repro.serving.health.AIMDLimiter.
    current_limit>` so every admission reads the freshest limit.
    """

    def __init__(self, bound: Union[int, Callable[[], Optional[int]], None]):
        self._bound = bound
        self._cond = named_condition("serving.engine.queue")
        self._items: "deque" = deque()
        self._depth = 0  # _Request entries only; sentinels not counted
        self._peak = 0
        self._paused = False

    def offer(self, request: _Request) -> Tuple[bool, List[_Request]]:
        """Try to admit ``request``; returns ``(admitted, shed)``.

        ``shed`` lists expired requests evicted (oldest first) to make
        room; the caller owns failing their futures.  The shed sweep
        runs even when the newcomer is ultimately rejected, so a full
        queue of dead requests never starves live traffic.
        """
        bound = self._bound() if callable(self._bound) else self._bound
        with self._cond:
            shed: List[_Request] = []
            if bound is not None and self._depth >= bound:
                need = self._depth - bound + 1
                retained: "deque" = deque()
                for item in self._items:
                    if (
                        len(shed) < need
                        and isinstance(item, _Request)
                        and item.deadline is not None
                        and item.deadline.expired
                    ):
                        shed.append(item)
                    else:
                        retained.append(item)
                self._items = retained
                self._depth -= len(shed)
            if bound is not None and self._depth >= bound:
                return False, shed
            self._items.append(request)
            self._depth += 1
            if self._depth > self._peak:
                self._peak = self._depth
            self._cond.notify()
            return True, shed

    def put_sentinel(self, sentinel: object) -> None:
        with self._cond:
            self._items.append(sentinel)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None):
        """Pop the oldest item; raises ``queue.Empty`` on timeout/pause."""
        with self._cond:
            ready = self._cond.wait_for(
                lambda: self._items and not self._paused, timeout
            )
            if not ready:
                raise queue.Empty
            item = self._items.popleft()
            if isinstance(item, _Request):
                self._depth -= 1
            return item

    def get_nowait(self):
        return self.get(timeout=0)

    def pause(self) -> None:
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    @property
    def paused(self) -> bool:
        with self._cond:
            return self._paused

    def depth(self) -> int:
        with self._cond:
            return self._depth

    def peak_depth(self) -> int:
        with self._cond:
            return self._peak


class PredictionEngine:
    """Micro-batching, multi-worker prediction front end.

    Parameters
    ----------
    registry:
        The :class:`~repro.serving.registry.ModelRegistry` to resolve model
        names against (resolution happens per micro-batch, at evaluation
        time).
    max_batch_size:
        Maximum number of requests coalesced into one evaluation.
    max_delay_seconds:
        How long the dispatcher lingers for additional requests after the
        first one of a batch arrives.  Zero disables lingering (each
        request still batches with whatever is already queued).
    workers:
        Worker threads evaluating micro-batches.
    retry_policy:
        Bounded retry with decorrelated-jitter backoff applied to each
        evaluation; defaults to 3 attempts with caller errors and
        :class:`ModelEvaluationError` classified non-retryable.
    breaker:
        Per-model-key circuit breaker; pass ``None`` to disable.
    serve_last_good:
        Degrade to the registry's newest good earlier version when the
        current one cannot be evaluated (instead of failing requests).
    default_timeout_seconds:
        Deadline attached to requests submitted without one (``None`` =
        no implicit deadline).
    max_queue_depth:
        Hard bound on queued (not yet dispatched) requests.  A full
        queue sheds its oldest expired entries first and then rejects
        new submits with :class:`EngineOverloadedError`; ``None``
        disables the bound (pre-overload-protection behavior).
    serving_dtype:
        Numeric precision of the serving path: ``None``/float64
        (default, the canonical bits) or float32 (opt-in
        reduced-precision mode -- predictions and response arrays are
        float32).  With contracts enabled (``REPRO_CONTRACTS``), every
        float32 batch is additionally evaluated in float64 and the
        float32 result must stay within ``float32_rtol`` of it
        (inf-norm relative; violations surface as caller errors and
        never trip the circuit breaker).  See ``docs/backends.md``.
    float32_rtol:
        Relative error bound enforced on float32 batches; defaults to
        :data:`repro.backends.FLOAT32_SERVING_RTOL`.
    limiter:
        Optional :class:`~repro.serving.health.AIMDLimiter`.  When set,
        the bounded queue reads the limiter's live limit on every
        admission instead of the static ``max_queue_depth`` (which then
        only seeds the limiter-less fallback), and every successful
        request latency feeds the limiter's AIMD windows.
    brownout:
        Optional :class:`~repro.serving.health.BrownoutController`.
        When set, every :meth:`submit` is gated on the request's
        ``priority`` against the live health score; shed requests raise
        :class:`BrownoutShedError` at the submission site.
    ready_threshold:
        Health-score floor for the :meth:`ready` probe (liveness is
        separate; see :meth:`live`).
    fault_tag:
        Tag attached to this engine's failpoint hits
        (``engine.evaluate``), so tag-scoped fault plans can target one
        engine instance; the shard router tags each shard
        ``"shard-<id>"``.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_size: int = 64,
        max_delay_seconds: float = 0.001,
        workers: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = _DEFAULT_BREAKER,  # type: ignore[assignment]
        serve_last_good: bool = True,
        default_timeout_seconds: Optional[float] = None,
        max_queue_depth: Optional[int] = 1024,
        serving_dtype: Optional[object] = None,
        float32_rtol: float = FLOAT32_SERVING_RTOL,
        limiter: Optional[AIMDLimiter] = None,
        brownout: Optional[BrownoutController] = None,
        health: Optional[HealthTracker] = None,
        ready_threshold: float = 0.5,
        fault_tag: Optional[str] = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay_seconds < 0:
            raise ValueError(
                f"max_delay_seconds must be >= 0, got {max_delay_seconds}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if default_timeout_seconds is not None and default_timeout_seconds <= 0:
            raise ValueError(
                "default_timeout_seconds must be > 0 or None, got "
                f"{default_timeout_seconds}"
            )
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        self.registry = registry
        self.max_batch_size = int(max_batch_size)
        self.max_delay_seconds = float(max_delay_seconds)
        self.workers = int(workers)
        if retry_policy is None:
            retry_policy = RetryPolicy(
                non_retryable=(TypeError, ValueError, KeyError, ModelEvaluationError)
            )
        self.retry_policy = retry_policy
        if breaker is _DEFAULT_BREAKER:
            breaker = CircuitBreaker()
        self.breaker = breaker
        self.serve_last_good = bool(serve_last_good)
        self.default_timeout_seconds = default_timeout_seconds
        self._retry_rng = retry_policy.make_rng()
        self._retry_rng_lock = named_lock("serving.engine.retry_rng")
        self.max_queue_depth = (
            None if max_queue_depth is None else int(max_queue_depth)
        )
        self.serving_dtype = resolve_dtype(serving_dtype)
        if float32_rtol <= 0:
            raise ValueError(f"float32_rtol must be > 0, got {float32_rtol}")
        self.float32_rtol = float(float32_rtol)
        self._reduced_precision = self.serving_dtype != np.dtype(np.float64)
        if not 0.0 <= ready_threshold <= 1.0:
            raise ValueError(
                f"ready_threshold must be in [0, 1], got {ready_threshold}"
            )
        self.limiter = limiter
        self.brownout = brownout
        self.health = health if health is not None else HealthTracker()
        self.ready_threshold = float(ready_threshold)
        self.fault_tag = fault_tag
        self._last_ready: Optional[bool] = None
        # With a limiter, the queue bound is the live AIMD limit; the
        # static max_queue_depth stays as the limiter-less fallback.
        if limiter is not None:
            self._queue = _BoundedRequestQueue(limiter.current_limit)
        else:
            self._queue = _BoundedRequestQueue(self.max_queue_depth)
        self._dispatcher: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._running = False
        self._state_lock = named_lock("serving.engine.state")
        self._stats_lock = named_lock("serving.engine.stats")
        self._requests = 0
        self._batches = 0
        self._rows = 0
        self._latency_total = 0.0
        self._latency_max = 0.0
        self._expired = 0
        self._retries = 0
        self._degraded = 0
        self._failed = 0
        self._max_version_lag = 0
        self._shed_expired = 0
        self._shed_rejected = 0
        self._cancelled = 0
        self._brownout_shed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PredictionEngine":
        """Start the dispatcher and worker pool (idempotent)."""
        with self._state_lock:
            if self._running:
                return self
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-serve"
            )
            self._running = True
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
            )
            self._dispatcher.start()
        return self

    def stop(self) -> None:
        """Drain in-flight work and stop the engine (idempotent).

        Requests already picked up by the dispatcher are flushed and
        evaluated; requests still queued behind the stop sentinel (or that
        raced in during shutdown) are failed fast with
        :class:`EngineStoppedError` -- no future is ever left unresolved
        and no dispatcher thread is orphaned.
        """
        with self._state_lock:
            if not self._running:
                return
            self._running = False
            dispatcher = self._dispatcher
            pool = self._pool
            self._dispatcher = None
            self._pool = None
        self._queue.put_sentinel(_STOP)
        # A paused dispatcher would never see the stop sentinel.
        self._queue.resume()
        if dispatcher is not None:
            # Un-timed by design: the sentinel above guarantees the
            # dispatcher exits after at most one in-flight batch, and
            # stop() must not return before the queue is drained.
            dispatcher.join()  # repro: noqa[REP014] -- bounded by the stop sentinel
        self._drain_queue_failing_fast()
        if pool is not None:
            pool.shutdown(wait=True)

    def close(self) -> None:
        """Alias for :meth:`stop` (drain then shut down; idempotent)."""
        self.stop()

    def _drain_queue_failing_fast(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            if not item.future.done():
                metrics.increment("serving.shutdown_drops")
                item.future.set_exception(
                    EngineStoppedError(
                        "engine stopped before the request was evaluated"
                    )
                )

    def __enter__(self) -> "PredictionEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        with self._state_lock:
            return self._running

    # ------------------------------------------------------------------
    # Health probes
    # ------------------------------------------------------------------
    def queue_bound(self) -> Optional[int]:
        """The live admission bound: the limiter's limit, else the static one."""
        if self.limiter is not None:
            return self.limiter.current_limit()
        return self.max_queue_depth

    def live(self) -> bool:
        """Liveness probe: the engine is running and its dispatcher breathes.

        Pure state inspection -- no metrics, no side effects -- so it is
        safe on arbitrary hot paths (``await_result`` polls it).
        """
        with self._state_lock:
            running = self._running
            dispatcher = self._dispatcher
        return running and dispatcher is not None and dispatcher.is_alive()

    def health_score(self) -> float:
        """Current health in ``[0, 1]``; see :class:`HealthTracker`.

        Folds the tracker's latency/error view with this engine's live
        queue pressure and the fraction of open breaker keys.
        """
        bound = self.queue_bound()
        depth = self._queue.depth()
        queue_fraction = depth / bound if bound else 0.0
        breaker_open_fraction = 0.0
        if self.breaker is not None:
            snapshot = self.breaker.snapshot()
            if snapshot:
                open_keys = sum(
                    1
                    for state in snapshot.values()
                    if state.get("state") == "open"
                )
                breaker_open_fraction = open_keys / len(snapshot)
        return self.health.score(
            queue_fraction=queue_fraction,
            breaker_open_fraction=breaker_open_fraction,
        )

    def ready(self) -> bool:
        """Readiness probe: live *and* healthy enough to take traffic.

        Transition edges are counted (``serving.health.degraded`` /
        ``serving.health.recovered``) so an operator sees flaps, not just
        the current state; the counters only move when a probe is
        actually called -- an unprobed engine emits nothing.
        """
        is_ready = self.live() and self.health_score() >= self.ready_threshold
        transition: Optional[str] = None
        with self._stats_lock:
            # Baseline is "ready": an engine failing its very first probe
            # is a degradation, not a non-event.
            previous = True if self._last_ready is None else self._last_ready
            if previous != is_ready:
                transition = "recovered" if is_ready else "degraded"
            self._last_ready = is_ready
        if transition == "degraded":
            metrics.increment("serving.health.degraded")
        elif transition == "recovered":
            metrics.increment("serving.health.recovered")
        return is_ready

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        x: np.ndarray,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        priority: int = PRIORITY_NORMAL,
    ) -> Future:
        """Enqueue a prediction request; returns a ``Future`` of the result.

        ``x`` is a single sample ``(R,)`` or a block ``(B, R)``; the future
        resolves to the prediction vector of shape ``(B,)`` (a single
        sample yields shape ``(1,)``).  ``timeout`` (seconds from now) or
        an explicit ``deadline`` attaches an expiry the dispatcher and
        workers enforce -- an expired request is dropped *before* any
        evaluation work and its future fails with
        :class:`~repro.faults.DeadlineExpiredError`.  ``priority`` only
        matters with a brownout controller configured: a degraded engine
        sheds :data:`~repro.serving.health.PRIORITY_LOW` (then
        ``PRIORITY_NORMAL``) work at the submission site with
        :class:`BrownoutShedError`.  Raises :class:`EngineStoppedError`
        if the engine is not running and :class:`EngineOverloadedError`
        if the bounded queue is full even after shedding its oldest
        expired entries.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[np.newaxis, :]
        if x.ndim != 2:
            raise ValueError(f"x must be 1-D or 2-D, got shape {x.shape}")
        if timeout is not None and deadline is not None:
            raise ValueError("pass timeout or deadline, not both")
        if deadline is None:
            if timeout is not None:
                deadline = Deadline.after(timeout)
            elif self.default_timeout_seconds is not None:
                deadline = Deadline.after(self.default_timeout_seconds)
        if not self.running:
            raise EngineStoppedError("PredictionEngine is not running")
        if self.brownout is not None and not self.brownout.admit(
            priority, self.health_score()
        ):
            with self._stats_lock:
                self._brownout_shed += 1
            raise BrownoutShedError(
                f"request for {name!r} (priority {priority}) shed by "
                "brownout: engine health degraded"
            )
        request = _Request(
            name=name,
            x=x,
            enqueued_at=time.perf_counter(),
            deadline=deadline,
        )
        admitted, shed = self._queue.offer(request)
        for stale in shed:
            self._shed(stale)
        if not admitted:
            metrics.increment("serving.shed.rejected")
            with self._stats_lock:
                self._shed_rejected += 1
            raise EngineOverloadedError(
                f"request queue full ({self.queue_bound()} deep); "
                f"request for {name!r} rejected"
            )
        metrics.increment("serving.requests")
        with self._stats_lock:
            self._requests += 1
            self._rows += x.shape[0]
        return request.future

    def predict(
        self, name: str, x: np.ndarray, timeout: Optional[float] = 30.0
    ) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`.

        ``timeout`` is one total budget: a single deadline is computed at
        entry, attached to the request (so the dispatcher drops it as
        expired if the caller has already given up -- no ghost
        evaluations), and the blocking wait consumes only the budget
        *remaining* after submission.  (Passing ``timeout`` to both
        :meth:`submit` and ``Future.result`` would restart the clock at
        the wait and double the worst-case wall time.)

        ``timeout=None`` means "no deadline on the *request*", not "wait
        forever on a corpse": the wait polls the engine's liveness (see
        :meth:`await_result`), so a dead dispatcher fails the call fast
        with :class:`EngineStoppedError` instead of stranding the caller.
        """
        if timeout is None:
            return self.await_result(self.submit(name, x), name=name)
        deadline = Deadline.after(timeout)
        future = self.submit(name, x, deadline=deadline)
        return future.result(timeout=deadline.remaining())

    def await_result(self, future: Future, name: str = "request") -> np.ndarray:
        """Wait for ``future`` without a deadline but with a liveness check.

        The un-timed ``Future.result()`` convenience is a hang in
        disguise: a dispatcher that died (or an engine stopped without
        resolving this future) strands the caller forever.  This wait
        polls in short slices and re-checks :meth:`live` between them --
        when the engine is no longer live it makes one final grab (a
        racing :meth:`stop` may have just resolved the future) and then
        fails fast with :class:`EngineStoppedError`.
        """
        while True:
            try:
                return future.result(timeout=_LIVENESS_POLL_SECONDS)
            except FuturesTimeoutError:
                if self.live():
                    continue
            try:
                return future.result(timeout=_LIVENESS_POLL_SECONDS)
            except FuturesTimeoutError:
                raise EngineStoppedError(
                    f"engine is not live; abandoning un-timed wait for "
                    f"{name!r} (submit with a timeout/deadline for "
                    "bounded waits)"
                ) from None

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            head = self._queue.get()
            if head is _STOP:
                return
            batch = [head]
            deadline = time.perf_counter() + self.max_delay_seconds
            stopped = False
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining > 0:
                        item = self._queue.get(timeout=remaining)
                    else:
                        item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _STOP:
                    stopped = True
                    break
                batch.append(item)
            self._flush(batch)
            if stopped:
                return

    def _expire(self, request: _Request) -> None:
        metrics.increment("serving.expired")
        with self._stats_lock:
            self._expired += 1
        if not request.future.done():
            request.future.set_exception(
                DeadlineExpiredError(
                    f"request for {request.name!r} expired before evaluation"
                )
            )

    def _shed(self, request: _Request) -> None:
        """Fail a queued request evicted by overload admission control."""
        metrics.increment("serving.shed.expired")
        with self._stats_lock:
            self._shed_expired += 1
        if not request.future.done():
            request.future.set_exception(
                DeadlineExpiredError(
                    f"request for {request.name!r} expired in queue and was "
                    "shed under overload"
                )
            )

    # ------------------------------------------------------------------
    # Dispatch gating (deterministic overload tests; see docs/store.md)
    # ------------------------------------------------------------------
    def pause_dispatch(self) -> None:
        """Stop the dispatcher from picking up new batches.

        Submissions keep queueing (and shedding) normally, so a test can
        stage an exact backlog and observe admission control without
        racing the dispatcher.  Batches already picked up still finish.
        Idempotent; :meth:`stop` implies :meth:`resume_dispatch`.
        """
        self._queue.pause()

    def resume_dispatch(self) -> None:
        """Re-enable batch pickup after :meth:`pause_dispatch`."""
        self._queue.resume()

    def _flush(self, batch: List[_Request]) -> None:
        groups: Dict[str, List[_Request]] = {}
        for request in batch:
            # Deadline check at the dispatcher: expired requests (e.g. a
            # caller-side predict() timeout that already gave up) must not
            # cost a design_matrix call.
            if request.deadline is not None and request.deadline.expired:
                self._expire(request)
                continue
            groups.setdefault(request.name, []).append(request)
        with self._state_lock:
            pool = self._pool
        for name, requests in groups.items():
            try:
                version = self.registry.current(name)
            except KeyError as exc:
                for request in requests:
                    if not request.future.done():  # a cancel may have landed
                        request.future.set_exception(exc)
                continue
            metrics.increment("serving.batches")
            metrics.increment("serving.batch_size", len(requests))
            if pool is None:  # stop() raced the flush; evaluate inline
                self._evaluate(version, requests)
            else:
                pool.submit(self._evaluate, version, requests)

    # ------------------------------------------------------------------
    # Evaluation (worker side)
    # ------------------------------------------------------------------
    def _attempt(self, version: ModelVersion, stacked: np.ndarray) -> np.ndarray:
        _FP_EVALUATE.hit(tag=self.fault_tag)
        basis = version.model.basis
        coefficients = version.model.coefficients
        with metrics.timer("serving.evaluate"):
            # Overflow is converted to an explicit error below, not a warning.
            with np.errstate(over="ignore", invalid="ignore"):
                values = basis.fused_predict(
                    stacked, coefficients, dtype=self.serving_dtype
                )
        if not np.all(np.isfinite(values)):
            raise ModelEvaluationError(
                f"model {version.name!r} v{version.version} produced "
                "non-finite predictions"
            )
        if self._reduced_precision:
            metrics.increment("backends.float32_serves")
            if contracts_enabled():
                # The float32 accuracy contract: re-evaluate the batch in
                # float64 and bound the drift.  A violation raises
                # ContractViolationError (a TypeError), which the retry and
                # breaker layers classify as a caller error -- an accuracy
                # bound miss says nothing about the version's health.
                metrics.increment("backends.float32_bound_checks")
                with np.errstate(over="ignore", invalid="ignore"):
                    reference = basis.fused_predict(stacked, coefficients)
                check_close(
                    values,
                    reference,
                    rtol=self.float32_rtol,
                    name=(
                        f"float32 predictions for model {version.name!r} "
                        f"v{version.version}"
                    ),
                )
        return values

    def _evaluate_with_retry(
        self,
        version: ModelVersion,
        stacked: np.ndarray,
        deadline: Optional[Deadline],
    ) -> np.ndarray:
        def on_retry(error: BaseException, delay: float) -> None:
            metrics.increment("serving.retries")
            with self._stats_lock:
                self._retries += 1

        return self.retry_policy.call(
            lambda: self._attempt(version, stacked),
            rng=self._retry_rng,
            rng_lock=self._retry_rng_lock,
            deadline=deadline,
            on_retry=on_retry,
        )

    def _cancelled_drop(self, request: _Request) -> None:
        """Account a request whose future was cancelled while queued.

        The cancellation-aware lifecycle: a hedged request's losing
        attempt (or any caller-side ``Future.cancel()``) that is still
        queued is dropped here *before* any stacking or design-matrix
        work -- a cancelled hedge costs its queue slot and nothing else.
        """
        metrics.increment("serving.cancelled")
        with self._stats_lock:
            self._cancelled += 1

    def _evaluate(self, version: ModelVersion, requests: List[_Request]) -> None:
        live: List[_Request] = []
        for request in requests:
            # Re-check at the worker: the group may have aged in the pool.
            if request.deadline is not None and request.deadline.expired:
                self._expire(request)
            elif not request.future.set_running_or_notify_cancel():
                # Cancelled while queued (hedge loser, caller gave up):
                # skip it before it costs evaluation work.  Futures that
                # survive this gate are RUNNING and can no longer be
                # cancelled, so the set_result below cannot race a cancel.
                self._cancelled_drop(request)
            else:
                live.append(request)
        if not live:
            return
        name = live[0].name
        deadlines = [r.deadline for r in live if r.deadline is not None]
        group_deadline = min(deadlines, key=lambda d: d.at) if deadlines else None
        stacked = np.concatenate([r.x for r in live], axis=0)

        served = version
        values: Optional[np.ndarray] = None
        error: Optional[BaseException] = None
        caller_error = False
        breaker = self.breaker
        if breaker is None or breaker.allow(version.key):
            try:
                values = self._evaluate_with_retry(version, stacked, group_deadline)
            except Exception as exc:
                error = exc
                # Bad requests (wrong shape, unknown column) say nothing
                # about the model's health: they must neither trip the
                # breaker nor trigger degradation.
                caller_error = isinstance(exc, (TypeError, ValueError, KeyError))
                if breaker is not None and not caller_error:
                    breaker.record_failure(version.key)
                    if (
                        self.serve_last_good
                        and breaker.state(version.key) == "open"
                    ):
                        # Quarantine the version so the registry degrades
                        # future resolution to last-good directly.
                        self.registry.mark_bad(name, version.version)
            else:
                if breaker is not None:
                    breaker.record_success(version.key)
        else:
            error = CircuitOpenError(
                f"circuit open for model {name!r} v{version.version}"
            )

        if values is None and self.serve_last_good and not caller_error:
            fallback = self.registry.previous_good(
                name, before_version=version.version
            )
            if fallback is not None:
                try:
                    values = self._evaluate_with_retry(
                        fallback, stacked, group_deadline
                    )
                except Exception:
                    if breaker is not None:
                        breaker.record_failure(fallback.key)
                else:
                    if breaker is not None:
                        breaker.record_success(fallback.key)
                    served = fallback
                    lag = version.version - fallback.version
                    metrics.increment("serving.degraded")
                    with self._stats_lock:
                        self._degraded += 1
                        if lag > self._max_version_lag:
                            self._max_version_lag = lag

        if values is None:
            if error is None:
                error = ModelEvaluationError(
                    f"no servable version of model {name!r}"
                )
            metrics.increment("serving.failed", len(live))
            with self._stats_lock:
                self._failed += len(live)
            for request in live:
                self.health.observe_outcome(False)
                if not request.future.done():
                    request.future.set_exception(error)
            return

        offset = 0
        done = time.perf_counter()
        for request in live:
            rows = request.x.shape[0]
            request.future.set_result(values[offset : offset + rows])
            offset += rows
            latency = done - request.enqueued_at
            # Feed the health tracker (always; pure bookkeeping) and the
            # AIMD limiter (opt-in) with the served latency.
            self.health.observe_latency(latency)
            self.health.observe_outcome(True)
            if self.limiter is not None:
                self.limiter.observe(latency)
            with self._stats_lock:
                self._latency_total += latency
                if latency > self._latency_max:
                    self._latency_max = latency
        with self._stats_lock:
            self._batches += 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """One point-in-time-consistent snapshot of the engine's state.

        Numeric keys plus ``"breaker"``, a nested per-model-key state map
        (empty when the breaker is disabled).  Everything -- counters,
        queue depths, and the breaker snapshot -- is gathered inside a
        single ``_stats_lock`` critical section, so the returned mapping
        is internally consistent: no counter in it can reflect an event
        that another key has not seen yet.  (Previously the breaker was
        snapshotted *after* the lock was released, so a failure landing
        in that window produced a stats dict whose breaker state was
        newer than its ``failed`` count.)
        """
        # Health inputs are gathered before the stats lock: the tracker,
        # limiter, and brownout controller have locks of their own and
        # nesting them under _stats_lock would add lock-order edges for
        # no consistency gain (they are monotone counters).
        health_score = self.health_score()
        is_live = self.live()
        limit = None if self.limiter is None else self.limiter.current_limit()
        brownout_active = False if self.brownout is None else self.brownout.active
        with self._stats_lock:
            requests = self._requests
            batches = self._batches
            out: Dict[str, object] = {
                "requests": requests,
                "rows": self._rows,
                "batches": batches,
                "mean_batch_requests": requests / batches if batches else 0.0,
                "mean_latency_seconds": (
                    self._latency_total / requests if requests else 0.0
                ),
                "max_latency_seconds": self._latency_max,
                "expired": self._expired,
                "retries": self._retries,
                "degraded": self._degraded,
                "failed": self._failed,
                "max_version_lag": self._max_version_lag,
                "shed_expired": self._shed_expired,
                "shed_rejected": self._shed_rejected,
                "cancelled": self._cancelled,
                "brownout_shed": self._brownout_shed,
                "queue_depth": self._queue.depth(),
                "peak_queue_depth": self._queue.peak_depth(),
                "queue_bound": (
                    limit if limit is not None else self.max_queue_depth
                ),
                "limit": limit,
                "health_score": health_score,
                "live": is_live,
                "ready": (
                    is_live and health_score >= self.ready_threshold
                ),
                "brownout_active": brownout_active,
                "breaker": self.breaker.snapshot() if self.breaker else {},
            }
        return out
