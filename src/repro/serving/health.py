"""Tail-tolerant serving primitives: health scoring, hedging, AIMD limits.

The sharded tier (``repro.serving.sharding``) treats a *dead* shard
correctly -- the ring skips it and warm replicas absorb its names -- but
a *slow* shard (GC pause, cold cache after restart, noisy neighbor) is
still routed to as if it were healthy, so one straggler drags p99 for
every model it owns while idle replicas hold the same bits.  This module
supplies the four pieces that close that gap (``docs/serving.md`` has
the operator-facing runbook):

* :class:`LatencyDigest` -- a fixed-bucket, log-spaced latency histogram
  (stdlib + numpy only; no new deps).  Constant memory, O(buckets)
  quantile reads, thread-safe.
* :class:`HealthTracker` -- folds the digest's quantiles, a windowed
  error rate, breaker state, and queue depth into one health score in
  ``[0, 1]``; the engine exposes it through liveness/readiness probes.
* :class:`HedgePolicy` + :class:`HedgedFuture` -- hedged requests: when
  the primary shard has not answered within an adaptive hedge delay
  (the router's tracked latency quantile, clamped), a second attempt is
  dispatched to a warm replica that already holds the model via journal
  replication; the first result wins and the loser is cancelled.  A
  token-bucket **hedge budget** caps hedges at a fraction of submitted
  requests, so hedging can never amplify an overload into a retry storm.
* :class:`AIMDLimiter` -- an adaptive concurrency limit (additive
  increase / multiplicative decrease on observed latency vs. a target,
  clamped to ``[min, max]``) as an opt-in alternative to a static
  ``max_queue_depth``; :class:`BrownoutController` sheds optional /
  low-priority work first when the health score degrades.

Determinism: nothing here spawns a thread or reads a hidden clock.  The
limiter advances on *count-based* observation windows (same latency
trace -> same limit trace, the property suite pins this down), the
brownout controller is a pure function of the score it is handed, and
hedge decisions -- inherently timing-driven -- are confined to counters
(``serving.hedge.*``) that are excluded from the chaos suite's
deterministic signatures, exactly like the ``lock.*`` watchdog family.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..locks import named_lock
from ..runtime.metrics import metrics

__all__ = [
    "AIMDLimiter",
    "BrownoutController",
    "HealthTracker",
    "HedgePolicy",
    "HedgedFuture",
    "LatencyDigest",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
]

#: Request priorities for brownout shedding: LOW is optional work shed
#: first, HIGH survives the deepest brownout.
PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2


class LatencyDigest:
    """Fixed-bucket log-spaced latency histogram with quantile reads.

    Buckets are geometrically spaced between ``min_seconds`` and
    ``max_seconds`` (``buckets_per_decade`` per power of ten), plus one
    underflow and one overflow bucket -- constant memory regardless of
    how many samples stream through, which is what lets every request
    feed it on the hot path.  :meth:`quantile` returns the *upper edge*
    of the bucket where the cumulative count crosses the rank, a
    conservative (never under-reporting) estimate with bounded relative
    error ``10^(1/buckets_per_decade) - 1`` (~17% at the default 15
    buckets per decade).
    """

    def __init__(
        self,
        min_seconds: float = 1e-5,
        max_seconds: float = 60.0,
        buckets_per_decade: int = 15,
    ):
        if min_seconds <= 0 or max_seconds <= min_seconds:
            raise ValueError(
                f"need 0 < min_seconds < max_seconds, got "
                f"{min_seconds} / {max_seconds}"
            )
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self._log_min = math.log10(min_seconds)
        decades = math.log10(max_seconds) - self._log_min
        self._per_decade = int(buckets_per_decade)
        inner = max(1, math.ceil(decades * self._per_decade))
        # index 0 = underflow, 1..inner = log-spaced, inner+1 = overflow
        self._counts = [0] * (inner + 2)
        self._inner = inner
        self._total = 0
        self._lock = named_lock("serving.health.digest")

    def _bucket(self, seconds: float) -> int:
        if seconds <= 0:
            return 0
        position = (math.log10(seconds) - self._log_min) * self._per_decade
        if position < 0:
            return 0
        index = int(position) + 1
        return min(index, self._inner + 1)

    def _edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` in seconds."""
        if index <= 0:
            return 10.0 ** self._log_min
        exponent = self._log_min + index / self._per_decade
        return 10.0 ** exponent

    def observe(self, seconds: float) -> None:
        """Fold one latency sample into the histogram."""
        index = self._bucket(float(seconds))
        with self._lock:
            self._counts[index] += 1
            self._total += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    def quantile(self, q: float) -> Optional[float]:
        """Conservative ``q``-quantile in seconds; ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            total = self._total
            counts = list(self._counts)
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                return self._edge(index)
        return self._edge(len(counts) - 1)

    def snapshot(self) -> Dict[str, float]:
        """Point-in-time p50/p95/p99 plus the sample count."""
        with self._lock:
            total = self._total
        out: Dict[str, float] = {"count": float(total)}
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            value = self.quantile(q)
            out[label] = 0.0 if value is None else value
        return out


class HealthTracker:
    """Folds latency, errors, breaker state, and queue depth into a score.

    The score is ``1 - (weighted penalties)``, clamped to ``[0, 1]``:

    * **error rate** over the last ``window`` outcomes (weight
      ``error_weight``) -- a shard failing half its evaluations is sick
      no matter how fast it fails;
    * **latency**: how far the digest's ``latency_quantile`` sits above
      ``target_latency_seconds`` (weight ``latency_weight``, penalty
      saturating at 3x the target).  With no target configured the
      latency term is skipped -- absolute latency is workload-specific;
    * **queue pressure** and **breaker state** are positional arguments
      to :meth:`score` because they live with the caller (the engine
      knows its queue bound and its breaker snapshot, the tracker does
      not).

    Pure bookkeeping: no metrics, no clock, no threads -- every engine
    carries one tracker whether or not anything reads it, so it must be
    free of side effects on the default path (the chaos suite's bitwise
    counter signatures depend on that).
    """

    def __init__(
        self,
        window: int = 128,
        target_latency_seconds: Optional[float] = None,
        latency_quantile: float = 0.95,
        error_weight: float = 1.0,
        latency_weight: float = 0.5,
        queue_weight: float = 0.5,
        breaker_weight: float = 1.0,
        digest: Optional[LatencyDigest] = None,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if target_latency_seconds is not None and target_latency_seconds <= 0:
            raise ValueError(
                "target_latency_seconds must be > 0 or None, got "
                f"{target_latency_seconds}"
            )
        self.window = int(window)
        self.target_latency_seconds = target_latency_seconds
        self.latency_quantile = float(latency_quantile)
        self.error_weight = float(error_weight)
        self.latency_weight = float(latency_weight)
        self.queue_weight = float(queue_weight)
        self.breaker_weight = float(breaker_weight)
        self.digest = digest if digest is not None else LatencyDigest()
        self._lock = named_lock("serving.health.tracker")
        self._outcomes: List[bool] = []
        self._next = 0  # ring-buffer write cursor once the window fills

    def observe_latency(self, seconds: float) -> None:
        self.digest.observe(seconds)

    def observe_outcome(self, ok: bool) -> None:
        """Record one request outcome into the rolling window."""
        with self._lock:
            if len(self._outcomes) < self.window:
                self._outcomes.append(bool(ok))
            else:
                self._outcomes[self._next] = bool(ok)
                self._next = (self._next + 1) % self.window

    def error_rate(self) -> float:
        """Fraction of failures over the rolling window (0.0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            failures = sum(1 for ok in self._outcomes if not ok)
            return failures / len(self._outcomes)

    def _latency_penalty(self) -> float:
        if self.target_latency_seconds is None:
            return 0.0
        observed = self.digest.quantile(self.latency_quantile)
        if observed is None or observed <= self.target_latency_seconds:
            return 0.0
        # Saturates at 3x target: beyond that the shard is simply "slow".
        excess = observed / self.target_latency_seconds - 1.0
        return min(1.0, excess / 2.0)

    def score(
        self,
        queue_fraction: float = 0.0,
        breaker_open_fraction: float = 0.0,
    ) -> float:
        """Health in ``[0, 1]``: 1.0 = healthy, 0.0 = unusable.

        ``queue_fraction`` is queued depth over the queue bound;
        ``breaker_open_fraction`` is the fraction of this engine's
        breaker keys currently open.
        """
        penalty = (
            self.error_weight * self.error_rate()
            + self.latency_weight * self._latency_penalty()
            + self.queue_weight * max(0.0, min(1.0, queue_fraction))
            + self.breaker_weight * max(0.0, min(1.0, breaker_open_fraction))
        )
        return max(0.0, min(1.0, 1.0 - penalty))

    def snapshot(self, **score_kwargs: float) -> Dict[str, float]:
        out = self.digest.snapshot()
        out["error_rate"] = self.error_rate()
        out["score"] = self.score(**score_kwargs)
        return out


class AIMDLimiter:
    """Adaptive concurrency limit: AIMD on observed latency vs. a target.

    Observations accumulate into **count-based** windows of
    ``window`` samples; when a window closes, the limit moves once:

    * window mean latency <= ``target_latency_seconds``: additive
      increase (``limit + increase``, capped at ``max_limit``,
      ``serving.limit.increases``);
    * window mean latency  > target: multiplicative decrease
      (``floor(limit * decrease_factor)``, floored at ``min_limit``,
      ``serving.limit.decreases``), rate-limited by
      ``cooldown_seconds`` on the injectable ``clock`` so a burst of
      slow windows cannot collapse the limit in one swoop.

    Count-based windows make the limit trace a pure function of the
    latency trace (plus the clock for cooldowns) -- the hypothesis suite
    in ``tests/test_limiter_properties.py`` asserts the clamp, the
    monotone decrease under sustained overload, the recovery to
    ``max_limit`` under sustained health, and same-trace determinism.

    Wire into an engine with ``PredictionEngine(limiter=...)``: the
    bounded queue then reads :meth:`current_limit` as its live bound on
    every admission instead of the static ``max_queue_depth``.
    """

    def __init__(
        self,
        target_latency_seconds: float,
        min_limit: int = 4,
        max_limit: int = 1024,
        initial_limit: Optional[int] = None,
        increase: int = 1,
        decrease_factor: float = 0.5,
        window: int = 16,
        cooldown_seconds: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if target_latency_seconds <= 0:
            raise ValueError(
                f"target_latency_seconds must be > 0, got {target_latency_seconds}"
            )
        if min_limit < 1:
            raise ValueError(f"min_limit must be >= 1, got {min_limit}")
        if max_limit < min_limit:
            raise ValueError(
                f"max_limit must be >= min_limit, got {max_limit} < {min_limit}"
            )
        if initial_limit is None:
            initial_limit = max_limit
        if not min_limit <= initial_limit <= max_limit:
            raise ValueError(
                f"initial_limit must be in [{min_limit}, {max_limit}], "
                f"got {initial_limit}"
            )
        if increase < 1:
            raise ValueError(f"increase must be >= 1, got {increase}")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {decrease_factor}"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self.target_latency_seconds = float(target_latency_seconds)
        self.min_limit = int(min_limit)
        self.max_limit = int(max_limit)
        self.increase = int(increase)
        self.decrease_factor = float(decrease_factor)
        self.window = int(window)
        self.cooldown_seconds = float(cooldown_seconds)
        self.clock = clock
        self._lock = named_lock("serving.health.limiter")
        self._limit = int(initial_limit)
        self._sum = 0.0
        self._count = 0
        self._last_decrease: Optional[float] = None
        self._increases = 0
        self._decreases = 0

    def current_limit(self) -> int:
        with self._lock:
            return self._limit

    def observe(self, latency_seconds: float) -> None:
        """Fold one request latency in; may close a window and move the limit."""
        moved: Optional[str] = None
        with self._lock:
            self._sum += float(latency_seconds)
            self._count += 1
            if self._count < self.window:
                return
            mean = self._sum / self._count
            self._sum = 0.0
            self._count = 0
            if mean <= self.target_latency_seconds:
                raised = min(self.max_limit, self._limit + self.increase)
                if raised != self._limit:
                    self._limit = raised
                    self._increases += 1
                    moved = "increase"
            else:
                now = self.clock()
                if (
                    self._last_decrease is not None
                    and self.cooldown_seconds > 0
                    and now - self._last_decrease < self.cooldown_seconds
                ):
                    return
                lowered = max(
                    self.min_limit, int(self._limit * self.decrease_factor)
                )
                if lowered != self._limit:
                    self._limit = lowered
                    self._decreases += 1
                    moved = "decrease"
                self._last_decrease = now
        # Metrics fire outside the lock (REP011 discipline) and only when
        # the limit actually moved -- an idle limiter is metrics-silent.
        if moved == "increase":
            metrics.increment("serving.limit.increases")
        elif moved == "decrease":
            metrics.increment("serving.limit.decreases")

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "limit": self._limit,
                "increases": self._increases,
                "decreases": self._decreases,
            }


class BrownoutController:
    """Sheds optional work first when the health score degrades.

    Two thresholds partition the score axis into three regimes:

    * ``score >= low_threshold``: healthy -- everything admitted;
    * ``normal_threshold <= score < low_threshold``: brownout --
      :data:`PRIORITY_LOW` (optional) work is shed;
    * ``score < normal_threshold``: deep brownout -- only
      :data:`PRIORITY_HIGH` work is admitted.

    :meth:`admit` is a pure function of ``(priority, score)`` except for
    the transition bookkeeping (``serving.brownout.entered`` /
    ``exited`` fire when the regime crosses the healthy boundary,
    ``serving.brownout.shed`` per rejected request) -- all of which only
    happens once a controller is explicitly wired into an engine.
    """

    def __init__(self, low_threshold: float = 0.7, normal_threshold: float = 0.4):
        if not 0.0 < normal_threshold < low_threshold <= 1.0:
            raise ValueError(
                "need 0 < normal_threshold < low_threshold <= 1, got "
                f"{normal_threshold} / {low_threshold}"
            )
        self.low_threshold = float(low_threshold)
        self.normal_threshold = float(normal_threshold)
        self._lock = named_lock("serving.health.brownout")
        self._active = False
        self._shed = 0
        self._entered = 0
        self._exited = 0

    def min_priority(self, score: float) -> int:
        """Lowest priority admitted at ``score``."""
        if score >= self.low_threshold:
            return PRIORITY_LOW
        if score >= self.normal_threshold:
            return PRIORITY_NORMAL
        return PRIORITY_HIGH

    @property
    def active(self) -> bool:
        with self._lock:
            return self._active

    def admit(self, priority: int, score: float) -> bool:
        """Admission decision for one request; updates transition state."""
        floor = self.min_priority(score)
        browned_out = floor > PRIORITY_LOW
        admitted = priority >= floor
        transition: Optional[str] = None
        with self._lock:
            if browned_out and not self._active:
                self._active = True
                self._entered += 1
                transition = "entered"
            elif not browned_out and self._active:
                self._active = False
                self._exited += 1
                transition = "exited"
            if not admitted:
                self._shed += 1
        if transition == "entered":
            metrics.increment("serving.brownout.entered")
        elif transition == "exited":
            metrics.increment("serving.brownout.exited")
        if not admitted:
            metrics.increment("serving.brownout.shed")
        return admitted

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "active": self._active,
                "shed": self._shed,
                "entered": self._entered,
                "exited": self._exited,
            }


@dataclass(frozen=True)
class HedgePolicy:
    """Frozen configuration of hedged requests on a :class:`ShardRouter`.

    ``budget_fraction`` is the hedge budget: a token bucket accrues that
    many tokens per submitted request (capped at ``burst``) and every
    hedge spends one, so hedges can never exceed
    ``budget_fraction * submitted + burst`` -- an overloaded tier sends
    *fewer* hedges, never more.  The hedge delay adapts to the router's
    observed latency: the ``delay_quantile`` of the shared digest,
    clamped to ``[min_delay_seconds, max_delay_seconds]``;
    ``initial_delay_seconds`` applies until ``min_samples`` latencies
    have been observed.
    """

    budget_fraction: float = 0.05
    burst: float = 4.0
    delay_quantile: float = 0.95
    initial_delay_seconds: float = 0.05
    min_delay_seconds: float = 0.001
    max_delay_seconds: float = 1.0
    min_samples: int = 16

    def __post_init__(self):
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError(
                f"budget_fraction must be in (0, 1], got {self.budget_fraction}"
            )
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if not 0.0 < self.delay_quantile < 1.0:
            raise ValueError(
                f"delay_quantile must be in (0, 1), got {self.delay_quantile}"
            )
        if self.initial_delay_seconds <= 0:
            raise ValueError(
                "initial_delay_seconds must be > 0, got "
                f"{self.initial_delay_seconds}"
            )
        if not 0.0 < self.min_delay_seconds <= self.max_delay_seconds:
            raise ValueError(
                "need 0 < min_delay_seconds <= max_delay_seconds, got "
                f"{self.min_delay_seconds} / {self.max_delay_seconds}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


class _HedgeCoordinator:
    """Router-side hedge state: shared digest, token budget, counters.

    One per :class:`ShardRouter` (when hedging is enabled); every
    :class:`HedgedFuture` the router hands out reports its outcome here,
    so budget accounting and the adaptive delay see the whole tier, not
    one request.  The token bucket is **count-based** (tokens accrue per
    submitted request, not per second): under zero traffic no budget
    accrues, and a traffic spike earns budget proportional to itself --
    the property that makes "hedging cannot amplify overload" hold at
    every timescale.
    """

    def __init__(self, policy: HedgePolicy):
        self.policy = policy
        self.digest = LatencyDigest()
        self._lock = named_lock("serving.health.hedge")
        self._tokens = float(policy.burst)
        self._attempts = 0
        self._wins = 0
        self._primary_wins = 0
        self._budget_denied = 0
        self._cancelled = 0

    def note_request(self) -> None:
        """Accrue budget for one submitted (primary) request."""
        with self._lock:
            self._tokens = min(
                float(self.policy.burst),
                self._tokens + self.policy.budget_fraction,
            )

    def try_acquire(self) -> bool:
        """Spend one hedge token; False (and counted) when broke."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                acquired = True
            else:
                self._budget_denied += 1
                acquired = False
        if not acquired:
            metrics.increment("serving.hedge.budget_denied")
        return acquired

    def refund(self) -> None:
        """Return an unspent token (no warm replica was available)."""
        with self._lock:
            self._tokens = min(float(self.policy.burst), self._tokens + 1.0)

    def record_attempt(self) -> None:
        """Count one backup actually dispatched to a replica."""
        with self._lock:
            self._attempts += 1
        metrics.increment("serving.hedge.attempts")

    def delay(self) -> float:
        """Current hedge delay in seconds (adaptive quantile, clamped)."""
        policy = self.policy
        if self.digest.count < policy.min_samples:
            return policy.initial_delay_seconds
        observed = self.digest.quantile(policy.delay_quantile)
        if observed is None:
            return policy.initial_delay_seconds
        return max(
            policy.min_delay_seconds, min(policy.max_delay_seconds, observed)
        )

    def observe(self, latency_seconds: float) -> None:
        self.digest.observe(latency_seconds)

    def record_winner(self, backup_won: bool, loser_cancelled: bool) -> None:
        with self._lock:
            if backup_won:
                self._wins += 1
            else:
                self._primary_wins += 1
            if loser_cancelled:
                self._cancelled += 1
        metrics.increment(
            "serving.hedge.wins" if backup_won else "serving.hedge.primary_wins"
        )
        if loser_cancelled:
            metrics.increment("serving.hedge.cancelled")

    def stats(self) -> Dict[str, object]:
        with self._lock:
            out: Dict[str, object] = {
                "attempts": self._attempts,
                "wins": self._wins,
                "primary_wins": self._primary_wins,
                "budget_denied": self._budget_denied,
                "cancelled": self._cancelled,
                "tokens": self._tokens,
            }
        out["delay_seconds"] = self.delay()  # digest lock; outside ours
        return out


class HedgedFuture:
    """A future that hedges to a warm replica while being awaited.

    Wraps the primary shard's future; hedging happens **at await time**
    (no timer threads, no background polling): :meth:`result` first
    waits the coordinator's adaptive hedge delay on the primary alone,
    and only if that window elapses -- and the token budget grants a
    hedge -- calls ``spawn()`` to dispatch the backup attempt, then
    races both.  The first future to complete *with a result* wins; the
    loser is cancelled (a still-queued loser is dropped by the engine's
    cancellation-aware dispatcher, a running one finishes harmlessly).
    An exception only propagates once no sibling can still answer, so a
    fast-failing primary falls back to a healthy backup instead of
    failing the request.

    A caller that never awaits never hedges -- fire-and-forget traffic
    costs no budget.  :meth:`result` and :meth:`exception` accept the
    standard ``timeout`` semantics; the hedge delay always fits inside
    the caller's remaining budget.
    """

    def __init__(
        self,
        primary: Future,
        coordinator: _HedgeCoordinator,
        spawn: Callable[[], Optional[Future]],
    ):
        self._primary = primary
        self._coordinator = coordinator
        self._spawn = spawn
        self._backup: Optional[Future] = None
        self._hedge_attempted = False
        self._started = time.perf_counter()
        self._lock = named_lock("serving.health.hedged_future")

    # -- Future-like surface -------------------------------------------
    def done(self) -> bool:
        with self._lock:
            backup = self._backup
        return self._primary.done() or (backup is not None and backup.done())

    def cancel(self) -> bool:
        with self._lock:
            backup = self._backup
        cancelled = self._primary.cancel()
        if backup is not None:
            cancelled = backup.cancel() or cancelled
        return cancelled

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        try:
            self.result(timeout=timeout)
        except (FuturesTimeoutError, CancelledError):
            raise
        except BaseException as exc:  # the raced outcome, whatever it is
            return exc
        return None

    # -- the await-time hedging protocol --------------------------------
    def _maybe_spawn(self) -> None:
        """Dispatch the backup once, budget and replica permitting."""
        with self._lock:
            if self._hedge_attempted:
                return
            self._hedge_attempted = True
        if not self._coordinator.try_acquire():
            return
        backup = self._spawn()
        if backup is None:  # no warm replica could take the hedge
            self._coordinator.refund()
            return
        self._coordinator.record_attempt()
        with self._lock:
            self._backup = backup

    def _settle(self, winner: Future, backup_won: bool) -> object:
        with self._lock:
            backup = self._backup
        if backup is not None:
            loser = self._primary if backup_won else backup
            self._coordinator.record_winner(backup_won, loser.cancel())
        self._coordinator.observe(time.perf_counter() - self._started)
        return winner.result(timeout=0)

    def result(self, timeout: Optional[float] = None) -> object:
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._lock:
            attempted = self._hedge_attempted
        if not attempted:
            delay = self._coordinator.delay()
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.perf_counter()))
            try:
                value = self._primary.result(timeout=delay)
            except FuturesTimeoutError:
                if deadline is not None and time.perf_counter() >= deadline:
                    raise
                self._maybe_spawn()
            except CancelledError:
                raise
            except BaseException:
                # A fast-failing primary is exactly when a warm replica
                # helps; hedge immediately instead of waiting the delay.
                self._maybe_spawn()
                with self._lock:
                    if self._backup is None:
                        raise
            else:
                self._coordinator.observe(time.perf_counter() - self._started)
                return value
        return self._race(deadline)

    def _race(self, deadline: Optional[float]) -> object:
        with self._lock:
            backup = self._backup
        pending = [self._primary] + ([backup] if backup is not None else [])
        while True:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.perf_counter())
            )
            done, not_done = futures_wait(
                pending, timeout=remaining, return_when="FIRST_COMPLETED"
            )
            if not done:
                raise FuturesTimeoutError()
            for finished in done:
                if finished.cancelled():
                    continue
                if finished.exception(timeout=0) is None:
                    return self._settle(finished, backup_won=finished is backup)
            if not_done:
                # Every finished sibling failed; keep waiting on the rest.
                pending = list(not_done)
                continue
            # All attempts failed: surface the primary's error (the
            # backup's failure is secondary -- it only existed to help).
            if not self._primary.cancelled():
                primary_error = self._primary.exception(timeout=0)
                if primary_error is not None:
                    raise primary_error
            raise CancelledError()
