"""Thread-safe, versioned registry of fitted performance models.

A production modeling service fits models out-of-band (the streaming
:class:`repro.bmf.SequentialBmf` loop) and serves predictions to many
concurrent callers.  The registry is the hand-off point: writers *publish*
immutable model snapshots under a name, readers resolve the *current*
version with one lock acquisition, and a bad deploy is undone with an
atomic *rollback*.

Versions are keyed on the model's identity -- the basis digest
(:meth:`repro.basis.OrthonormalBasis.cache_token`) plus the prior
configuration and hyper-parameter that produced the coefficients -- so two
services can tell at a glance whether they are serving the same model
family, and the :class:`~repro.serving.engine.PredictionEngine` can group
requests that share a design matrix.

Every published snapshot is deep-frozen (coefficients copied and marked
read-only), so a reader can never observe a torn or later-mutated state.

Self-healing (``docs/faults.md``): a publish is *validated* before the
active pointer moves -- a poisoned snapshot (non-finite coefficients) or
an injected ``registry.publish`` fault raises
:class:`PublishRejectedError` and the currently served version stays
exactly where it was.  Versions that misbehave *after* publish (the
engine's circuit breaker opening on them) are quarantined with
:meth:`ModelRegistry.mark_bad`, which in ``serve_last_good`` mode also
steps the active pointer back to the newest good version.
"""

from __future__ import annotations

import hashlib
import threading
from ..locks import named_lock
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..bmf.priors import GaussianCoefficientPrior
from ..faults import SimulatedCrash, failpoint
from ..regression.base import BasisRegressor, FittedModel
from ..runtime.cache import fingerprint_array
from ..runtime.metrics import metrics

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "PublishRejectedError",
    "model_key",
]

#: Fires just before a publish commits; an armed fault here simulates a
#: failed deploy (rejected, counted, active version untouched).
_FP_PUBLISH = failpoint("registry.publish")


class PublishRejectedError(RuntimeError):
    """A publish was rejected before the active version moved."""


def model_key(
    basis,
    prior: Optional[GaussianCoefficientPrior] = None,
    eta: Optional[float] = None,
) -> str:
    """Digest identifying a model family: basis + prior config + eta.

    Two models share a key exactly when they were produced from an equal
    basis (value identity, per the basis cache token) with the same prior
    name/mean/scale and hyper-parameter -- the ISSUE's "basis digest +
    prior config" versioning key.
    """
    parts: List[object] = [basis.cache_token()]
    if prior is not None:
        parts.append(prior.name)
        parts.append(fingerprint_array(prior.mean))
        # Missing-prior entries are inf; fingerprinting raw bytes handles
        # inf/0 sentinels exactly.
        parts.append(fingerprint_array(prior.scale))
    if eta is not None:
        parts.append(float(eta))
    payload = repr(parts).encode()
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass(frozen=True)
class ModelVersion:
    """One immutable published snapshot of a model.

    Attributes
    ----------
    name:
        Registry name the snapshot was published under.
    version:
        Monotonically increasing per-name version number (1-based).
    key:
        Model-family digest (see :func:`model_key`).
    model:
        Frozen :class:`~repro.regression.base.FittedModel` snapshot; its
        coefficient array is read-only.
    published_at:
        ``time.time()`` timestamp of the publish.
    """

    name: str
    version: int
    key: str
    model: FittedModel
    published_at: float


def _freeze_model(
    model,
) -> Tuple[FittedModel, str, Optional[GaussianCoefficientPrior], Optional[float]]:
    """Snapshot a fitted-model-like object into (frozen, key, prior, eta).

    The prior and eta are surfaced (not just folded into the key) so a
    store-backed registry can persist the full fitting context alongside
    the coefficients; they are ``None`` for plain :class:`FittedModel`
    publishes, which carry no selection metadata.
    """
    prior = None
    eta = None
    if isinstance(model, FittedModel):
        fitted = model
    elif isinstance(model, BasisRegressor):
        prior = getattr(model, "chosen_prior_", None)
        eta = getattr(model, "chosen_eta_", None)
        fitted = model.fitted_model()
    elif hasattr(model, "model"):  # SequentialBmf duck type
        inner = model.model
        prior = getattr(inner, "chosen_prior_", None)
        eta = getattr(inner, "chosen_eta_", None)
        fitted = inner.fitted_model()
    else:
        raise TypeError(
            "expected a FittedModel, a fitted BasisRegressor, or a "
            f"SequentialBmf, got {type(model).__name__}"
        )
    coefficients = np.array(fitted.coefficients, dtype=float, copy=True)
    coefficients.flags.writeable = False
    frozen = FittedModel(fitted.basis, coefficients)
    # FittedModel.__init__ re-wraps via np.asarray (no copy for float64),
    # so the read-only flag survives; re-assert to be safe.
    frozen.coefficients.flags.writeable = False
    return frozen, model_key(fitted.basis, prior, eta), prior, eta


class ModelRegistry:
    """Versioned model store with atomic publish / current / rollback.

    All state transitions happen under one lock and readers only ever
    receive immutable :class:`ModelVersion` records, so there are no torn
    reads: a concurrent reader sees either the pre-publish or post-publish
    state in full, never a mixture.

    Parameters
    ----------
    max_versions:
        History bound per name; the oldest *inactive* versions beyond this
        count are pruned on publish (the active version is never pruned).
    validate:
        Reject publishes whose snapshot has non-finite coefficients
        (:class:`PublishRejectedError`) instead of silently serving NaNs.
    serve_last_good:
        When :meth:`mark_bad` quarantines the *active* version, step the
        active pointer back to the newest good retained version so readers
        degrade to last-good instead of a known-bad model.
    store:
        Optional crash-safe store (:class:`repro.store.ModelStore` shaped:
        an ``append_model(...)`` method).  When set, every publish is
        persisted **write-ahead**: the record reaches disk before the
        in-memory active pointer moves, so a crash mid-publish can lose an
        unannounced record but never announce an unpersisted one.  A
        :class:`repro.store.RecoveryManager` rebuilds the registry from
        the store after a restart.  Quarantine state (:meth:`mark_bad`)
        is in-memory only and resets on recovery.
    durability:
        ``"required"`` (default): a store failure rejects the publish
        (:class:`PublishRejectedError`, active version untouched).
        ``"best-effort"``: the publish proceeds in memory and the miss is
        counted as ``serving.publish_persist_skipped``.
    """

    def __init__(
        self,
        max_versions: int = 8,
        validate: bool = True,
        serve_last_good: bool = True,
        store=None,
        durability: str = "required",
    ):
        if max_versions < 2:
            raise ValueError(
                f"max_versions must be >= 2 to allow rollback, got {max_versions}"
            )
        if durability not in ("required", "best-effort"):
            raise ValueError(
                f"durability must be 'required' or 'best-effort', got "
                f"{durability!r}"
            )
        self.max_versions = int(max_versions)
        self.validate = bool(validate)
        self.serve_last_good = bool(serve_last_good)
        self.store = store
        self.durability = durability
        self._lock = named_lock("serving.registry.state")
        # Held across version-allocate -> persist -> commit so concurrent
        # publishes reach the store in version order; readers never take it.
        self._publish_lock = named_lock("serving.registry.publish")
        self._history: Dict[str, List[ModelVersion]] = {}
        self._active: Dict[str, int] = {}  # index into the history list
        self._next_version: Dict[str, int] = {}
        self._bad: Dict[str, Set[int]] = {}  # quarantined version numbers

    def export_config(self) -> Dict[str, object]:
        """Constructor kwargs (minus ``store``) that reproduce this registry.

        A restart path (e.g. :meth:`~repro.serving.ShardRouter.restart_shard`
        or a post-crash :class:`~repro.store.RecoveryManager` rebuild)
        must run the replacement registry with the *same* configuration
        as the one it replaces, or the rebuild is not bitwise comparable
        (a different ``max_versions`` prunes a different history).  The
        shared ``store`` is intentionally excluded: the caller decides
        whether the replacement re-attaches.
        """
        return {
            "max_versions": self.max_versions,
            "validate": self.validate,
            "serve_last_good": self.serve_last_good,
            "durability": self.durability,
        }

    # ------------------------------------------------------------------
    def publish(self, name: str, model, key: Optional[str] = None) -> ModelVersion:
        """Atomically make ``model`` the current version under ``name``.

        ``model`` may be a :class:`~repro.regression.base.FittedModel`, a
        fitted :class:`~repro.bmf.BmfRegressor` (any
        :class:`~repro.regression.base.BasisRegressor`), or a
        :class:`~repro.bmf.SequentialBmf`; it is snapshotted (coefficients
        copied, read-only) before the registry pointer moves.  Versions
        published after a rollback do not resurrect the rolled-back entry:
        history stays append-only and the new version simply becomes
        current.

        Raises :class:`PublishRejectedError` -- with the active version
        untouched -- when the snapshot fails validation, the
        ``registry.publish`` failpoint injects a fault, or (with a store
        in ``"required"`` durability) the record cannot be persisted.  A
        :class:`~repro.faults.SimulatedCrash` raised by the store
        propagates untouched with the in-memory registry unchanged --
        the write-ahead ordering means the crash may leave a durable
        record the registry never announced, which recovery admits.

        **Version numbers are allocated exactly once and never reused.**
        A publish that fails *after* allocation (persist failure under
        ``"required"`` durability, or a crash mid-persist) leaves a
        permanent gap in the version sequence: the failed number is
        burned, the next publish takes a fresh one.  This is deliberate
        -- reusing the number could collide with a durable-but-
        unannounced record the crashed persist left behind, so gaps are
        the price of the guarantee that a version number on disk or in
        memory refers to exactly one snapshot, ever.  Recovery preserves
        the invariant by resuming allocation above the highest durable
        version it restores (``tests/test_store.py::TestVersionGaps``).
        """
        frozen, derived_key, prior, eta = _freeze_model(model)
        record_key = derived_key if key is None else str(key)
        try:
            _FP_PUBLISH.hit()
        except Exception as exc:
            metrics.increment("serving.rejected_publishes")
            raise PublishRejectedError(
                f"publish of {name!r} failed before commit: {exc}"
            ) from exc
        if self.validate and not np.all(np.isfinite(frozen.coefficients)):
            metrics.increment("serving.rejected_publishes")
            raise PublishRejectedError(
                f"publish of {name!r} rejected: snapshot has non-finite "
                "coefficients"
            )
        with self._publish_lock:
            with self._lock:
                version = self._next_version.get(name, 0) + 1
                self._next_version[name] = version
            published_at = time.time()
            if self.store is not None:
                self._persist(
                    name, version, record_key, published_at, frozen, prior,
                    eta, model,
                )
            record = ModelVersion(
                name=name,
                version=version,
                key=record_key,
                model=frozen,
                published_at=published_at,
            )
            with self._lock:
                history = self._history.setdefault(name, [])
                history.append(record)
                self._active[name] = len(history) - 1
                self._prune_locked(name, history)
        metrics.increment("serving.publishes")
        return record

    def _persist(
        self, name, version, key, published_at, frozen, prior, eta, source
    ) -> None:
        """Write-ahead persist of one publish; see the publish docstring."""
        state = None
        if hasattr(source, "export_state"):  # SequentialBmf duck type
            state = source.export_state()
        try:
            self.store.append_model(
                name,
                version,
                key,
                published_at,
                frozen,
                prior=prior,
                eta=eta,
                sequential_state=state,
            )
        except SimulatedCrash:
            raise
        except Exception as exc:
            if self.durability == "required":
                metrics.increment("serving.rejected_publishes")
                raise PublishRejectedError(
                    f"publish of {name!r} v{version} could not be made "
                    f"durable: {exc}"
                ) from exc
            metrics.increment("serving.publish_persist_skipped")

    def _prune_locked(self, name: str, history: List[ModelVersion]) -> None:
        """Drop the oldest entries, keeping the active one reachable."""
        while len(history) > self.max_versions and self._active[name] > 0:
            dropped = history.pop(0)
            self._active[name] -= 1
            self._bad.get(name, set()).discard(dropped.version)

    def restore(
        self,
        name: str,
        version: int,
        key: str,
        published_at: float,
        model,
    ) -> ModelVersion:
        """Re-admit a recovered version with its original identity.

        Used by :class:`repro.store.RecoveryManager` to rebuild the
        registry after a crash: unlike :meth:`publish`, the version
        number, key, and timestamp come from the durable record (so the
        rebuilt registry is bitwise comparable to the pre-crash one via
        :meth:`snapshot`) and nothing is written back to the store.
        Versions must be restored in increasing order per name; the
        restored version becomes active and history pruning applies
        exactly as at publish time.  Validation still rejects non-finite
        coefficients (:class:`PublishRejectedError`), so a corrupt-but-
        CRC-valid record can never be served.
        """
        frozen, _, _, _ = _freeze_model(model)
        if self.validate and not np.all(np.isfinite(frozen.coefficients)):
            metrics.increment("serving.rejected_publishes")
            raise PublishRejectedError(
                f"restore of {name!r} v{version} rejected: snapshot has "
                "non-finite coefficients"
            )
        version = int(version)
        with self._publish_lock:
            with self._lock:
                history = self._history.setdefault(name, [])
                if history and history[-1].version >= version:
                    raise ValueError(
                        f"restore of {name!r} v{version} out of order: "
                        f"newest retained is v{history[-1].version}"
                    )
                record = ModelVersion(
                    name=name,
                    version=version,
                    key=str(key),
                    model=frozen,
                    published_at=float(published_at),
                )
                history.append(record)
                self._active[name] = len(history) - 1
                self._next_version[name] = max(
                    self._next_version.get(name, 0), version
                )
                self._prune_locked(name, history)
        metrics.increment("serving.restored_versions")
        return record

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic, bitwise-comparable digest of the registry state.

        Per name: the active version number, the quarantined version set,
        and for every retained version its number, key, timestamp, basis
        cache token, and the coefficient buffer (dtype, shape, raw
        bytes).  Two registries serving identical models compare equal
        with ``==``; the crash-recovery suite uses this to prove a
        recovered registry is bit-for-bit the pre-crash one.
        """
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for name in sorted(self._history):
                history = self._history[name]
                out[name] = {
                    "active_version": history[self._active[name]].version,
                    "bad": tuple(sorted(self._bad.get(name, ()))),
                    "versions": tuple(
                        (
                            record.version,
                            record.key,
                            record.published_at,
                            record.model.basis.cache_token(),
                            str(record.model.coefficients.dtype),
                            record.model.coefficients.shape,
                            record.model.coefficients.tobytes(),
                        )
                        for record in history
                    ),
                }
            return out

    def current(self, name: str) -> ModelVersion:
        """The active version under ``name`` (raises ``KeyError`` if none)."""
        with self._lock:
            if name not in self._active:
                raise KeyError(f"no model published under {name!r}")
            return self._history[name][self._active[name]]

    def model(self, name: str) -> FittedModel:
        """Shorthand for ``current(name).model``."""
        return self.current(name).model

    def rollback(self, name: str) -> ModelVersion:
        """Atomically re-activate the version preceding the current one.

        Repeated rollbacks keep stepping back through retained history;
        raises :class:`RuntimeError` when no earlier version is retained.
        """
        with self._lock:
            if name not in self._active:
                raise KeyError(f"no model published under {name!r}")
            index = self._active[name]
            if index == 0:
                raise RuntimeError(
                    f"no earlier version of {name!r} retained to roll back to"
                )
            self._active[name] = index - 1
            record = self._history[name][index - 1]
        metrics.increment("serving.rollbacks")
        return record

    # ------------------------------------------------------------------
    # Degradation to last-good (docs/faults.md)
    # ------------------------------------------------------------------
    def mark_bad(self, name: str, version: int) -> Optional[ModelVersion]:
        """Quarantine a published version that misbehaves at serve time.

        In ``serve_last_good`` mode, quarantining the *active* version also
        steps the active pointer back to the newest good retained version
        (counted as ``serving.degraded_rollbacks``); with no good version
        retained the pointer stays put -- a possibly-bad model beats no
        model.  Returns the version now active, or ``None`` for an unknown
        name.  Idempotent per (name, version).
        """
        with self._lock:
            history = self._history.get(name)
            if not history:
                return None
            bad = self._bad.setdefault(name, set())
            newly_marked = version not in bad
            bad.add(int(version))
            stepped_back = False
            active_index = self._active[name]
            if self.serve_last_good and history[active_index].version in bad:
                for index in range(active_index - 1, -1, -1):
                    if history[index].version not in bad:
                        self._active[name] = index
                        stepped_back = True
                        break
            record = self._history[name][self._active[name]]
        if newly_marked:
            metrics.increment("serving.marked_bad")
        if stepped_back:
            metrics.increment("serving.degraded_rollbacks")
        return record

    def is_bad(self, name: str, version: int) -> bool:
        """Whether (name, version) has been quarantined."""
        with self._lock:
            return version in self._bad.get(name, set())

    def previous_good(
        self, name: str, before_version: Optional[int] = None
    ) -> Optional[ModelVersion]:
        """Newest retained good version strictly older than ``before_version``.

        ``before_version=None`` means "older than the active version".
        Returns ``None`` when nothing qualifies -- including for unknown
        names, so engine fallback paths need no separate existence check.
        """
        with self._lock:
            history = self._history.get(name)
            if not history:
                return None
            if before_version is None:
                before_version = history[self._active[name]].version
            bad = self._bad.get(name, ())
            for record in reversed(history):
                if record.version < before_version and record.version not in bad:
                    return record
        return None

    def last_good(self, name: str) -> Optional[ModelVersion]:
        """Newest retained version not quarantined (may be the active one)."""
        with self._lock:
            history = self._history.get(name)
            if not history:
                return None
            bad = self._bad.get(name, ())
            for record in reversed(history):
                if record.version not in bad:
                    return record
        return None

    # ------------------------------------------------------------------
    def versions(self, name: str) -> Tuple[ModelVersion, ...]:
        """Retained history for ``name``, oldest first."""
        with self._lock:
            return tuple(self._history.get(name, ()))

    def names(self) -> Tuple[str, ...]:
        """Names with at least one published version."""
        with self._lock:
            return tuple(sorted(self._history))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._active

    def __len__(self) -> int:
        with self._lock:
            return len(self._active)
