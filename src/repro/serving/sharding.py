"""Sharded, replicated serving tier over N prediction engines.

One :class:`~repro.serving.engine.PredictionEngine` + one
:class:`~repro.serving.registry.ModelRegistry` per process stops scaling
the moment the request volume (or the model count) outgrows a single
dispatcher.  :class:`ShardRouter` consistent-hashes model names over N
*shards* -- each shard owns a registry and an engine of its own -- and the
shared :class:`~repro.store.ModelStore` journal doubles as the
**replication log**:

* a publish is routed to the name's *primary* shard, whose store-backed
  registry persists it write-ahead (record file + journal line);
* every shard runs a :class:`JournalFollower` that tails
  :meth:`~repro.store.ModelStore.journal_entries` and re-admits the
  records it replicates into its own registry via
  :meth:`~repro.serving.registry.ModelRegistry.restore` -- exactly the
  :class:`~repro.store.RecoveryManager` rebuild path, applied one journal
  entry at a time instead of from a full scan;
* when a shard dies (:meth:`ShardRouter.kill_shard`), the ring simply
  skips it: a dead primary's names route to the next live shard in their
  preference order, whose follower already holds a warm replica -- no
  refit, no cold start.  A survivor that does *not* replicate a
  rebalanced name (replication factor smaller than the failure count)
  backfills it on first request straight from the store
  (``serving.shard.backfills``).

Determinism: the router spawns **no** background threads.  Followers are
poll-driven -- :meth:`ShardRouter.publish` catches the name's replica
shards up synchronously, and :meth:`ShardRouter.catch_up` sweeps every
live follower -- so a request stream that awaits its futures in order
produces ``serving.shard.*`` counters that are a pure function of the
inputs, the property the shard-kill chaos scenario asserts bitwise.

Metrics (all integer counters in :mod:`repro.runtime.metrics`):
``serving.shard.publishes`` / ``routed`` / ``failover_routes`` /
``failovers`` / ``rebalanced_keys`` / ``replica_applied`` /
``replica_skipped`` / ``replica_corrupt`` / ``backfills`` /
``rerouted``.  See the metrics table in ``docs/serving.md``.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from ..locks import named_lock
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..faults import Deadline
from ..regression.base import FittedModel
from ..runtime.metrics import metrics
from ..store.format import CorruptRecordError
from ..store.store import ModelStore
from .engine import EngineOverloadedError, EngineStoppedError, PredictionEngine
from .health import HedgedFuture, HedgePolicy, _HedgeCoordinator
from .registry import ModelRegistry, ModelVersion

__all__ = ["JournalFollower", "ShardRouter", "ShardDeadError"]


class ShardDeadError(RuntimeError):
    """No live shard is available to serve the routed name."""


def _ring_point(token: str) -> int:
    """Stable 64-bit ring coordinate for a shard vnode or a model name."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class JournalFollower:
    """Tails the shared store journal into one shard's replica registry.

    The journal is the replication log: every durable publish appends one
    checksummed line, and :meth:`poll` applies the lines beyond the
    follower's offset.  An entry is applied by reading its committed
    record file and re-admitting it with
    :meth:`~repro.serving.registry.ModelRegistry.restore` (original
    version number, key, and timestamp -- the same path crash recovery
    uses), so a replica registry is bitwise comparable to the primary's
    over the replicated names.

    ``should_replicate`` filters by name (the router passes the ring's
    preference predicate); entries the registry already holds -- for
    example on the primary shard, which published them directly -- are
    skipped idempotently (``serving.shard.replica_skipped``).  A record
    that fails its CRC is counted (``serving.shard.replica_corrupt``) and
    skipped; quarantining is left to the store's owner-side recovery.

    Offsets are *global* journal offsets (see
    :meth:`~repro.store.ModelStore.journal_view`), so they stay
    meaningful across store compaction: a generation's checkpoint
    records how many entries its snapshot stands in for, and a follower
    that wakes up behind a compaction boundary (its offset predates the
    live checkpoint) replays the snapshot plus the live tail
    idempotently -- versions it already holds are skipped, versions that
    were folded into the snapshot are applied exactly once.
    """

    def __init__(
        self,
        store: ModelStore,
        registry: ModelRegistry,
        should_replicate: Optional[Callable[[str], bool]] = None,
    ):
        self.store = store
        self.registry = registry
        self.should_replicate = should_replicate
        self._offset = 0
        self._generation: Optional[int] = None
        self._lock = named_lock("serving.shard.follower")

    @property
    def offset(self) -> int:
        """Global journal offset consumed so far (applied or skipped)."""
        with self._lock:
            return self._offset

    @property
    def generation(self) -> Optional[int]:
        """Store generation of the last consumed journal (``None`` before)."""
        with self._lock:
            return self._generation

    def lag(self) -> int:
        """Journal entries published but not yet consumed by this follower."""
        view = self.store.journal_view()
        with self._lock:
            return max(0, view.end_offset - self._offset)

    def poll(self) -> int:
        """Consume every new journal entry; returns how many were *applied*."""
        view = self.store.journal_view()
        with self._lock:
            if self._offset < view.checkpoint_offset:
                # Compaction folded entries this follower never consumed
                # into the snapshot; replay snapshot + live tail
                # idempotently (held versions are skipped by _apply).
                new = list(view.snapshot) + list(view.entries)
                metrics.increment("serving.shard.follower_boundary")
            else:
                new = list(view.entries[self._offset - view.checkpoint_offset :])
            self._offset = view.end_offset
            self._generation = view.generation
        applied = 0
        for entry in new:
            if self._apply(entry):
                applied += 1
        return applied

    def resync(self) -> int:
        """Full-scan bootstrap via :class:`~repro.store.RecoveryManager`.

        For a follower starting on a *fresh* registry against a journal
        with history it never saw (or whose tail was damaged): recovery
        re-admits every valid record in the store -- a full replica, a
        superset of the ring's replica set -- and the follower resumes
        incremental tailing from the current journal end (the *global*
        end offset, so a resync started after a compaction lands on the
        same offset scale as one started before it).  Returns the
        number of versions restored.  Raises :class:`RuntimeError` on a
        non-empty registry (use :meth:`poll` for incremental catch-up).
        """
        # Imported here, not at module top: recovery imports the registry
        # package, which imports this module -- a top-level import makes
        # ``import repro.store`` fail when it is the first repro package
        # loaded.
        from ..store.recovery import RecoveryManager

        if self.registry.names():
            raise RuntimeError(
                "resync() bootstraps a fresh follower registry; "
                "use poll() for incremental catch-up"
            )
        with self._lock:
            view = self.store.journal_view()
            self._offset = view.end_offset
            self._generation = view.generation
        report = RecoveryManager(self.store).recover(
            registry=self.registry, quarantine_corrupt=False
        )
        return len(report.restored)

    def _apply(self, entry) -> bool:
        if self.should_replicate is not None and not self.should_replicate(
            entry.name
        ):
            return False
        versions = self.registry.versions(entry.name)
        if versions and versions[-1].version >= entry.version:
            metrics.increment("serving.shard.replica_skipped")
            return False
        path = self.store.records_dir / entry.filename
        try:
            record = self.store.read(path)
        except CorruptRecordError:
            metrics.increment("serving.shard.replica_corrupt")
            return False
        model = FittedModel(record.basis(), record.coefficients)
        self.registry.restore(
            record.name, record.version, record.key, record.published_at, model
        )
        metrics.increment("serving.shard.replica_applied")
        return True


class _Shard:
    """One shard: its registry, engine, follower, and liveness flag."""

    def __init__(
        self,
        shard_id: int,
        registry: ModelRegistry,
        engine: PredictionEngine,
        follower: JournalFollower,
    ):
        self.shard_id = shard_id
        self.registry = registry
        self.engine = engine
        self.follower = follower
        self.alive = True


class ShardRouter:
    """Consistent-hash router over N engine shards with journal replication.

    Parameters
    ----------
    store:
        The shared :class:`~repro.store.ModelStore` (or a path-like store
        root, from which one is built).  Every shard's registry persists
        write-ahead into it and every follower tails its journal.
    num_shards:
        Number of shards (registry + engine pairs) to run.
    replication_factor:
        How many distinct shards hold each name: the primary plus
        ``replication_factor - 1`` successors on the hash ring.  Clamped
        to ``num_shards``.  With factor ``f``, any ``f - 1`` shard
        failures leave every name on a warm replica.
    virtual_nodes:
        Ring points per shard; more points smooth the key distribution.
    registry_kwargs / engine_kwargs:
        Forwarded to every shard's :class:`ModelRegistry` /
        :class:`PredictionEngine` (the registry always gets the shared
        ``store``, and each engine a ``fault_tag`` of ``"shard-<id>"``
        unless the kwargs override it).
    hedge:
        Optional :class:`~repro.serving.health.HedgePolicy` enabling
        hedged requests: a :meth:`submit` whose primary shard has not
        answered within the adaptive hedge delay dispatches one backup
        attempt to a warm replica (first result wins, loser cancelled),
        gated by the policy's token-bucket budget.  ``None`` (default)
        returns plain futures with unchanged behavior.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    Routing methods raise :class:`ShardDeadError` once every shard is
    dead, and :class:`KeyError` propagates for never-published names.
    """

    def __init__(
        self,
        store,
        num_shards: int = 2,
        replication_factor: int = 2,
        virtual_nodes: int = 32,
        registry_kwargs: Optional[Dict[str, object]] = None,
        engine_kwargs: Optional[Dict[str, object]] = None,
        hedge: Optional[HedgePolicy] = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.store = store if isinstance(store, ModelStore) else ModelStore(store)
        self.num_shards = int(num_shards)
        self.replication_factor = min(int(replication_factor), self.num_shards)
        self.virtual_nodes = int(virtual_nodes)
        self._lock = named_lock("serving.shard.router")
        self._names: Dict[str, None] = {}  # insertion-ordered set of names
        self._failovers = 0
        self._rebalanced_keys = 0
        self._restarts = 0

        ring: List[Tuple[int, int]] = []
        for shard_id in range(self.num_shards):
            for vnode in range(self.virtual_nodes):
                ring.append((_ring_point(f"shard:{shard_id}:{vnode}"), shard_id))
        ring.sort()
        self._ring_points = [point for point, _ in ring]
        self._ring_shards = [shard_id for _, shard_id in ring]

        self._registry_kwargs = dict(registry_kwargs or {})
        self._engine_kwargs = dict(engine_kwargs or {})
        self._hedge = _HedgeCoordinator(hedge) if hedge is not None else None
        self._shards: List[_Shard] = []
        for shard_id in range(self.num_shards):
            self._shards.append(self._build_shard(shard_id))

    def _build_shard(self, shard_id: int) -> "_Shard":
        """Fresh registry + engine + follower triple for one shard slot."""
        registry = ModelRegistry(store=self.store, **self._registry_kwargs)
        engine_kwargs = dict(self._engine_kwargs)
        # Per-shard failpoint tag: slow-shard chaos plans target exactly
        # one engine instance (FaultPlan.latency(..., tag="shard-1")).
        engine_kwargs.setdefault("fault_tag", f"shard-{shard_id}")
        engine = PredictionEngine(registry, **engine_kwargs)
        follower = JournalFollower(
            self.store,
            registry,
            should_replicate=self._make_replica_predicate(shard_id),
        )
        return _Shard(shard_id, registry, engine, follower)

    # ------------------------------------------------------------------
    # Ring placement
    # ------------------------------------------------------------------
    def preference(self, name: str) -> Tuple[int, ...]:
        """Every shard id in ring order starting at ``name``'s position.

        Index 0 is the name's home primary; the first
        ``replication_factor`` entries are its replica set.  The order is
        a pure function of the ring layout -- shard deaths never change
        it, they only change which entry routing settles on.
        """
        start = bisect.bisect_left(self._ring_points, _ring_point(f"key:{name}"))
        seen: Dict[int, None] = {}
        count = len(self._ring_shards)
        for step in range(count):
            shard_id = self._ring_shards[(start + step) % count]
            if shard_id not in seen:
                seen[shard_id] = None
                if len(seen) == self.num_shards:
                    break
        return tuple(seen)

    def replicas(self, name: str) -> Tuple[int, ...]:
        """The ``replication_factor`` ring shard ids holding ``name``.

        Static ring placement, ignoring liveness; the *effective* replica
        set (:meth:`_live_replicas`) skips dead shards, so replication
        follows the failover routing.
        """
        return self.preference(name)[: self.replication_factor]

    def primary(self, name: str) -> int:
        """The home shard id of ``name`` (alive or not)."""
        return self.preference(name)[0]

    def _live_replicas(self, name: str) -> Tuple[int, ...]:
        """First ``replication_factor`` *live* shards in preference order.

        This is the set that actually replicates ``name`` right now: as
        shards die, successors on the ring inherit replication duty, so
        a name rebalanced past its original replica set is picked up by
        its new route's follower instead of being orphaned.
        """
        live: List[int] = []
        for shard_id in self.preference(name):
            if self._shards[shard_id].alive:
                live.append(shard_id)
                if len(live) == self.replication_factor:
                    break
        return tuple(live)

    def _make_replica_predicate(self, shard_id: int) -> Callable[[str], bool]:
        def should_replicate(name: str) -> bool:
            return shard_id in self._live_replicas(name)

        return should_replicate

    def _route(self, name: str) -> _Shard:
        """First *live* shard in ``name``'s preference order."""
        preference = self.preference(name)
        for position, shard_id in enumerate(preference):
            shard = self._shards[shard_id]
            if shard.alive:
                if position > 0:
                    metrics.increment("serving.shard.failover_routes")
                return shard
        raise ShardDeadError(f"every shard holding {name!r} is dead")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardRouter":
        """Start every live shard's engine (idempotent)."""
        for shard in self._shards:
            if shard.alive:
                shard.engine.start()
        return self

    def stop(self) -> None:
        """Stop every live shard's engine (idempotent)."""
        for shard in self._shards:
            if shard.alive:
                shard.engine.stop()

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def kill_shard(self, shard_id: int) -> int:
        """Kill one shard mid-traffic; returns how many names rebalanced.

        The shard's engine is stopped (in-flight batches drain, queued
        requests fail fast) and the shard is marked dead, so the ring
        routes its names to the next live shard in their preference
        order.  Names whose *current route* was the dead shard are the
        rebalanced set (``serving.shard.rebalanced_keys``); their new
        homes already replicate them (warm failover) unless more shards
        have died than the replication factor covers, in which case the
        first request backfills from the store.  Idempotent per shard.
        """
        shard = self._shards[shard_id]
        with self._lock:
            if not shard.alive:
                return 0
            rebalanced = 0
            for name in self._names:
                route = None
                for candidate in self.preference(name):
                    if self._shards[candidate].alive:
                        route = candidate
                        break
                if route == shard_id:
                    rebalanced += 1
            shard.alive = False
            self._failovers += 1
            self._rebalanced_keys += rebalanced
        shard.engine.stop()
        metrics.increment("serving.shard.failovers")
        metrics.increment("serving.shard.rebalanced_keys", rebalanced)
        return rebalanced

    def restart_shard(
        self,
        shard_id: int,
        drive: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Restart one shard from the store: stop, rebuild, resync, rejoin.

        The zero-downtime primitive behind :meth:`rolling_restart`: the
        shard is taken out of routing (its names fail over to the next
        live shard, whose follower already holds a warm replica), its
        engine drains and stops, and a *fresh* registry + engine +
        follower triple is built with the router's original kwargs --
        simulating a process restart that owns nothing but the store
        directory.  The replacement bootstraps via
        :meth:`JournalFollower.resync` (full-store recovery, no refit)
        *before* it rejoins routing, so no request ever reaches a cold
        shard.  ``drive`` is called while the shard is down (after the
        engine stops, before the replacement is built) so tests can push
        live traffic through the degraded ring.  Returns the number of
        versions the replacement restored.  Counts
        ``serving.shard.restarts`` / ``serving.shard.restart_restored``.
        Restarting a dead shard revives it.
        """
        shard = self._shards[shard_id]
        with self._lock:
            was_alive = shard.alive
            shard.alive = False
        if was_alive:
            shard.engine.stop()
        metrics.increment("serving.shard.restarts")
        if drive is not None:
            drive(shard_id)
        replacement = self._build_shard(shard_id)
        restored = replacement.follower.resync()
        replacement.engine.start()
        # Deliberate lock-free swap: the replacement is fully built and
        # element assignment is atomic, so readers see either the old
        # (dead) shard or the new (live) one -- the same visibility
        # contract every lock-free ``_shards`` read in this class relies
        # on.
        self._shards[shard_id] = replacement
        with self._lock:
            self._restarts += 1
        metrics.increment("serving.shard.restart_restored", restored)
        return restored

    def rolling_restart(
        self, drive: Optional[Callable[[int], None]] = None
    ) -> Dict[int, int]:
        """Restart every live shard one at a time under live traffic.

        The zero-downtime drill: at any moment at most one shard is
        down, so with ``replication_factor >= 2`` every name stays on a
        warm replica and 100% of accepted requests are answered -- no
        refit-from-scratch ever lands on the serving path (warm
        :meth:`resync <JournalFollower.resync>` restores persisted
        records; sequential fitters re-arm from their stored Cholesky
        factors out of band).  ``drive`` is forwarded to each
        :meth:`restart_shard`.  Returns ``{shard_id: versions
        restored}`` in restart order.
        """
        restored: Dict[int, int] = {}
        for shard_id in self.alive_shards():
            restored[shard_id] = self.restart_shard(shard_id, drive=drive)
        return restored

    def alive_shards(self) -> Tuple[int, ...]:
        """Ids of the shards still alive, ascending."""
        return tuple(s.shard_id for s in self._shards if s.alive)

    # ------------------------------------------------------------------
    # Publishing and replication
    # ------------------------------------------------------------------
    def publish(self, name: str, model, key: Optional[str] = None) -> ModelVersion:
        """Publish on the name's primary shard and catch its replicas up.

        The primary's store-backed registry persists the record
        write-ahead (journal line included); the name's live replica
        shards then :meth:`~JournalFollower.poll` synchronously, so by
        the time this returns every warm replica already serves the new
        version -- publish-time replication instead of a background
        tailer keeps the tier deterministic.
        """
        shard = self._route(name)
        record = shard.registry.publish(name, model, key=key)
        with self._lock:
            self._names[name] = None
        metrics.increment("serving.shard.publishes")
        for shard_id in self._live_replicas(name):
            if shard_id != shard.shard_id:
                self._shards[shard_id].follower.poll()
        return record

    def catch_up(self) -> int:
        """Poll every live follower; returns total entries applied."""
        applied = 0
        for shard in self._shards:
            if shard.alive:
                applied += shard.follower.poll()
        return applied

    def follower_lag(self) -> Dict[int, int]:
        """Per-live-shard journal lag (entries published but unconsumed)."""
        return {s.shard_id: s.follower.lag() for s in self._shards if s.alive}

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, name: str, x: np.ndarray, **kwargs) -> Future:
        """Route a prediction request to ``name``'s first live shard.

        A route whose registry does not hold ``name`` yet (a failover
        past the replica set) is backfilled from the store first
        (``serving.shard.backfills``).  A submit that races a concurrent
        :meth:`kill_shard` is re-routed once (``serving.shard.rerouted``).
        Overload (:class:`~repro.serving.EngineOverloadedError`) and
        unknown names (:class:`KeyError`) propagate to the caller.

        With a :class:`~repro.serving.health.HedgePolicy` configured the
        returned object is a :class:`~repro.serving.health.HedgedFuture`:
        awaiting it past the adaptive hedge delay dispatches one backup
        attempt to a warm replica successor (budget permitting), the
        first result wins, and the loser is cancelled.  Without a policy
        the plain engine future is returned unchanged.
        """
        shard, future = self._submit_routed(name, x, **kwargs)
        hedge = self._hedge
        if hedge is None:
            return future
        hedge.note_request()
        primary_id = shard.shard_id
        return HedgedFuture(
            primary=future,
            coordinator=hedge,
            spawn=lambda: self._hedge_backup(name, x, primary_id, kwargs),
        )

    def _submit_routed(
        self, name: str, x: np.ndarray, **kwargs
    ) -> Tuple[_Shard, Future]:
        """Route + submit, returning the serving shard with the future."""
        shard = self._route(name)
        metrics.increment("serving.shard.routed")
        self._ensure_holds(shard, name)
        try:
            return shard, shard.engine.submit(name, x, **kwargs)
        except EngineStoppedError:
            # The shard died between routing and submission; route again
            # (the dead shard is now marked, so this terminates).
            metrics.increment("serving.shard.rerouted")
            shard = self._route(name)
            self._ensure_holds(shard, name)
            return shard, shard.engine.submit(name, x, **kwargs)

    def _hedge_backup(
        self, name: str, x: np.ndarray, primary_shard_id: int, kwargs: Dict
    ) -> Optional[Future]:
        """Dispatch the hedged backup to a warm replica of ``name``.

        Replica-selection rules: candidates are the name's *live*
        replica set in ring preference order, minus the shard the
        primary attempt went to -- those shards already hold the model
        via journal replication, so the hedge costs one queue slot and
        an evaluation, never a backfill-from-store on the hot path.  A
        candidate that is stopped, overloaded, or missing the name is
        skipped (hedging must never *add* load to a shard that cannot
        absorb it); ``None`` when no candidate can take the hedge.
        """
        for shard_id in self._live_replicas(name):
            if shard_id == primary_shard_id:
                continue
            shard = self._shards[shard_id]
            try:
                self._ensure_holds(shard, name)
                return shard.engine.submit(name, x, **kwargs)
            except (EngineStoppedError, EngineOverloadedError, KeyError):
                continue
        return None

    def _ensure_holds(self, shard: "_Shard", name: str) -> None:
        """Backfill ``name`` into ``shard``'s registry from the store log."""
        if name in shard.registry:
            return
        shard.follower.poll()
        if name not in shard.registry:
            raise KeyError(f"no model published under {name!r}")
        metrics.increment("serving.shard.backfills")

    def predict(
        self, name: str, x: np.ndarray, timeout: Optional[float] = 30.0
    ) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`.

        Single time budget semantics, matching
        :meth:`~repro.serving.PredictionEngine.predict`.  With
        ``timeout=None`` the wait is liveness-checked against the shard
        that holds the request (see
        :meth:`~repro.serving.PredictionEngine.await_result`), so a dead
        dispatcher fails fast with
        :class:`~repro.serving.EngineStoppedError` instead of stranding
        the caller; this un-timed path routes directly and does not
        hedge (hedging needs a bounded await to race attempts against).
        """
        if timeout is None:
            shard, future = self._submit_routed(name, x)
            return shard.engine.await_result(future, name=name)
        deadline = Deadline.after(timeout)
        future = self.submit(name, x, deadline=deadline)
        return future.result(timeout=deadline.remaining())

    # ------------------------------------------------------------------
    # Test hooks and introspection
    # ------------------------------------------------------------------
    def shard(self, shard_id: int) -> _Shard:
        """The shard object (registry/engine/follower); test hook."""
        return self._shards[shard_id]

    def engine_for(self, name: str) -> PredictionEngine:
        """The engine currently serving ``name`` (first live route)."""
        return self._route(name).engine

    def pause_dispatch(self, shard_id: int) -> None:
        """Pause one shard's dispatcher (deterministic overload staging)."""
        self._shards[shard_id].engine.pause_dispatch()

    def resume_dispatch(self, shard_id: int) -> None:
        """Resume one shard's dispatcher."""
        self._shards[shard_id].engine.resume_dispatch()

    def health(self) -> Dict[int, Dict[str, object]]:
        """Per-live-shard health view: score, liveness, readiness, queue.

        The operator-facing probe surface: a shard with a sagging score
        (slow, erroring, or queue-pressured) shows up here before it
        shows up in p99.  ``ready`` uses each engine's configured
        ``ready_threshold``; probing counts readiness transitions
        (``serving.health.degraded`` / ``recovered``).
        """
        out: Dict[int, Dict[str, object]] = {}
        for shard in self._shards:
            if not shard.alive:
                continue
            engine = shard.engine
            out[shard.shard_id] = {
                "score": engine.health_score(),
                "live": engine.live(),
                "ready": engine.ready(),
                "queue_depth": engine.stats()["queue_depth"],
                "health": engine.health.snapshot(),
            }
        return out

    def hedge_stats(self) -> Optional[Dict[str, object]]:
        """Hedge counters and live budget; ``None`` when hedging is off."""
        if self._hedge is None:
            return None
        return self._hedge.stats()

    def names(self) -> Tuple[str, ...]:
        """Every name published through this router, in publish order."""
        with self._lock:
            return tuple(self._names)

    def placement(self) -> Dict[str, Tuple[int, ...]]:
        """Replica set per published name (primary first)."""
        with self._lock:
            names = tuple(self._names)
        return {name: self.replicas(name) for name in names}

    def stats(self) -> Dict[str, object]:
        """Router-level counters plus one stats snapshot per live shard."""
        with self._lock:
            failovers = self._failovers
            rebalanced = self._rebalanced_keys
            restarts = self._restarts
            num_names = len(self._names)
        out: Dict[str, object] = {
            "num_shards": self.num_shards,
            "replication_factor": self.replication_factor,
            "alive_shards": self.alive_shards(),
            "failovers": failovers,
            "rebalanced_keys": rebalanced,
            "restarts": restarts,
            "names": num_names,
            "hedge": self.hedge_stats(),
            "shards": {
                shard.shard_id: shard.engine.stats()
                for shard in self._shards
                if shard.alive
            },
        }
        return out

    def max_version_lag(self) -> int:
        """Largest ``max_version_lag`` any live shard's engine has seen."""
        lags = [
            int(shard.engine.stats()["max_version_lag"])
            for shard in self._shards
            if shard.alive
        ]
        return max(lags) if lags else 0
