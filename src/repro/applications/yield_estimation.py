"""Parametric yield estimation from a fitted performance model.

One of the canonical downstream uses of a performance model (refs. [17],
[25] of the paper): once ``f(x)`` is approximated analytically, the
parametric yield ``P(spec_low <= f(x) <= spec_high)`` is estimated by cheap
Monte Carlo on the *model* instead of expensive transistor-level
simulation.  A direct-simulation estimator over a testbench is provided for
validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..circuits.base import Stage, Testbench
from ..regression.base import FittedModel

__all__ = ["YieldEstimate", "estimate_yield", "estimate_yield_direct"]


@dataclass(frozen=True)
class YieldEstimate:
    """A Monte Carlo yield estimate with its binomial standard error.

    Attributes
    ----------
    probability:
        Estimated pass probability in ``[0, 1]``.
    std_error:
        Binomial standard error ``sqrt(p (1 - p) / n)``.
    num_samples:
        Monte Carlo samples used.
    """

    probability: float
    std_error: float
    num_samples: int

    def sigma_level(self) -> float:
        """Yield expressed as a one-sided normal quantile (e.g. 3 = 3-sigma).

        Returns ``inf`` when no failures were observed.
        """
        if self.probability >= 1.0:
            return math.inf
        if self.probability <= 0.0:
            return -math.inf
        from scipy.stats import norm

        return float(norm.ppf(self.probability))


def _pass_fraction(
    values: np.ndarray,
    spec_low: Optional[float],
    spec_high: Optional[float],
) -> np.ndarray:
    if spec_low is None and spec_high is None:
        raise ValueError("provide at least one of spec_low / spec_high")
    passing = np.ones(values.shape[0], dtype=bool)
    if spec_low is not None:
        passing &= values >= spec_low
    if spec_high is not None:
        passing &= values <= spec_high
    return passing


def _estimate(passing: np.ndarray) -> YieldEstimate:
    count = passing.shape[0]
    probability = float(np.mean(passing))
    std_error = math.sqrt(max(probability * (1.0 - probability), 0.0) / count)
    return YieldEstimate(probability, std_error, count)


def estimate_yield(
    model: FittedModel,
    num_samples: int,
    rng: np.random.Generator,
    spec_low: Optional[float] = None,
    spec_high: Optional[float] = None,
) -> YieldEstimate:
    """Model-based Monte Carlo yield estimate.

    Parameters
    ----------
    model:
        A fitted performance model (from OMP, BMF, ...).
    num_samples:
        Monte Carlo samples to draw (cheap: model evaluations only).
    rng:
        Random generator.
    spec_low / spec_high:
        Specification bounds (at least one required).
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    samples = rng.standard_normal((num_samples, model.basis.num_vars))
    values = model.predict(samples)
    return _estimate(_pass_fraction(values, spec_low, spec_high))


def estimate_yield_direct(
    testbench: Testbench,
    stage: Stage,
    metric: str,
    num_samples: int,
    rng: np.random.Generator,
    spec_low: Optional[float] = None,
    spec_high: Optional[float] = None,
) -> YieldEstimate:
    """Direct-simulation yield estimate (the expensive reference)."""
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    samples = testbench.sample(stage, num_samples, rng)
    values = testbench.simulate(stage, samples, metric)
    return _estimate(_pass_fraction(values, spec_low, spec_high))
