"""Worst-case corner extraction from a fitted performance model.

Reference [18] of the paper: given a performance model, find the variation
point ``x*`` on the ``sigma``-ball that drives the performance to its worst
value, then hand that *application-specific corner* back to the designer
for targeted re-simulation.

For a linear model ``f(x) = a0 + a^T x`` the extremum on ``||x|| <= sigma``
is closed-form (``x* = +/- sigma a / ||a||``); for nonlinear models a
projected-gradient ascent with numeric gradients is used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.numerics import is_effectively_zero
from ..regression.base import FittedModel

__all__ = ["Corner", "worst_case_corner"]


@dataclass(frozen=True)
class Corner:
    """An extracted worst-case corner.

    Attributes
    ----------
    x:
        Variation-space location of the corner, shape ``(R,)``.
    value:
        Model-predicted performance at the corner.
    sigma:
        Norm of the corner (its distance in sigma units).
    """

    x: np.ndarray
    value: float
    sigma: float


def worst_case_corner(
    model: FittedModel,
    sigma: float = 3.0,
    direction: str = "max",
    max_iterations: int = 200,
    step: float = 0.25,
    tolerance: float = 1e-10,
) -> Corner:
    """Find the extreme-performance corner on the ``sigma``-ball.

    Parameters
    ----------
    model:
        A fitted performance model.
    sigma:
        Radius of the variation ball in sigma units.
    direction:
        ``"max"`` for the highest performance value, ``"min"`` for lowest.
    max_iterations / step / tolerance:
        Projected-gradient settings (ignored for linear models).
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if direction not in ("max", "min"):
        raise ValueError(f"direction must be 'max' or 'min', got {direction!r}")
    sign = 1.0 if direction == "max" else -1.0
    basis = model.basis

    if basis.is_linear():
        gradient = _linear_gradient(model)
        norm = np.linalg.norm(gradient)
        # A gradient at round-off level relative to the model's coefficient
        # scale is a flat model; normalizing it would amplify noise to the
        # full sigma-ball radius.
        coeff_scale = float(np.max(np.abs(model.coefficients), initial=0.0))
        if is_effectively_zero(norm, scale=coeff_scale) or not norm:
            x = np.zeros(basis.num_vars)
        else:
            x = sign * sigma * gradient / norm
        return Corner(x, float(model.predict(x)), float(np.linalg.norm(x)))

    # Nonlinear model: projected gradient ascent with numeric gradients.
    x = np.zeros(basis.num_vars)
    gradient = _numeric_gradient(model, x)
    if np.linalg.norm(gradient) > 0:
        x = sign * sigma * gradient / np.linalg.norm(gradient)
    for _ in range(max_iterations):
        gradient = sign * _numeric_gradient(model, x)
        candidate = x + step * gradient
        norm = np.linalg.norm(candidate)
        if norm > sigma:
            candidate = candidate * (sigma / norm)
        if np.linalg.norm(candidate - x) < tolerance:
            x = candidate
            break
        x = candidate
    return Corner(x, float(model.predict(x)), float(np.linalg.norm(x)))


def _linear_gradient(model: FittedModel) -> np.ndarray:
    """Gradient of a linear model: the coefficient of each variable."""
    gradient = np.zeros(model.basis.num_vars)
    for coefficient, index in zip(model.coefficients, model.basis.indices):
        if index:  # skip the constant term
            var, _deg = index[0]
            gradient[var] += coefficient
    return gradient


def _numeric_gradient(
    model: FittedModel, x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient (batched through the design matrix)."""
    num_vars = model.basis.num_vars
    points = np.repeat(x[np.newaxis, :], 2 * num_vars, axis=0)
    for i in range(num_vars):
        points[2 * i, i] += eps
        points[2 * i + 1, i] -= eps
    values = model.predict(points)
    return (values[0::2] - values[1::2]) / (2.0 * eps)
