"""Variance decomposition and sensitivity ranking.

For an orthonormal basis over independent standard-normal variables the
model variance decomposes exactly:

    Var[f(x)] = sum_{m : g_m != const} alpha_m^2

so each basis function's (and, summed, each variable's or device's) share
of the performance variability is just its squared coefficient.  This is
the standard way a fitted model is turned into designer feedback ("which
devices should I upsize?") and is also a useful diagnostic for the BMF
priors themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..process import ProcessSpace
from ..regression.base import FittedModel

__all__ = [
    "variance_decomposition",
    "variable_contributions",
    "device_contributions",
    "top_contributors",
]


def variance_decomposition(model: FittedModel) -> Tuple[float, np.ndarray]:
    """Total model variance and each basis function's absolute share.

    Returns
    -------
    (total, shares):
        ``total`` is ``Var[f]`` under the model; ``shares[m]`` is the
        contribution of basis function ``m`` (zero for the constant term).
    """
    shares = model.coefficients**2
    for m, index in enumerate(model.basis.indices):
        if not index:
            shares[m] = 0.0
    return float(shares.sum()), shares


def variable_contributions(model: FittedModel) -> np.ndarray:
    """Per-variable variance contribution, shape ``(R,)``.

    A basis function involving several variables contributes its share to
    each of them (interaction effects are attributed to all participants).
    """
    contributions = np.zeros(model.basis.num_vars)
    _total, shares = variance_decomposition(model)
    for m, index in enumerate(model.basis.indices):
        for var, _deg in index:
            contributions[var] += shares[m]
    return contributions


def device_contributions(
    model: FittedModel, space: ProcessSpace
) -> Dict[str, float]:
    """Variance contribution grouped by owning device.

    Variables without a device (inter-die, parasitic) are grouped under
    their kind name.
    """
    if space.size != model.basis.num_vars:
        raise ValueError(
            f"space has {space.size} variables but the model basis has "
            f"{model.basis.num_vars}"
        )
    per_variable = variable_contributions(model)
    grouped: Dict[str, float] = {}
    for i, variable in enumerate(space.variables):
        key = variable.device if variable.device is not None else variable.kind
        grouped[key] = grouped.get(key, 0.0) + float(per_variable[i])
    return grouped


def top_contributors(
    model: FittedModel,
    space: Optional[ProcessSpace] = None,
    count: int = 10,
) -> List[Tuple[str, float]]:
    """The ``count`` largest variance contributors, normalized to fractions.

    With a ``space``, contributions are grouped by device; otherwise they
    are reported per variable index.
    """
    if space is not None:
        grouped = device_contributions(model, space)
        items = list(grouped.items())
    else:
        per_variable = variable_contributions(model)
        items = [(f"x{i}", float(v)) for i, v in enumerate(per_variable)]
    total = sum(v for _, v in items)
    if total <= 0:
        return []
    items.sort(key=lambda pair: pair[1], reverse=True)
    return [(name, value / total) for name, value in items[:count]]
