"""Mean-shift importance sampling for rare-failure yield estimation.

SRAM-style circuits target 4-6 sigma failure rates; plain Monte Carlo on
the performance model would need billions of samples to see a failure.
Mean-shift (a.k.a. "norm-minimization") importance sampling -- the standard
memory-yield technique associated with the paper's co-authors -- fixes
that:

1. use the fitted performance model to locate the most-probable failure
   point ``x*`` (the worst-case corner on the failure boundary);
2. sample from ``N(x*, I)`` instead of ``N(0, I)``;
3. reweight each sample by the density ratio
   ``w(x) = exp(-x.T x* + x*.T x*/2)``.

The estimator stays unbiased for any shift and concentrates samples where
failures live, cutting the variance by orders of magnitude at high sigma.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..regression.base import FittedModel
from .corners import worst_case_corner

__all__ = ["ImportanceSamplingResult", "estimate_failure_probability"]


@dataclass(frozen=True)
class ImportanceSamplingResult:
    """An importance-sampled failure-probability estimate.

    Attributes
    ----------
    probability:
        Estimated failure probability ``P(fail)``.
    std_error:
        Standard error of the (reweighted) estimator.
    num_samples:
        Importance samples drawn.
    shift:
        The mean-shift vector used, shape ``(R,)``.
    """

    probability: float
    std_error: float
    num_samples: int
    shift: np.ndarray

    def sigma_level(self) -> float:
        """Failure probability expressed as an equivalent sigma level."""
        from scipy.stats import norm

        if self.probability <= 0.0:
            return math.inf
        if self.probability >= 1.0:
            return -math.inf
        return float(-norm.ppf(self.probability))


def _failure_shift(
    model: FittedModel,
    spec_low: Optional[float],
    spec_high: Optional[float],
    search_sigma: float,
) -> np.ndarray:
    """Most-probable failure point: minimum-norm x on the failing side.

    For a linear model the boundary ``f(x) = spec`` is a hyperplane and the
    minimum-norm point is closed-form; reuse the corner extractor's
    gradient and scale it to the boundary.
    """
    direction = None
    if spec_high is not None:
        corner = worst_case_corner(model, sigma=search_sigma, direction="max")
        if corner.value > spec_high and corner.sigma > 0:
            nominal = float(model.predict(np.zeros(model.basis.num_vars)))
            # Linear interpolation along the corner ray to the boundary.
            fraction = (spec_high - nominal) / (corner.value - nominal)
            direction = corner.x * np.clip(fraction, 0.05, 1.0)
    if direction is None and spec_low is not None:
        corner = worst_case_corner(model, sigma=search_sigma, direction="min")
        if corner.value < spec_low and corner.sigma > 0:
            nominal = float(model.predict(np.zeros(model.basis.num_vars)))
            fraction = (spec_low - nominal) / (corner.value - nominal)
            direction = corner.x * np.clip(fraction, 0.05, 1.0)
    if direction is None:
        # No failure region within the search ball: shift to the ball edge
        # in the worst direction anyway (keeps the estimator unbiased).
        which = "max" if spec_high is not None else "min"
        direction = worst_case_corner(model, sigma=search_sigma, direction=which).x
    return direction


def estimate_failure_probability(
    model: FittedModel,
    num_samples: int,
    rng: np.random.Generator,
    spec_low: Optional[float] = None,
    spec_high: Optional[float] = None,
    shift: Optional[np.ndarray] = None,
    search_sigma: float = 8.0,
) -> ImportanceSamplingResult:
    """Estimate ``P(f(x) violates spec)`` by mean-shift importance sampling.

    Parameters
    ----------
    model:
        Fitted performance model (evaluations are cheap, so ``num_samples``
        can be large).
    num_samples:
        Importance samples to draw.
    rng:
        Random generator.
    spec_low / spec_high:
        Failure is ``f < spec_low`` or ``f > spec_high`` (at least one
        bound required).
    shift:
        Explicit mean-shift vector; by default the most-probable failure
        point located from the model itself.
    search_sigma:
        Radius searched for the failure boundary when auto-shifting.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if spec_low is None and spec_high is None:
        raise ValueError("provide at least one of spec_low / spec_high")

    num_vars = model.basis.num_vars
    if shift is None:
        shift = _failure_shift(model, spec_low, spec_high, search_sigma)
    shift = np.asarray(shift, dtype=float)
    if shift.shape != (num_vars,):
        raise ValueError(f"shift must have shape ({num_vars},), got {shift.shape}")

    samples = rng.standard_normal((num_samples, num_vars)) + shift
    values = model.predict(samples)
    failing = np.zeros(num_samples, dtype=bool)
    if spec_low is not None:
        failing |= values < spec_low
    if spec_high is not None:
        failing |= values > spec_high

    # Likelihood ratio N(0,I)/N(shift,I), computed in log space.
    log_weight = -samples @ shift + 0.5 * float(shift @ shift)
    weights = np.where(failing, np.exp(log_weight), 0.0)
    probability = float(np.mean(weights))
    std_error = float(np.std(weights) / math.sqrt(num_samples))
    return ImportanceSamplingResult(probability, std_error, num_samples, shift)
