"""Downstream applications of fitted performance models."""

from .corners import Corner, worst_case_corner
from .importance import (
    ImportanceSamplingResult,
    estimate_failure_probability,
)
from .sensitivity import (
    device_contributions,
    top_contributors,
    variable_contributions,
    variance_decomposition,
)
from .yield_estimation import YieldEstimate, estimate_yield, estimate_yield_direct

__all__ = [
    "Corner",
    "ImportanceSamplingResult",
    "estimate_failure_probability",
    "YieldEstimate",
    "device_contributions",
    "estimate_yield",
    "estimate_yield_direct",
    "top_contributors",
    "variable_contributions",
    "variance_decomposition",
    "worst_case_corner",
]
