"""Ridge (L2-regularized) regression.

Not described in the paper explicitly, but it is the natural "prior-free"
midpoint between least squares and BMF: BMF with a *flat* magnitude profile
(all prior variances equal) degenerates to ridge.  Having it as a baseline
lets tests and ablations isolate how much of BMF's win comes from the
early-stage information rather than from regularization alone.
"""

from __future__ import annotations

import numpy as np

from ..linalg import solve_diag_plus_gram
from .base import BasisRegressor

__all__ = ["RidgeRegressor"]


class RidgeRegressor(BasisRegressor):
    """Minimize ``||G a - f||^2 + penalty * ||a||^2``.

    Uses the same Woodbury fast path as BMF, so it stays cheap in the
    ``M >> K`` regime.  The constant basis term (intercept) is effectively
    unpenalized: the target is centered before the shrinkage fit and its
    mean restored into the constant coefficient afterwards -- essential for
    circuit metrics whose nominal value dwarfs the variation (e.g. a 6 GHz
    frequency with 4% spread).
    """

    def __init__(self, basis, penalty: float = 1.0):
        if penalty <= 0:
            raise ValueError(f"penalty must be positive, got {penalty}")
        super().__init__(basis)
        self.penalty = float(penalty)

    def _fit_design(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        target = np.asarray(target, dtype=float)
        constant = constant_column(self.basis)
        offset = float(target.mean()) if constant is not None else 0.0
        num_terms = design.shape[1]
        diag = np.full(num_terms, self.penalty)
        rhs = design.T @ (target - offset)
        coefficients = solve_diag_plus_gram(diag, design, rhs, scale=1.0)
        if constant is not None:
            coefficients[constant] += offset
        return coefficients


def constant_column(basis) -> "int | None":
    """Position of the constant basis function, or None if absent."""
    for m, index in enumerate(basis.indices):
        if not index:
            return m
    return None
