"""Traditional least-squares fitting (Section II-B, eq. 6).

Solves the overdetermined system ``G alpha = f`` in the least-squares sense.
This is the baseline whose sample requirement (``K > M``) motivates both
sparse regression and BMF: for a post-layout model with tens of thousands of
coefficients it would need tens of thousands of multi-hour simulations.
"""

from __future__ import annotations

import numpy as np

from ..linalg import solve_least_squares
from .base import BasisRegressor

__all__ = ["LeastSquaresRegressor"]


class LeastSquaresRegressor(BasisRegressor):
    """Ordinary least squares on the full basis.

    Parameters
    ----------
    basis:
        The orthonormal basis defining the model form.
    require_overdetermined:
        If True (default), refuse to fit with fewer samples than
        coefficients, since the minimum-norm solution of an underdetermined
        system is generally meaningless for prediction.  Set to False to get
        the minimum-norm solution anyway (useful for demonstrating the
        failure mode in examples).
    """

    def __init__(self, basis, require_overdetermined: bool = True):
        super().__init__(basis)
        self.require_overdetermined = require_overdetermined

    def _fit_design(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        num_samples, num_terms = design.shape
        if self.require_overdetermined and num_samples < num_terms:
            raise ValueError(
                f"least squares needs at least {num_terms} samples for "
                f"{num_terms} coefficients but got {num_samples}; use sparse "
                "regression or BMF in the underdetermined regime"
            )
        return solve_least_squares(design, target)
