"""Elastic-net regularized regression (the second sparse baseline, ref. [15]).

Coordinate-descent solver for

    min_a  1/(2K) * ||f - G a||^2
           + penalty * (l1_ratio * ||a||_1 + (1 - l1_ratio)/2 * ||a||^2)

with the penalty strength selected by cross-validation over a geometric
grid, as in McConaghy's high-dimensional statistical modeling flow that the
paper's introduction cites as state of the art alongside OMP.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..linalg.numerics import is_effectively_zero
from .base import BasisRegressor

__all__ = ["ElasticNetRegressor", "coordinate_descent"]


def coordinate_descent(
    design: np.ndarray,
    target: np.ndarray,
    penalty: float,
    l1_ratio: float = 0.5,
    max_sweeps: int = 500,
    tol: float = 1e-6,
    warm_start: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Solve one elastic-net problem by cyclic coordinate descent.

    Parameters
    ----------
    design:
        Design matrix ``G`` of shape ``(K, M)``.
    target:
        Target vector ``f`` of shape ``(K,)``.
    penalty:
        Overall regularization strength (``lambda``), must be positive.
    l1_ratio:
        Mix between L1 (1.0) and L2 (0.0) penalties.
    max_sweeps:
        Maximum number of full passes over the coordinates.
    tol:
        Convergence threshold on the largest coefficient update in a sweep,
        relative to the largest coefficient magnitude.
    warm_start:
        Optional initial coefficients (used by the CV path for speed).
    """
    if penalty <= 0:
        raise ValueError(f"penalty must be positive, got {penalty}")
    if not 0.0 <= l1_ratio <= 1.0:
        raise ValueError(f"l1_ratio must be in [0, 1], got {l1_ratio}")
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    num_samples, num_terms = design.shape

    col_scale = np.einsum("km,km->m", design, design) / num_samples
    # A column whose energy is round-off-level relative to the strongest
    # column is degenerate (constant-zero up to noise) and must be skipped,
    # not divided by.
    scale_floor = float(np.max(col_scale, initial=0.0))
    l1_term = penalty * l1_ratio
    l2_term = penalty * (1.0 - l1_ratio)

    coeffs = (
        np.zeros(num_terms) if warm_start is None else np.array(warm_start, dtype=float)
    )
    residual = target - design @ coeffs

    for _sweep in range(max_sweeps):
        max_update = 0.0
        max_coeff = max(float(np.max(np.abs(coeffs))), 1e-12)
        for j in range(num_terms):
            if is_effectively_zero(col_scale[j], scale=scale_floor):
                continue
            old = coeffs[j]
            raw = (design[:, j] @ residual) / num_samples + col_scale[j] * old
            shrunk = _soft_threshold(raw, l1_term) / (col_scale[j] + l2_term)
            if shrunk != old:
                coeffs[j] = shrunk
                residual += design[:, j] * (old - shrunk)
                max_update = max(max_update, abs(shrunk - old))
        if max_update <= tol * max_coeff:
            break
    return coeffs


def _soft_threshold(value: float, threshold: float) -> float:
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class ElasticNetRegressor(BasisRegressor):
    """Elastic net with cross-validated penalty strength.

    Parameters
    ----------
    basis:
        Orthonormal basis defining the candidate functions.
    penalties:
        Explicit penalty grid; if None, a geometric grid of ``num_penalties``
        values spanning ``[penalty_floor * lambda_max, lambda_max]`` is used,
        where ``lambda_max`` is the smallest penalty that zeroes out every
        coefficient.
    l1_ratio:
        L1/L2 mix (1.0 = lasso, 0.0 = ridge).
    n_folds:
        Cross-validation folds for penalty selection.
    """

    def __init__(
        self,
        basis,
        penalties: Optional[Sequence[float]] = None,
        l1_ratio: float = 0.9,
        n_folds: int = 5,
        num_penalties: int = 12,
        penalty_floor: float = 1e-4,
        max_sweeps: int = 500,
        tol: float = 1e-6,
    ):
        super().__init__(basis)
        self.penalties = None if penalties is None else [float(p) for p in penalties]
        self.l1_ratio = float(l1_ratio)
        self.n_folds = int(n_folds)
        self.num_penalties = int(num_penalties)
        self.penalty_floor = float(penalty_floor)
        self.max_sweeps = int(max_sweeps)
        self.tol = float(tol)
        self.chosen_penalty_: Optional[float] = None

    def _penalty_grid(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        if self.penalties is not None:
            return np.sort(np.asarray(self.penalties, dtype=float))[::-1]
        num_samples = design.shape[0]
        l1 = max(self.l1_ratio, 1e-3)
        lambda_max = float(np.max(np.abs(design.T @ target))) / (num_samples * l1)
        lambda_max = max(lambda_max, 1e-12)
        return np.geomspace(lambda_max, lambda_max * self.penalty_floor, self.num_penalties)

    def _fit_design(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        from .ridge import constant_column

        design = np.asarray(design, dtype=float)
        target = np.asarray(target, dtype=float)
        # Unpenalized intercept: shrink deviations from the mean, not the
        # (often enormous) nominal value itself.
        constant = constant_column(self.basis)
        offset = float(target.mean()) if constant is not None else 0.0
        centered = target - offset
        grid = self._penalty_grid(design, centered)
        if len(grid) == 1 or design.shape[0] < 2 * self.n_folds:
            self.chosen_penalty_ = float(grid[-1])
        else:
            self.chosen_penalty_ = self._cross_validate(design, centered, grid)
        coefficients = coordinate_descent(
            design,
            centered,
            self.chosen_penalty_,
            self.l1_ratio,
            self.max_sweeps,
            self.tol,
        )
        if constant is not None:
            coefficients[constant] += offset
        return coefficients

    def _cross_validate(
        self, design: np.ndarray, target: np.ndarray, grid: np.ndarray
    ) -> float:
        num_samples = design.shape[0]
        fold_ids = np.arange(num_samples) % self.n_folds
        errors = np.zeros(len(grid))
        for fold in range(self.n_folds):
            val_mask = fold_ids == fold
            train_design = design[~val_mask]
            train_target = target[~val_mask]
            val_design = design[val_mask]
            val_target = target[val_mask]
            val_scale = max(float(np.linalg.norm(val_target)), 1e-12)
            warm = None
            for i, penalty in enumerate(grid):
                warm = coordinate_descent(
                    train_design,
                    train_target,
                    penalty,
                    self.l1_ratio,
                    self.max_sweeps,
                    self.tol,
                    warm_start=warm,
                )
                prediction = val_design @ warm
                errors[i] += np.linalg.norm(prediction - val_target) / val_scale
        return float(grid[int(np.argmin(errors))])
