"""Sparse Bayesian learning (relevance vector regression), ref. [29].

The paper borrows its Gaussian-posterior machinery from Ji/Xue/Carin's
Bayesian compressive sensing, whose underlying model is Tipping's
relevance vector machine: each coefficient gets its *own* zero-mean prior
precision ``alpha_m``, and evidence maximization drives most precisions to
infinity, pruning the corresponding basis functions.  Where BMF fixes the
per-coefficient scales from early-stage data, SBL *learns* them from the
late-stage data alone -- making it the natural "what if we had no early
stage?" Bayesian baseline.

This implementation uses the classic EM-style update (MacKay's gamma
rule):

    gamma_m   = 1 - alpha_m * Sigma_mm
    alpha_m  <- gamma_m / mu_m^2
    sigma^2  <- ||y - G mu||^2 / (K - sum gamma)

with the posterior mean/variances computed through the same Woodbury
kernels as BMF, so each iteration costs ``O(K^2 M)`` even for M >> K.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..linalg import posterior_variance_diagonal, solve_diag_plus_gram
from .base import BasisRegressor

__all__ = ["SparseBayesianRegressor", "sparse_bayesian_fit"]


def sparse_bayesian_fit(
    design: np.ndarray,
    target: np.ndarray,
    max_iterations: int = 100,
    tolerance: float = 1e-4,
    prune_threshold: float = 1e9,
    initial_noise_fraction: float = 0.1,
) -> "tuple[np.ndarray, np.ndarray, float]":
    """Run SBL evidence maximization.

    Parameters
    ----------
    design / target:
        Training data ``(K, M)`` / ``(K,)``.  The target should be centered
        (or the basis include a constant column) as usual.
    max_iterations:
        EM iteration budget.
    tolerance:
        Convergence threshold on the max relative change of ``log alpha``.
    prune_threshold:
        Precisions above ``prune_threshold / var(target-ish scale)`` mark a
        coefficient as pruned (exactly zero in the output).
    initial_noise_fraction:
        Initial noise variance as a fraction of the target variance.

    Returns
    -------
    (coefficients, precisions, noise_variance)
    """
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    num_samples, num_terms = design.shape

    target_scale = max(float(np.var(target)), 1e-300)
    alpha = np.full(num_terms, 1.0 / target_scale)
    # The noise floor (relative to the target scale) keeps the posterior
    # solve well-posed on noiseless data, where the EM noise estimate
    # would otherwise collapse to zero and blow up the coefficients.
    noise_floor = 1e-12 * target_scale
    noise = max(initial_noise_fraction * target_scale, noise_floor)
    alpha_cap = prune_threshold / target_scale

    mean = np.zeros(num_terms)
    for _iteration in range(max_iterations):
        active = alpha < alpha_cap
        if not np.any(active):
            mean = np.zeros(num_terms)
            break
        design_a = design[:, active]
        alpha_a = alpha[active]

        # Posterior over the active coefficients.
        rhs = design_a.T @ target / noise
        mean_a = solve_diag_plus_gram(alpha_a, design_a, rhs, scale=1.0 / noise)
        variance_a = posterior_variance_diagonal(
            alpha_a, design_a, scale=1.0 / noise
        )

        gamma = 1.0 - alpha_a * variance_a
        gamma = np.clip(gamma, 1e-12, 1.0)
        # Floor keeps precisions strictly positive even when a noiseless
        # fit drives a coefficient estimate to extreme magnitudes.
        new_alpha_a = np.maximum(
            gamma / np.maximum(mean_a**2, 1e-300), 1e-10 / target_scale
        )

        residual = target - design_a @ mean_a
        denominator = max(num_samples - float(gamma.sum()), 1e-6)
        new_noise = float(residual @ residual) / denominator
        if not np.isfinite(new_noise):
            break  # degenerate update; keep the previous iterate
        new_noise = max(new_noise, noise_floor)

        change = np.max(
            np.abs(np.log(np.minimum(new_alpha_a, alpha_cap)) - np.log(alpha_a))
        )
        alpha = alpha.copy()
        alpha[active] = new_alpha_a
        noise = new_noise
        mean = np.zeros(num_terms)
        mean[active] = mean_a
        if change < tolerance:
            break

    pruned = alpha >= alpha_cap
    mean[pruned] = 0.0
    return mean, alpha, noise


class SparseBayesianRegressor(BasisRegressor):
    """Relevance-vector regression on the orthonormal basis.

    The intercept is handled by centering (as for ridge / elastic net);
    the returned constant coefficient absorbs the target mean.
    """

    def __init__(
        self,
        basis,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        prune_threshold: float = 1e9,
    ):
        super().__init__(basis)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.prune_threshold = float(prune_threshold)
        self.precisions_: Optional[np.ndarray] = None
        self.noise_variance_: Optional[float] = None

    def _fit_design(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        from .ridge import constant_column

        target = np.asarray(target, dtype=float)
        constant = constant_column(self.basis)
        offset = float(target.mean()) if constant is not None else 0.0
        coefficients, alpha, noise = sparse_bayesian_fit(
            design,
            target - offset,
            self.max_iterations,
            self.tolerance,
            self.prune_threshold,
        )
        self.precisions_ = alpha
        self.noise_variance_ = noise
        if constant is not None:
            coefficients = coefficients.copy()
            coefficients[constant] += offset
        return coefficients

    def num_relevant(self) -> int:
        """Number of basis functions surviving the evidence pruning."""
        if self.coefficients_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return int(np.count_nonzero(self.coefficients_))
