"""Cross-validated model-order selection for greedy/path algorithms.

OMP [13] and least-angle regression [12] both produce a *path*: a sequence
of nested models of growing size.  The model order (how many steps to keep)
is chosen by N-fold cross-validation, as the paper's baselines do.  This
module factors that selection loop out so every path algorithm shares it.

A path object must expose:

* ``selected`` -- basis-function indices in selection order;
* ``coefficients_per_step[s]`` -- the coefficient vector (length ``s + 1``)
  over ``selected[: s + 1]`` after step ``s``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = ["cross_validated_order"]

PathFunction = Callable[[np.ndarray, np.ndarray, int], object]


def cross_validated_order(
    path_function: PathFunction,
    design: np.ndarray,
    target: np.ndarray,
    budget: int,
    n_folds: int = 5,
) -> "tuple[int, Optional[np.ndarray]]":
    """Pick the path length minimizing mean N-fold validation error.

    Parameters
    ----------
    path_function:
        ``path_function(design, target, max_terms)`` running the algorithm
        on a training fold.
    design / target:
        The full training data.
    budget:
        Maximum number of path steps to consider.
    n_folds:
        Number of cross-validation folds.

    Returns
    -------
    (order, errors):
        The selected number of steps (>= 1) and the per-step mean
        validation errors (``None`` when CV could not run).
    """
    num_samples = design.shape[0]
    if num_samples < 2 * n_folds:
        return budget, None
    fold_ids = np.arange(num_samples) % n_folds
    errors = np.zeros(budget)
    counts = np.zeros(budget)
    for fold in range(n_folds):
        val_mask = fold_ids == fold
        train_design = design[~val_mask]
        train_target = target[~val_mask]
        val_design = design[val_mask]
        val_target = target[val_mask]
        fold_budget = min(budget, train_design.shape[0])
        path = path_function(train_design, train_target, fold_budget)
        norm = np.linalg.norm(val_target)
        scale = norm if norm > 0 else 1.0
        for step, coefficients in enumerate(path.coefficients_per_step):
            prediction = val_design[:, path.selected[: step + 1]] @ coefficients
            errors[step] += np.linalg.norm(prediction - val_target) / scale
            counts[step] += 1
    valid = counts > 0
    if not np.any(valid):
        return budget, None
    mean_errors = np.full(budget, np.inf)
    mean_errors[valid] = errors[valid] / counts[valid]
    return int(np.argmin(mean_errors)) + 1, mean_errors
