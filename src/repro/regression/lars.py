"""Least-angle regression (LAR), the paper's ref. [12] baseline.

Li's DAC'09 work ("Finding deterministic solution from underdetermined
equation: large-scale performance modeling by least angle regression")
applied LAR to exactly the problem this package studies, one generation
before the OMP formulation of [13].  The algorithm (Efron et al., 2004)
moves the coefficient vector along the *equiangular* direction of the
active set -- the direction making equal angles with every active column --
growing the active set each time an inactive column's correlation catches
up.  Compared to OMP's hard per-step least-squares refit, LAR's path is
continuous and less greedy.

Model order is selected by the shared N-fold cross-validation helper, as
for OMP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .base import BasisRegressor
from .path_selection import cross_validated_order

__all__ = ["LarsPath", "LeastAngleRegression", "lars_path"]


@dataclass
class LarsPath:
    """Result of one LAR sweep (same shape contract as ``OmpPath``).

    ``coefficients_per_step[s]`` holds the coefficients over
    ``selected[: s + 1]`` at the *end* of step ``s`` (just before the next
    variable joins the active set).
    """

    selected: List[int] = field(default_factory=list)
    coefficients_per_step: List[np.ndarray] = field(default_factory=list)

    def dense_coefficients(self, num_terms: int, step: Optional[int] = None) -> np.ndarray:
        """Expand the step-``step`` solution to a dense vector of length M."""
        if not self.coefficients_per_step:
            return np.zeros(num_terms)
        if step is None:
            step = len(self.coefficients_per_step) - 1
        out = np.zeros(num_terms)
        coefficients = self.coefficients_per_step[step]
        out[self.selected[: len(coefficients)]] = coefficients
        return out


def lars_path(design: np.ndarray, target: np.ndarray, max_terms: int) -> LarsPath:
    """Run least-angle regression for up to ``max_terms`` active variables.

    Columns are used as-is (the orthonormal polynomial columns already have
    comparable norms); the constant column participates like any other.

    Returns
    -------
    LarsPath
        Active set in join order and the per-step coefficient snapshots.
    """
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    num_samples, num_terms = design.shape
    max_terms = min(max_terms, num_samples, num_terms)

    # Normalize columns so "equal correlation" is meaningful even if some
    # empirical column norms drift from 1; fold the scaling back at the end.
    norms = np.linalg.norm(design, axis=0)
    usable = norms > 1e-12
    safe_norms = np.where(usable, norms, 1.0)
    columns = design / safe_norms

    path = LarsPath()
    active: List[int] = []
    signs: List[float] = []
    mu = np.zeros(num_samples)
    beta_normalized = np.zeros(0)
    excluded = ~usable

    for _step in range(max_terms):
        correlations = columns.T @ (target - mu)
        correlations[excluded] = 0.0
        if active:
            correlations[active] = 0.0
        if not active:
            best = int(np.argmax(np.abs(correlations)))
            if abs(correlations[best]) < 1e-14:
                break
            active.append(best)
            signs.append(float(np.sign(correlations[best])))

        # Equiangular direction of the signed active columns.
        signed = columns[:, active] * np.array(signs)
        gram = signed.T @ signed
        try:
            w = np.linalg.solve(gram, np.ones(len(active)))
        except np.linalg.LinAlgError:
            break
        total = float(np.sum(w))
        if total <= 0:
            break
        normalizer = 1.0 / np.sqrt(total)
        direction = signed @ (normalizer * w)

        current_c = float(np.abs(columns[:, active[0]] @ (target - mu)))
        a = columns.T @ direction

        # Step length: smallest positive gamma at which an inactive column
        # reaches the active correlation level.
        gamma = current_c / normalizer  # full step (reaches LS on active set)
        next_index = None
        c_all = columns.T @ (target - mu)
        for j in range(num_terms):
            if j in active or excluded[j]:
                continue
            for numerator, denominator in (
                (current_c - c_all[j], normalizer - a[j]),
                (current_c + c_all[j], normalizer + a[j]),
            ):
                if denominator > 1e-14:
                    candidate = numerator / denominator
                    if 1e-14 < candidate < gamma:
                        gamma = candidate
                        next_index = j

        mu = mu + gamma * direction

        # Accumulate coefficients in normalized-column units, snapshot in
        # original units.
        grown = np.zeros(len(active))
        grown[: beta_normalized.size] = beta_normalized
        beta_normalized = grown + np.array(signs) * (normalizer * w * gamma)
        path.selected = list(active)
        path.coefficients_per_step.append(
            beta_normalized / safe_norms[active]
        )

        if next_index is None:
            break  # reached the least-squares solution on the active set
        correlations_next = columns[:, next_index] @ (target - mu)
        active.append(next_index)
        signs.append(float(np.sign(correlations_next)) or 1.0)
    return path


class LeastAngleRegression(BasisRegressor):
    """LAR sparse regression with cross-validated model-order selection.

    Parameters mirror :class:`~repro.regression.OrthogonalMatchingPursuit`.
    """

    def __init__(
        self,
        basis,
        max_terms: Optional[int] = None,
        selection: str = "cv",
        n_folds: int = 5,
    ):
        if selection not in ("cv", "fixed"):
            raise ValueError(f"selection must be 'cv' or 'fixed', got {selection!r}")
        if selection == "fixed" and max_terms is None:
            raise ValueError("selection='fixed' requires an explicit max_terms")
        if n_folds < 2:
            raise ValueError(f"n_folds must be >= 2, got {n_folds}")
        super().__init__(basis)
        self.max_terms = max_terms
        self.selection = selection
        self.n_folds = n_folds
        self.selected_terms_: Optional[List[int]] = None
        self.cv_errors_: Optional[np.ndarray] = None

    def _fit_design(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        design = np.asarray(design, dtype=float)
        target = np.asarray(target, dtype=float)
        num_samples, num_terms = design.shape
        if self.max_terms is not None:
            budget = min(self.max_terms, num_samples, num_terms)
        else:
            budget = max(1, min(num_samples // 2, num_terms))

        if self.selection == "cv":
            order, errors = cross_validated_order(
                lars_path, design, target, budget, self.n_folds
            )
            self.cv_errors_ = errors
        else:
            order = budget
        path = lars_path(design, target, order)
        self.selected_terms_ = list(path.selected)
        return path.dense_coefficients(num_terms)
