"""Estimator protocol shared by all performance-model fitting algorithms.

Every fitting method in this package -- least squares (Section II-B), sparse
regression (Section II-C), and Bayesian model fusion (Section III) -- maps a
set of samples ``(x^(k), f^(k))`` to coefficients ``alpha`` of a fixed
orthonormal basis.  :class:`BasisRegressor` captures that contract with a
scikit-learn-like ``fit`` / ``predict`` interface, plus the eq. (59) error
metric used in every table of the paper.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..basis import OrthonormalBasis
from ..linalg.numerics import is_effectively_zero

__all__ = ["BasisRegressor", "FittedModel", "relative_error", "rms_error"]


def relative_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Relative modeling error of eq. (59): ``||f_hat - f||_2 / ||f||_2``."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs actual {actual.shape}"
        )
    denominator = np.linalg.norm(actual)
    # Degenerate-scale guard relative to the data's own magnitude: an exactly
    # zero vector (and nothing else) has norm below round-off at its peak.
    peak = float(np.max(np.abs(actual), initial=0.0))
    if is_effectively_zero(denominator, scale=peak) or not denominator:
        raise ValueError("actual values have zero norm; relative error undefined")
    return float(np.linalg.norm(predicted - actual) / denominator)


def rms_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root-mean-square prediction error (absolute units)."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs actual {actual.shape}"
        )
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


class FittedModel:
    """A fitted performance model: a basis plus its coefficient vector.

    This is the object downstream applications (yield estimation, corner
    extraction, optimization) consume; it is deliberately decoupled from the
    algorithm that produced it.
    """

    def __init__(self, basis: OrthonormalBasis, coefficients: np.ndarray):
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (basis.size,):
            raise ValueError(
                f"expected {basis.size} coefficients, got {coefficients.shape}"
            )
        self.basis = basis
        self.coefficients = coefficients

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the model at sample(s) ``x`` (eq. 2)."""
        return self.basis.evaluate(self.coefficients, x)

    def error_on(self, x: np.ndarray, f: np.ndarray) -> float:
        """Relative modeling error (eq. 59) of this model on a data set."""
        return relative_error(self.predict(x), np.asarray(f, dtype=float))

    def sparsity(self, threshold: float = 0.0) -> int:
        """Number of coefficients with magnitude strictly above ``threshold``."""
        return int(np.sum(np.abs(self.coefficients) > threshold))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FittedModel(num_vars={self.basis.num_vars}, "
            f"terms={self.basis.size}, nonzero={self.sparsity()})"
        )


class BasisRegressor(abc.ABC):
    """Base class for algorithms that fit coefficients of a fixed basis.

    Subclasses implement :meth:`fit_design`, which operates directly on a
    pre-assembled design matrix; :meth:`fit` handles building the design
    matrix from raw samples.  Benchmarks that sweep sample counts reuse one
    design matrix across methods by calling :meth:`fit_design` directly.
    """

    def __init__(self, basis: OrthonormalBasis):
        self.basis = basis
        self.coefficients_: Optional[np.ndarray] = None

    @abc.abstractmethod
    def _fit_design(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Solve for coefficients given design matrix ``G`` and targets ``f``.

        Returns the coefficient vector of shape ``(M,)``; implementations
        must not mutate ``design`` or ``target``.
        """

    def fit_design(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Fit from a pre-assembled design matrix; stores and returns coefficients.

        Benchmarks that sweep sample counts call this directly to reuse one
        design matrix across methods.
        """
        self.coefficients_ = self._fit_design(design, target)
        return self.coefficients_

    def fit(self, x: np.ndarray, f: np.ndarray) -> "BasisRegressor":
        """Fit the model from raw samples ``x`` of shape ``(K, R)``."""
        x = np.asarray(x, dtype=float)
        f = np.asarray(f, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D (K, R), got shape {x.shape}")
        if f.shape != (x.shape[0],):
            raise ValueError(
                f"f must have shape ({x.shape[0]},) to match x, got {f.shape}"
            )
        design = self.basis.design_matrix(x)
        self.coefficients_ = self.fit_design(design, f)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted model at new samples."""
        if self.coefficients_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.basis.evaluate(self.coefficients_, x)

    def fitted_model(self) -> FittedModel:
        """Package the fitted coefficients as a standalone :class:`FittedModel`."""
        if self.coefficients_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return FittedModel(self.basis, self.coefficients_)
