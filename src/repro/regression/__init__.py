"""Baseline fitting algorithms.

* least squares (Section II-B) and ridge;
* OMP (Section II-C, ref. [13]) and least-angle regression (ref. [12]);
* elastic net (ref. [15]) and sparse Bayesian learning (ref. [29]).
"""

from .base import BasisRegressor, FittedModel, relative_error, rms_error
from .elastic_net import ElasticNetRegressor, coordinate_descent
from .lars import LarsPath, LeastAngleRegression, lars_path
from .least_squares import LeastSquaresRegressor
from .omp import OmpPath, OrthogonalMatchingPursuit, omp_path
from .path_selection import cross_validated_order
from .ridge import RidgeRegressor
from .sparse_bayesian import SparseBayesianRegressor, sparse_bayesian_fit

__all__ = [
    "BasisRegressor",
    "ElasticNetRegressor",
    "FittedModel",
    "LarsPath",
    "LeastAngleRegression",
    "LeastSquaresRegressor",
    "OmpPath",
    "OrthogonalMatchingPursuit",
    "RidgeRegressor",
    "SparseBayesianRegressor",
    "coordinate_descent",
    "cross_validated_order",
    "lars_path",
    "omp_path",
    "relative_error",
    "rms_error",
    "sparse_bayesian_fit",
]
