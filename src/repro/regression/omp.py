"""Orthogonal matching pursuit (OMP) sparse regression (Section II-C, ref. [13]).

OMP is the paper's primary baseline.  It greedily selects, one per
iteration, the basis function most correlated with the current residual,
then re-solves least squares on the selected subset.  The iteration count
(model order) is chosen by N-fold cross-validation, mirroring how [13]
determines when "a sufficiently large number of basis functions are chosen".

The implementation keeps an incremental Cholesky factorization of the
selected columns' Gram matrix, so one full path over ``S`` steps costs
``O(S * K * M)`` for the correlation scans plus ``O(K * S^2 + S^3)`` for the
solves -- no per-step ``lstsq`` from scratch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .base import BasisRegressor
from .path_selection import cross_validated_order

__all__ = ["OmpPath", "OrthogonalMatchingPursuit", "omp_path"]


@dataclass
class OmpPath:
    """Result of one greedy OMP sweep.

    Attributes
    ----------
    selected:
        Basis-function indices in selection order.
    coefficients_per_step:
        ``coefficients_per_step[s]`` is the least-squares coefficient vector
        (length ``s + 1``) over ``selected[: s + 1]`` after step ``s``.
    residual_norms:
        Euclidean norm of the training residual after each step.
    """

    selected: List[int] = field(default_factory=list)
    coefficients_per_step: List[np.ndarray] = field(default_factory=list)
    residual_norms: List[float] = field(default_factory=list)

    def dense_coefficients(self, num_terms: int, step: Optional[int] = None) -> np.ndarray:
        """Expand the step-``step`` solution to a dense vector of length M."""
        if not self.coefficients_per_step:
            return np.zeros(num_terms)
        if step is None:
            step = len(self.coefficients_per_step) - 1
        out = np.zeros(num_terms)
        coeffs = self.coefficients_per_step[step]
        out[self.selected[: len(coeffs)]] = coeffs
        return out


class _IncrementalCholesky:
    """Grow-only Cholesky factor of the Gram matrix of selected columns."""

    def __init__(self, max_size: int):
        self._factor = np.zeros((max_size, max_size))
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def try_append(self, cross: np.ndarray, norm_sq: float) -> bool:
        """Append a column with Gram cross-terms ``cross`` and squared norm.

        Returns False (without modifying state) if the new column is
        numerically dependent on the already-selected ones.
        """
        s = self._size
        factor = self._factor
        if s == 0:
            if norm_sq <= 0:
                return False
            factor[0, 0] = math.sqrt(norm_sq)
            self._size = 1
            return True
        from scipy.linalg import solve_triangular

        w = solve_triangular(factor[:s, :s], cross, lower=True, check_finite=False)
        remainder = norm_sq - float(w @ w)
        if remainder <= 1e-12 * max(norm_sq, 1.0):
            return False
        factor[s, :s] = w
        factor[s, s] = math.sqrt(remainder)
        self._size = s + 1
        return True

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(L L^T) x = rhs`` for the current factor size."""
        from scipy.linalg import solve_triangular

        s = self._size
        factor = self._factor[:s, :s]
        tmp = solve_triangular(factor, rhs, lower=True, check_finite=False)
        return solve_triangular(factor.T, tmp, lower=False, check_finite=False)


def omp_path(
    design: np.ndarray,
    target: np.ndarray,
    max_terms: int,
    residual_tol: float = 0.0,
) -> OmpPath:
    """Run the greedy OMP selection for up to ``max_terms`` steps.

    Parameters
    ----------
    design:
        Design matrix ``G`` of shape ``(K, M)``.
    target:
        Target vector ``f`` of shape ``(K,)``.
    max_terms:
        Maximum number of basis functions to select (capped at ``min(K, M)``).
    residual_tol:
        Stop early once ``||r||_2 <= residual_tol * ||f||_2``.

    Returns
    -------
    OmpPath
        The selection order and per-step least-squares solutions.
    """
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    num_samples, num_terms = design.shape
    max_terms = min(max_terms, num_samples, num_terms)

    column_norms = np.linalg.norm(design, axis=0)
    usable = column_norms > 0
    safe_norms = np.where(usable, column_norms, 1.0)

    path = OmpPath()
    chol = _IncrementalCholesky(max_terms)
    residual = target.copy()
    target_norm = np.linalg.norm(target)
    selected_mask = np.zeros(num_terms, dtype=bool)
    cross_with_target: List[float] = []

    while chol.size < max_terms:
        correlations = np.abs(design.T @ residual) / safe_norms
        correlations[selected_mask | ~usable] = -np.inf
        best = int(np.argmax(correlations))
        if not np.isfinite(correlations[best]) or correlations[best] <= 0:
            break
        column = design[:, best]
        cross = design[:, path.selected].T @ column if path.selected else np.empty(0)
        if not chol.try_append(cross, float(column @ column)):
            # Numerically dependent column: exclude it and keep going.
            selected_mask[best] = True
            continue
        selected_mask[best] = True
        path.selected.append(best)
        cross_with_target.append(float(column @ target))
        coeffs = chol.solve(np.array(cross_with_target))
        path.coefficients_per_step.append(coeffs)
        residual = target - design[:, path.selected] @ coeffs
        res_norm = float(np.linalg.norm(residual))
        path.residual_norms.append(res_norm)
        if target_norm > 0 and res_norm <= residual_tol * target_norm:
            break
    return path


class OrthogonalMatchingPursuit(BasisRegressor):
    """OMP sparse regression with cross-validated model-order selection.

    Parameters
    ----------
    basis:
        Orthonormal basis defining the candidate functions.
    max_terms:
        Upper bound on the number of selected basis functions.  Defaults to
        ``K // 2`` at fit time (the CV then picks the best order <= bound).
    selection:
        ``"cv"`` chooses the model order by ``n_folds`` cross-validation;
        ``"fixed"`` always uses ``max_terms`` functions.
    n_folds:
        Number of cross-validation folds for order selection.
    residual_tol:
        Early-stop tolerance on the relative training residual.
    """

    def __init__(
        self,
        basis,
        max_terms: Optional[int] = None,
        selection: str = "cv",
        n_folds: int = 5,
        residual_tol: float = 1e-8,
    ):
        if selection not in ("cv", "fixed"):
            raise ValueError(f"selection must be 'cv' or 'fixed', got {selection!r}")
        if selection == "fixed" and max_terms is None:
            raise ValueError("selection='fixed' requires an explicit max_terms")
        if n_folds < 2:
            raise ValueError(f"n_folds must be >= 2, got {n_folds}")
        super().__init__(basis)
        self.max_terms = max_terms
        self.selection = selection
        self.n_folds = n_folds
        self.residual_tol = residual_tol
        self.selected_terms_: Optional[List[int]] = None
        self.cv_errors_: Optional[np.ndarray] = None

    def _resolve_max_terms(self, num_samples: int, num_terms: int) -> int:
        if self.max_terms is not None:
            return min(self.max_terms, num_samples, num_terms)
        return max(1, min(num_samples // 2, num_terms))

    def _fit_design(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        design = np.asarray(design, dtype=float)
        target = np.asarray(target, dtype=float)
        num_samples, num_terms = design.shape
        budget = self._resolve_max_terms(num_samples, num_terms)

        if self.selection == "cv":
            order, errors = cross_validated_order(
                lambda d, t, m: omp_path(d, t, m, self.residual_tol),
                design,
                target,
                budget,
                self.n_folds,
            )
            self.cv_errors_ = errors
        else:
            order = budget
        path = omp_path(design, target, order, self.residual_tol)
        self.selected_terms_ = list(path.selected)
        return path.dense_coefficients(num_terms)
