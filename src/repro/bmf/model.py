"""Top-level BMF estimator (Algorithm 1 of the paper).

:class:`BmfRegressor` glues together the pieces: prior construction from
early-stage coefficients (Section III-A), optional missing-prior handling
(Section IV-B), hyper-parameter / prior selection by cross-validation
(Section IV-D), and MAP estimation with the fast solver (Sections III-B,
IV-C).  The three method variants benchmarked in Section V map to:

* BMF-ZM:  ``BmfRegressor(basis, alpha_early, prior_kind="zero-mean")``
* BMF-NZM: ``BmfRegressor(basis, alpha_early, prior_kind="nonzero-mean")``
* BMF-PS:  ``BmfRegressor(basis, alpha_early, prior_kind="select")``
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..regression.base import BasisRegressor, FittedModel
from .cross_validation import (
    CrossValidationReport,
    default_eta_grid,
    select_prior_and_eta,
)
from .map_estimation import map_estimate
from .priors import (
    GaussianCoefficientPrior,
    nonzero_mean_prior,
    zero_mean_prior,
)

__all__ = ["BmfRegressor", "fuse"]

_PRIOR_KINDS = ("zero-mean", "nonzero-mean", "select")


class BmfRegressor(BasisRegressor):
    """Bayesian model fusion of early-stage and late-stage data.

    Parameters
    ----------
    basis:
        The late-stage orthonormal basis (eq. 11).
    alpha_early:
        Early-stage coefficients aligned with ``basis`` (eq. 10).  When the
        late stage uses a different basis, map the coefficients first with
        :func:`repro.bmf.prior_mapping.map_prior_coefficients` and/or extend
        them with missing entries via ``missing_indices``.
    prior_kind:
        ``"zero-mean"``, ``"nonzero-mean"``, or ``"select"`` (BMF-PS: pick
        the better of the two by cross-validation).
    missing_indices:
        Basis-function positions for which the early stage carries no
        information (Section IV-B); they receive an uninformative prior.
    eta:
        Fix the hyper-parameter instead of cross-validating it.  Only valid
        with a concrete ``prior_kind`` (not ``"select"``).
    eta_grid:
        Candidate hyper-parameter values; defaults to a data-scaled
        geometric grid (see :func:`repro.bmf.cross_validation.default_eta_grid`).
    selection:
        ``"cv"`` (the paper's N-fold cross-validation, default) or
        ``"evidence"`` (type-II maximum likelihood -- see
        :mod:`repro.bmf.evidence`).
    n_folds:
        Cross-validation folds (``N`` of Section IV-D).
    solver:
        ``"fast"`` (Woodbury/kernel) or ``"direct"`` (Cholesky) MAP solver.
    missing_scale:
        Finite stand-in prior scale for missing-knowledge coefficients.

    Attributes
    ----------
    chosen_prior_:
        The prior actually used for the final MAP solve.
    chosen_eta_:
        The hyper-parameter actually used.
    cv_report_:
        Full cross-validation error surfaces (None when ``eta`` was fixed).
    """

    def __init__(
        self,
        basis,
        alpha_early: Optional[np.ndarray] = None,
        prior_kind: str = "select",
        priors: Optional[Sequence[GaussianCoefficientPrior]] = None,
        missing_indices: Optional[Iterable[int]] = None,
        eta: Optional[float] = None,
        eta_grid: Optional[Sequence[float]] = None,
        selection: str = "cv",
        n_folds: int = 5,
        solver: str = "fast",
        missing_scale: Optional[float] = None,
    ):
        super().__init__(basis)
        if prior_kind not in _PRIOR_KINDS:
            raise ValueError(
                f"prior_kind must be one of {_PRIOR_KINDS}, got {prior_kind!r}"
            )
        if selection not in ("cv", "evidence"):
            raise ValueError(
                f"selection must be 'cv' or 'evidence', got {selection!r}"
            )
        if (alpha_early is None) == (priors is None):
            raise ValueError(
                "provide exactly one of alpha_early (to build the paper's "
                "priors) or an explicit priors sequence"
            )
        if eta is not None and prior_kind == "select":
            raise ValueError(
                "a fixed eta cannot be combined with prior_kind='select'; "
                "prior selection requires cross-validation"
            )
        if eta is not None and eta <= 0:
            raise ValueError(f"eta must be positive, got {eta}")
        self.prior_kind = prior_kind
        self.eta = eta
        self.eta_grid = None if eta_grid is None else list(eta_grid)
        self.selection = selection
        self.n_folds = n_folds
        self.solver = solver
        self.missing_scale = missing_scale
        self._candidate_priors = self._build_priors(
            alpha_early, priors, missing_indices
        )
        self.chosen_prior_: Optional[GaussianCoefficientPrior] = None
        self.chosen_eta_: Optional[float] = None
        self.cv_report_: Optional[CrossValidationReport] = None
        self.evidence_report_ = None

    def _build_priors(
        self,
        alpha_early: Optional[np.ndarray],
        priors: Optional[Sequence[GaussianCoefficientPrior]],
        missing_indices: Optional[Iterable[int]],
    ) -> List[GaussianCoefficientPrior]:
        if priors is not None:
            candidates = list(priors)
            if not candidates:
                raise ValueError("priors sequence must not be empty")
        else:
            alpha_early = np.asarray(alpha_early, dtype=float)
            if alpha_early.shape != (self.basis.size,):
                raise ValueError(
                    f"alpha_early must have shape ({self.basis.size},) to "
                    f"match the basis, got {alpha_early.shape}"
                )
            if self.prior_kind == "zero-mean":
                candidates = [zero_mean_prior(alpha_early)]
            elif self.prior_kind == "nonzero-mean":
                candidates = [nonzero_mean_prior(alpha_early)]
            else:
                candidates = [
                    zero_mean_prior(alpha_early),
                    nonzero_mean_prior(alpha_early),
                ]
        for prior in candidates:
            if prior.size != self.basis.size:
                raise ValueError(
                    f"prior {prior.name!r} covers {prior.size} coefficients "
                    f"but the basis has {self.basis.size}"
                )
        if missing_indices is not None:
            missing = list(missing_indices)
            candidates = [prior.with_missing(missing) for prior in candidates]
        return candidates

    # ------------------------------------------------------------------
    def _fit_design(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        design = np.asarray(design, dtype=float)
        target = np.asarray(target, dtype=float)

        if self.eta is not None:
            self.chosen_prior_ = self._candidate_priors[0]
            self.chosen_eta_ = float(self.eta)
            self.cv_report_ = None
            self.evidence_report_ = None
        else:
            grids: Optional[Dict[str, Sequence[float]]] = None
            if self.eta_grid is not None:
                grids = {p.name: self.eta_grid for p in self._candidate_priors}
            if self.selection == "evidence":
                from .evidence import select_prior_and_eta_by_evidence

                self.evidence_report_ = select_prior_and_eta_by_evidence(
                    design,
                    target,
                    self._candidate_priors,
                    eta_grids=grids,
                    missing_scale=self.missing_scale,
                )
                self.cv_report_ = None
                self.chosen_prior_ = self.evidence_report_.prior
                self.chosen_eta_ = self.evidence_report_.eta
            else:
                n_folds = min(self.n_folds, max(2, design.shape[0] // 2))
                self.cv_report_ = select_prior_and_eta(
                    design,
                    target,
                    self._candidate_priors,
                    eta_grids=grids,
                    n_folds=n_folds,
                    missing_scale=self.missing_scale,
                )
                self.evidence_report_ = None
                self.chosen_prior_ = self.cv_report_.prior
                self.chosen_eta_ = self.cv_report_.eta

        return map_estimate(
            design,
            target,
            self.chosen_prior_,
            self.chosen_eta_,
            solver=self.solver,
            missing_scale=self.missing_scale,
        )

    def fit(self, x: np.ndarray, f: np.ndarray) -> "BmfRegressor":
        """Fit from raw samples, keeping the design matrix for uncertainty.

        Assembles the design matrix once and reuses it for both the fit and
        :meth:`predict_std` (the base-class ``fit`` would discard it,
        forcing a second assembly).
        """
        x = np.asarray(x, dtype=float)
        f = np.asarray(f, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D (K, R), got shape {x.shape}")
        if f.shape != (x.shape[0],):
            raise ValueError(
                f"f must have shape ({x.shape[0]},) to match x, got {f.shape}"
            )
        design = self.basis.design_matrix(x)
        self.fit_design(design, f)
        self._train_design = design
        return self

    def predict_std(self, x: np.ndarray) -> np.ndarray:
        """Posterior predictive standard deviation at new samples.

        Quantifies how much the fused model is still uncertain about its
        own prediction (eq. 28/31's covariance, never formed explicitly --
        see :mod:`repro.bmf.uncertainty`).  Requires the model to have been
        fitted through :meth:`fit` (not ``fit_design``), and interprets the
        chosen ``eta`` as the noise variance, which is exact for the
        zero-mean prior and a ``lambda^2`` rescaling for the nonzero-mean
        one.
        """
        from .uncertainty import predictive_variance

        if self.chosen_prior_ is None or self.chosen_eta_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        train_design = getattr(self, "_train_design", None)
        if train_design is None:
            raise RuntimeError(
                "predict_std needs the training design matrix; fit the "
                "model with fit() rather than fit_design()"
            )
        eval_design = self.basis.design_matrix(np.asarray(x, dtype=float))
        variance = predictive_variance(
            train_design,
            eval_design,
            self.chosen_prior_,
            self.chosen_eta_,
            missing_scale=self.missing_scale,
        )
        return np.sqrt(variance)

    # ------------------------------------------------------------------
    def default_grid(self, num_samples: int) -> np.ndarray:
        """The eta grid that would be used for ``num_samples`` samples."""
        return default_eta_grid(self._candidate_priors[0], num_samples)


def fuse(
    x_late: np.ndarray,
    f_late: np.ndarray,
    basis,
    alpha_early: np.ndarray,
    **kwargs,
) -> FittedModel:
    """One-call BMF: fit a late-stage model from samples + early coefficients.

    Equivalent to ``BmfRegressor(basis, alpha_early, **kwargs).fit(x, f)``
    followed by :meth:`~repro.regression.base.BasisRegressor.fitted_model`;
    the quickstart example uses this entry point.
    """
    regressor = BmfRegressor(basis, alpha_early, **kwargs)
    regressor.fit(x_late, f_late)
    return regressor.fitted_model()
