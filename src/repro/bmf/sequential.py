"""Sequential BMF: decide *how many* late-stage samples are enough.

The paper fixes the late-stage sample budget up front (Tables I-VI sweep
it); in practice a designer collects expensive post-layout simulations one
batch at a time and wants to stop as soon as the fused model is good
enough.  :class:`SequentialBmf` supports that workflow:

* feed samples incrementally with :meth:`add_samples` (each batch refits --
  the fast kernel solver keeps this cheap, ``O(K^2 M)`` per refit at the
  current ``K``);
* the cross-validation error of every refit is recorded, giving a
  monitorable convergence curve;
* :meth:`has_converged` implements a plateau test on that curve, so the
  simulation loop can stop when more data has stopped helping.

This is the "adaptive sampling" extension the BMF line of work develops in
follow-up papers, built from the same primitives.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .model import BmfRegressor

__all__ = ["SequentialBmf"]


class SequentialBmf:
    """Incrementally fused late-stage model with a convergence monitor.

    Parameters are forwarded to :class:`~repro.bmf.BmfRegressor`; every
    refit runs the full prior/hyper-parameter selection on the data
    collected so far.

    Attributes
    ----------
    cv_error_history:
        Cross-validation error after each :meth:`add_samples` call.
    sample_count_history:
        Total sample count after each call.
    """

    def __init__(
        self,
        basis,
        alpha_early: Optional[np.ndarray] = None,
        prior_kind: str = "select",
        missing_indices: Optional[Iterable[int]] = None,
        n_folds: int = 5,
        **regressor_kwargs,
    ):
        self._basis = basis
        self._factory = lambda: BmfRegressor(
            basis,
            alpha_early,
            prior_kind=prior_kind,
            missing_indices=missing_indices,
            n_folds=n_folds,
            **regressor_kwargs,
        )
        self._x: Optional[np.ndarray] = None
        self._f: Optional[np.ndarray] = None
        self._model: Optional[BmfRegressor] = None
        self.cv_error_history: List[float] = []
        self.sample_count_history: List[int] = []

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Late-stage samples accumulated so far."""
        return 0 if self._x is None else self._x.shape[0]

    @property
    def model(self) -> BmfRegressor:
        """The most recent fitted regressor."""
        if self._model is None:
            raise RuntimeError("no samples added yet; call add_samples() first")
        return self._model

    # ------------------------------------------------------------------
    def add_samples(self, x: np.ndarray, f: np.ndarray) -> "SequentialBmf":
        """Append a batch of late-stage samples and refit.

        Parameters
        ----------
        x:
            New variation samples, shape ``(B, R)``.
        f:
            Their simulated performance values, shape ``(B,)``.
        """
        x = np.asarray(x, dtype=float)
        f = np.asarray(f, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if f.shape != (x.shape[0],):
            raise ValueError(
                f"f must have shape ({x.shape[0]},), got {f.shape}"
            )
        if self._x is None:
            self._x, self._f = x.copy(), f.copy()
        else:
            if x.shape[1] != self._x.shape[1]:
                raise ValueError(
                    f"batch has {x.shape[1]} variables, expected "
                    f"{self._x.shape[1]}"
                )
            self._x = np.vstack([self._x, x])
            self._f = np.concatenate([self._f, f])

        self._model = self._factory()
        self._model.fit(self._x, self._f)
        if self._model.cv_report_ is not None:
            self.cv_error_history.append(float(self._model.cv_report_.error))
        else:  # fixed-eta fits have no CV error; track training error
            residual = self._f - self._model.predict(self._x)
            norm = max(float(np.linalg.norm(self._f)), 1e-300)
            self.cv_error_history.append(float(np.linalg.norm(residual)) / norm)
        self.sample_count_history.append(self.num_samples)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict with the latest fused model."""
        return self.model.predict(x)

    # ------------------------------------------------------------------
    def has_converged(
        self, relative_improvement: float = 0.05, window: int = 2
    ) -> bool:
        """Plateau test on the cross-validation error curve.

        True when over the last ``window`` refits the CV error improved by
        less than ``relative_improvement`` (fractionally) per step -- i.e.
        additional expensive simulations have stopped paying for
        themselves.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        history = self.cv_error_history
        if len(history) < window + 1:
            return False
        for before, after in zip(history[-window - 1 : -1], history[-window:]):
            if before <= 0:
                continue
            if (before - after) / before > relative_improvement:
                return False
        return True
