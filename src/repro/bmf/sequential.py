"""Sequential BMF: streaming late-stage samples with incremental refits.

The paper fixes the late-stage sample budget up front (Tables I-VI sweep
it); in practice a designer collects expensive post-layout simulations one
batch at a time and wants to stop as soon as the fused model is good
enough.  :class:`SequentialBmf` supports that workflow:

* feed samples incrementally with :meth:`add_samples`; every batch re-solves
  the MAP system on the data collected so far;
* the Section IV-C fast solver is used *incrementally*: the dual kernel
  ``B = G diag(s^2) G^T`` is grown by a rank-k border update per batch
  (``O(K * Delta-K * M)`` via :func:`repro.linalg.extend_gram_kernel`)
  instead of being rebuilt from scratch (``O(K^2 M)``), and for a fixed
  hyper-parameter the Cholesky factor of ``eta I + B`` is border-updated
  too (:class:`repro.linalg.CholeskyFactor`);
* when conditioning degrades (degenerate kernel/Schur pivots, detected by
  :func:`repro.linalg.is_effectively_zero`-style scale checks) the refit
  falls back to a full rebuild -- counted in ``woodbury.fallbacks``;
* the cross-validation error of every refit is recorded, giving a
  monitorable convergence curve, and :meth:`has_converged` implements a
  plateau test on that curve.

Construction parameters are captured in an immutable
:class:`SequentialBmfConfig` snapshot, so refits can never observe caller
mutation of arrays or lists passed to the constructor.

With ``deterministic=True`` every kernel entry is computed with a
blocking-independent reduction, making the fitted state *bitwise* identical
no matter how the same samples are batched (one at a time, in chunks, or
all at once) -- the property the differential test suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..faults import InjectedFault, failpoint
from ..linalg import CholeskyFactor, SolverError, is_effectively_zero
from ..runtime.metrics import metrics as runtime_metrics
from .cross_validation import select_prior_and_eta_from_solvers
from .map_estimation import KernelMapSolver
from .model import BmfRegressor

__all__ = [
    "RefitOutcome",
    "SequentialBmf",
    "SequentialBmfConfig",
    "SequentialFitterState",
]

#: Fires at the top of every refit (before any solver work); armed plans
#: here model a whole-refit failure, exercised via :meth:`try_add_samples`.
_FP_REFIT = failpoint("sequential.refit")


@dataclass(frozen=True)
class RefitOutcome:
    """Structured result of one :meth:`SequentialBmf.try_add_samples` call.

    Instead of raising a :class:`~repro.linalg.SolverError` (or an injected
    fault) through a serving loop, the sequential fitter reports what
    happened so the caller can decide to retry, skip the batch, or keep
    serving the last good model.  ``ok=False`` guarantees the fitter state
    (accumulated samples, cached solvers, histories, and the published
    model) is exactly what it was before the call.
    """

    ok: bool
    mode: Optional[str] = None
    cv_error: Optional[float] = None
    num_samples: int = 0
    error: Optional[str] = None
    error_type: Optional[str] = None

    @property
    def failed(self) -> bool:
        return not self.ok


@dataclass(frozen=True)
class SequentialFitterState:
    """Portable snapshot of a :class:`SequentialBmf`'s resumable state.

    Carries exactly what a warm restart needs: the accumulated samples
    (everything a from-scratch refit would consume) plus, when the
    fixed-eta incremental path had one cached, the lower Cholesky factor
    of ``eta I + B`` and the index of the prior it belongs to -- so
    :meth:`SequentialBmf.rearm` can keep border-updating the *same*
    factor instead of re-factoring a ``K x K`` system from scratch.
    Histories (CV-error / sample-count curves) are diagnostics, not
    state, and restart empty.
    """

    x: np.ndarray
    f: np.ndarray
    chol_lower: Optional[np.ndarray] = None
    chol_prior_index: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "x", _readonly(self.x))
        object.__setattr__(self, "f", _readonly(self.f))
        object.__setattr__(self, "chol_lower", _readonly(self.chol_lower))
        if self.x is None or self.f is None:
            raise ValueError("fitter state requires sample arrays")
        if self.x.ndim != 2 or self.f.shape != (self.x.shape[0],):
            raise ValueError(
                f"inconsistent sample shapes x={self.x.shape} f={self.f.shape}"
            )
        if (self.chol_lower is None) != (self.chol_prior_index is None):
            raise ValueError(
                "chol_lower and chol_prior_index must be given together"
            )


def _readonly(array: Optional[np.ndarray]) -> Optional[np.ndarray]:
    if array is None:
        return None
    out = np.array(array, dtype=float, copy=True)
    out.flags.writeable = False
    return out


def _freeze_kwarg(name: str, value: Any) -> Any:
    """Snapshot a constructor kwarg so later caller mutation is invisible."""
    if name == "eta_grid" and value is not None:
        return tuple(float(v) for v in value)
    if name == "priors" and value is not None:
        return tuple(value)  # GaussianCoefficientPrior is a frozen dataclass
    return value


@dataclass(frozen=True)
class SequentialBmfConfig:
    """Immutable snapshot of everything a sequential refit needs.

    :class:`SequentialBmf` used to capture its constructor arguments in a
    lambda closure; mutating the original ``alpha_early`` array or
    ``missing_indices`` list *after* construction silently changed every
    later refit.  This config copies (and freezes) all mutable inputs once,
    at construction, and is the only state refits read.
    """

    basis: Any
    alpha_early: Optional[np.ndarray] = None
    prior_kind: str = "select"
    missing_indices: Optional[Tuple[int, ...]] = None
    n_folds: int = 5
    regressor_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "alpha_early", _readonly(self.alpha_early))
        if self.missing_indices is not None:
            object.__setattr__(
                self,
                "missing_indices",
                tuple(int(i) for i in self.missing_indices),
            )
        frozen = {
            name: _freeze_kwarg(name, value)
            for name, value in dict(self.regressor_kwargs).items()
        }
        object.__setattr__(self, "regressor_kwargs", MappingProxyType(frozen))

    def make_regressor(self) -> BmfRegressor:
        """A fresh :class:`BmfRegressor` configured from the snapshot."""
        kwargs = dict(self.regressor_kwargs)
        if "eta_grid" in kwargs and kwargs["eta_grid"] is not None:
            kwargs["eta_grid"] = list(kwargs["eta_grid"])
        return BmfRegressor(
            self.basis,
            self.alpha_early,
            prior_kind=self.prior_kind,
            missing_indices=self.missing_indices,
            n_folds=self.n_folds,
            **kwargs,
        )


class SequentialBmf:
    """Incrementally fused late-stage model with a convergence monitor.

    Parameters are forwarded to :class:`~repro.bmf.BmfRegressor` (snapshotted
    in an immutable :class:`SequentialBmfConfig` first); every refit runs the
    full prior/hyper-parameter selection on the data collected so far.

    Parameters
    ----------
    incremental:
        Reuse the cached dual kernel across batches (rank-k border updates,
        Section IV-C applied in streaming form).  Falls back to a full
        rebuild when conditioning degrades.  Only the default ``"fast"``
        solver with ``"cv"`` selection (or a fixed ``eta``) runs
        incrementally; other configurations silently use from-scratch
        refits, exactly as before.
    deterministic:
        Compute kernel entries with a blocking-independent reduction so the
        fitted state is bitwise reproducible regardless of how samples are
        batched.  Slower (no BLAS in the kernel build); intended for
        reproducibility-critical flows and the differential test suite.

    Attributes
    ----------
    cv_error_history:
        Cross-validation error after each :meth:`add_samples` call.
    sample_count_history:
        Total sample count after each call.
    last_refit_mode:
        ``"incremental"``, ``"full"``, or ``"fallback"`` -- how the most
        recent :meth:`add_samples` call refitted.
    """

    def __init__(
        self,
        basis,
        alpha_early: Optional[np.ndarray] = None,
        prior_kind: str = "select",
        missing_indices: Optional[Iterable[int]] = None,
        n_folds: int = 5,
        incremental: bool = True,
        deterministic: bool = False,
        **regressor_kwargs,
    ):
        self.config = SequentialBmfConfig(
            basis=basis,
            alpha_early=alpha_early,
            prior_kind=prior_kind,
            missing_indices=(
                None if missing_indices is None else tuple(missing_indices)
            ),
            n_folds=n_folds,
            regressor_kwargs=regressor_kwargs,
        )
        # Validate the configuration eagerly (bad prior shapes, conflicting
        # eta/prior_kind, ...) instead of on the first add_samples call, and
        # keep the validated candidate priors for the incremental path.
        template = self.config.make_regressor()
        self._candidate_priors = list(template._candidate_priors)
        self.incremental = bool(incremental)
        self.deterministic = bool(deterministic)

        self._x: Optional[np.ndarray] = None
        self._f: Optional[np.ndarray] = None
        self._design: Optional[np.ndarray] = None
        self._solvers: Optional[List[KernelMapSolver]] = None
        self._chol: Optional[CholeskyFactor] = None
        self._chol_prior_index: Optional[int] = None
        self._model: Optional[BmfRegressor] = None
        self.cv_error_history: List[float] = []
        self.sample_count_history: List[int] = []
        self.last_refit_mode: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Late-stage samples accumulated so far."""
        return 0 if self._x is None else self._x.shape[0]

    @property
    def model(self) -> BmfRegressor:
        """The most recent fitted regressor."""
        if self._model is None:
            raise RuntimeError("no samples added yet; call add_samples() first")
        return self._model

    def _incremental_capable(self) -> bool:
        kwargs = self.config.regressor_kwargs
        if kwargs.get("selection", "cv") != "cv":
            return False
        if kwargs.get("solver", "fast") != "fast":
            return False
        return self.incremental

    # ------------------------------------------------------------------
    def add_samples(self, x: np.ndarray, f: np.ndarray) -> "SequentialBmf":
        """Append a batch of late-stage samples and refit.

        Parameters
        ----------
        x:
            New variation samples, shape ``(B, R)``.
        f:
            Their simulated performance values, shape ``(B,)``.
        """
        x = np.asarray(x, dtype=float)
        f = np.asarray(f, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if f.shape != (x.shape[0],):
            raise ValueError(
                f"f must have shape ({x.shape[0]},), got {f.shape}"
            )
        if self._x is None:
            self._x, self._f = x.copy(), f.copy()
        else:
            if x.shape[1] != self._x.shape[1]:
                raise ValueError(
                    f"batch has {x.shape[1]} variables, expected "
                    f"{self._x.shape[1]}"
                )
            self._x = np.vstack([self._x, x])
            self._f = np.concatenate([self._f, f])

        _FP_REFIT.hit()
        with runtime_metrics.timer("sequential.refit"):
            if self._incremental_capable():
                cv_error = self._refit_incremental(x, f)
            else:
                cv_error = self._refit_full()
        self.cv_error_history.append(cv_error)
        self.sample_count_history.append(self.num_samples)
        return self

    def try_add_samples(self, x: np.ndarray, f: np.ndarray) -> RefitOutcome:
        """Append a batch and refit, reporting failure instead of raising.

        The serving-loop counterpart of :meth:`add_samples`: solver-level
        failures (:class:`~repro.linalg.SolverError`,
        ``numpy.linalg.LinAlgError``, injected faults) are caught, the
        fitter is rolled back to its pre-call state, and a structured
        :class:`RefitOutcome` with ``ok=False`` is returned so the caller
        keeps serving the last good model.  Caller errors (bad shapes /
        dtypes) still raise -- they indicate a bug at the call site, not a
        transient numerical failure.
        """
        snapshot = (
            self._x,
            self._f,
            self._design,
            self._solvers,
            self._model,
            self.last_refit_mode,
        )
        history_len = len(self.cv_error_history)
        try:
            self.add_samples(x, f)
        except (SolverError, np.linalg.LinAlgError, InjectedFault) as exc:
            (
                self._x,
                self._f,
                self._design,
                self._solvers,
                self._model,
                self.last_refit_mode,
            ) = snapshot
            # The cached dual Cholesky may have been border-updated in place
            # before the failure; drop it so the next refit re-factors.
            self._chol = None
            self._chol_prior_index = None
            del self.cv_error_history[history_len:]
            del self.sample_count_history[history_len:]
            runtime_metrics.increment("sequential.failed_refits")
            return RefitOutcome(
                ok=False,
                num_samples=self.num_samples,
                error=str(exc),
                error_type=type(exc).__name__,
            )
        return RefitOutcome(
            ok=True,
            mode=self.last_refit_mode,
            cv_error=self.cv_error_history[-1],
            num_samples=self.num_samples,
        )

    # ------------------------------------------------------------------
    # From-scratch refit (non-incremental configurations)
    # ------------------------------------------------------------------
    def _refit_full(self) -> float:
        self._model = self.config.make_regressor()
        self._model.fit(self._x, self._f)
        self.last_refit_mode = "full"
        if self._model.cv_report_ is not None:
            return float(self._model.cv_report_.error)
        # Fixed-eta / evidence fits have no CV error; track training error.
        residual = self._f - self._model.predict(self._x)
        norm = max(float(np.linalg.norm(self._f)), 1e-300)
        return float(np.linalg.norm(residual)) / norm

    # ------------------------------------------------------------------
    # Incremental refit (streaming Woodbury path)
    # ------------------------------------------------------------------
    def _refit_incremental(self, x_new: np.ndarray, f_new: np.ndarray) -> float:
        design_new = self.config.basis.design_matrix(x_new)
        mode = "incremental"
        if self._design is None:
            self._design = np.array(design_new, copy=True)
            self._build_solvers()
            mode = "full"
        else:
            full_design = np.concatenate([self._design, design_new], axis=0)
            try:
                grown = [
                    solver.extended(
                        design_new,
                        f_new,
                        full_design=full_design,
                        full_target=self._f,
                    )
                    for solver in self._solvers
                ]
                self._check_extension_conditioning(grown)
            except SolverError:
                runtime_metrics.increment("woodbury.fallbacks")
                self._design = full_design
                self._build_solvers()
                mode = "fallback"
            else:
                self._design = full_design
                self._solvers = grown
                runtime_metrics.increment("woodbury.incremental_refits")
        self.last_refit_mode = mode
        return self._solve_from_solvers()

    def _build_solvers(self) -> None:
        """(Re)build one kernel solver per candidate prior from scratch."""
        missing_scale = self.config.regressor_kwargs.get("missing_scale")
        self._solvers = [
            KernelMapSolver(
                self._design,
                self._f,
                prior,
                missing_scale,
                deterministic=self.deterministic,
            )
            for prior in self._candidate_priors
        ]
        self._chol = None
        self._chol_prior_index = None

    def _check_extension_conditioning(
        self, grown: List[KernelMapSolver]
    ) -> None:
        """Scale-relative sanity check on the freshly appended kernel border.

        A new kernel diagonal entry that is round-off-level relative to the
        kernel's own scale means the new row carries no energy under the
        prior -- border updates on top of it would amplify noise, so signal
        the caller to rebuild from scratch instead.
        """
        num_new = grown[0].kernel.shape[0] - self._solvers[0].kernel.shape[0]
        for solver in grown:
            diag = np.diagonal(solver.kernel)
            scale = float(np.max(diag, initial=0.0))
            for entry in diag[-num_new:]:
                if entry < 0 or is_effectively_zero(entry, scale=scale):
                    raise SolverError(
                        "degenerate kernel diagonal in incremental extension"
                    )

    def _solve_from_solvers(self) -> float:
        """Hyper-parameter selection + MAP solve on the cached solvers."""
        kwargs = self.config.regressor_kwargs
        eta = kwargs.get("eta")
        cv_report = None
        if eta is not None:
            prior_index = 0
            chosen_eta = float(eta)
        else:
            eta_grid = kwargs.get("eta_grid")
            grids = None
            if eta_grid is not None:
                grids = {p.name: list(eta_grid) for p in self._candidate_priors}
            n_folds = min(
                self.config.n_folds, max(2, self._design.shape[0] // 2)
            )
            cv_report = select_prior_and_eta_from_solvers(
                self._solvers, grids, n_folds
            )
            prior_index = next(
                i
                for i, s in enumerate(self._solvers)
                if s.prior is cv_report.prior
            )
            chosen_eta = float(cv_report.eta)

        solver = self._solvers[prior_index]
        coefficients = self._map_solve(solver, prior_index, chosen_eta)

        model = self.config.make_regressor()
        model.chosen_prior_ = solver.prior
        model.chosen_eta_ = chosen_eta
        model.cv_report_ = cv_report
        model.evidence_report_ = None
        model.coefficients_ = coefficients
        model._train_design = self._design
        self._model = model

        if cv_report is not None:
            return float(cv_report.error)
        predictions = self._design @ coefficients
        residual = self._f - predictions
        norm = max(float(np.linalg.norm(self._f)), 1e-300)
        return float(np.linalg.norm(residual)) / norm

    def _map_solve(
        self, solver: KernelMapSolver, prior_index: int, eta: float
    ) -> np.ndarray:
        """MAP coefficients, border-updating the dual Cholesky when possible.

        The cached factor of ``eta I + B`` stays valid across batches only
        for a fixed eta and a stable chosen prior; cross-validated refits
        (eta changes per batch) and deterministic mode (border updates are
        not blocking-independent) always re-factor.
        """
        fixed_eta = self.config.regressor_kwargs.get("eta") is not None
        if not fixed_eta or self.deterministic:
            return solver.solve(eta)

        kernel = solver.kernel
        size = kernel.shape[0]
        factor = self._chol
        reusable = (
            factor is not None
            and self._chol_prior_index == prior_index
            and factor.size < size
        )
        try:
            if reusable:
                old = factor.size
                cross = kernel[:old, old:]
                corner = kernel[old:, old:].copy()
                corner[np.diag_indices_from(corner)] += eta
                factor.append(cross, corner)
            else:
                system = kernel.copy()
                system[np.diag_indices_from(system)] += eta
                factor = CholeskyFactor(system)
        except SolverError:
            runtime_metrics.increment("woodbury.fallbacks")
            self._chol = None
            self._chol_prior_index = None
            return solver.solve(eta)  # robust solve_spd path
        self._chol = factor
        self._chol_prior_index = prior_index
        weights = factor.solve(solver.centered_target)
        return solver.prior.mean + solver._scale_sq * (solver.design.T @ weights)

    # ------------------------------------------------------------------
    # Warm restart (crash recovery; see docs/store.md)
    # ------------------------------------------------------------------
    def export_state(self) -> SequentialFitterState:
        """Snapshot the resumable fitter state for persistence.

        The snapshot (samples plus, when cached, the dual Cholesky factor)
        is everything :meth:`rearm` needs to continue a streaming fit in a
        fresh process.  Raises :class:`RuntimeError` before the first
        batch -- there is nothing to resume yet.
        """
        if self._x is None:
            raise RuntimeError("no samples added yet; nothing to export")
        factor = self._chol
        return SequentialFitterState(
            x=self._x,
            f=self._f,
            chol_lower=None if factor is None else np.array(factor.lower),
            chol_prior_index=None if factor is None else self._chol_prior_index,
        )

    def rearm(self, state: SequentialFitterState) -> "SequentialBmf":
        """Restore a fresh fitter from a persisted snapshot.

        Reinstalls the samples, rebuilds the design matrix and kernel
        solvers from the (immutable) config, and -- on the fixed-eta
        incremental path -- adopts the persisted Cholesky factor via
        :meth:`repro.linalg.CholeskyFactor.from_lower`, so the next
        :meth:`add_samples` call border-updates exactly where the dead
        process stopped instead of re-factoring ``eta I + B`` from
        scratch.  The restored model's coefficients are recomputed from
        that factor (two triangular solves), not refitted.

        Only a fresh fitter (no samples yet) can be re-armed, and the
        snapshot must match the configured basis; violations raise
        :class:`RuntimeError` / :class:`ValueError` respectively.  In
        ``deterministic`` mode the factor is ignored (that path never
        caches one) and the refit is recomputed blocking-independently,
        which keeps resumed streams bitwise identical to uninterrupted
        ones.
        """
        if self._x is not None:
            raise RuntimeError(
                "rearm() requires a fresh fitter; this one already has "
                f"{self.num_samples} samples"
            )
        num_vars = self.config.basis.num_vars
        if state.x.shape[1] != num_vars:
            raise ValueError(
                f"snapshot has {state.x.shape[1]} variables, basis expects "
                f"{num_vars}"
            )
        self._x = np.array(state.x, dtype=float)
        self._f = np.array(state.f, dtype=float)
        with runtime_metrics.timer("sequential.rearm"):
            self._design = self.config.basis.design_matrix(self._x)
            self._build_solvers()
            cv_error = self._rearm_solve(state)
        self.last_refit_mode = "rearmed"
        self.cv_error_history.append(cv_error)
        self.sample_count_history.append(self.num_samples)
        runtime_metrics.increment("sequential.rearms")
        return self

    def _rearm_solve(self, state: SequentialFitterState) -> float:
        """Recompute the served model, adopting the persisted factor."""
        eta = self.config.regressor_kwargs.get("eta")
        use_factor = (
            state.chol_lower is not None
            and eta is not None
            and not self.deterministic
            and self._incremental_capable()
        )
        if not use_factor:
            return self._solve_from_solvers()

        prior_index = int(state.chol_prior_index)
        if not 0 <= prior_index < len(self._solvers):
            raise ValueError(
                f"snapshot prior index {prior_index} out of range for "
                f"{len(self._solvers)} candidate priors"
            )
        solver = self._solvers[prior_index]
        factor = CholeskyFactor.from_lower(state.chol_lower)
        if factor.size != solver.kernel.shape[0]:
            raise ValueError(
                f"snapshot factor is {factor.size}x{factor.size} but the "
                f"kernel over the snapshot samples is "
                f"{solver.kernel.shape[0]}x{solver.kernel.shape[0]}"
            )
        self._chol = factor
        self._chol_prior_index = prior_index
        weights = factor.solve(solver.centered_target)
        coefficients = solver.prior.mean + solver._scale_sq * (
            solver.design.T @ weights
        )

        model = self.config.make_regressor()
        model.chosen_prior_ = solver.prior
        model.chosen_eta_ = float(eta)
        model.cv_report_ = None
        model.evidence_report_ = None
        model.coefficients_ = coefficients
        model._train_design = self._design
        self._model = model

        residual = self._f - self._design @ coefficients
        norm = max(float(np.linalg.norm(self._f)), 1e-300)
        return float(np.linalg.norm(residual)) / norm

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict with the latest fused model."""
        return self.model.predict(x)

    # ------------------------------------------------------------------
    def has_converged(
        self, relative_improvement: float = 0.05, window: int = 2
    ) -> bool:
        """Plateau test on the cross-validation error curve.

        True when over the last ``window`` refits the CV error improved by
        less than ``relative_improvement`` (fractionally) per step -- i.e.
        additional expensive simulations have stopped paying for
        themselves.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        history = self.cv_error_history
        if len(history) < window + 1:
            return False
        for before, after in zip(history[-window - 1 : -1], history[-window:]):
            if before <= 0:
                continue
            if (before - after) / before > relative_improvement:
                return False
        return True
