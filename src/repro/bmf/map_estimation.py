"""Maximum-a-posteriori estimation of late-stage coefficients (Section III-B).

Both priors of the paper lead to the same unified MAP linear system.  With
prior ``alpha ~ N(mu, t^2 diag(s)^2)`` and likelihood noise ``sigma_0``, the
posterior mean (eqs. 30 / 35) solves

    (eta * diag(s^{-2}) + G^T G) alpha = eta * diag(s^{-2}) mu + G^T f

with a single scalar hyper-parameter

    eta = sigma_0^2           (zero-mean prior,    mu = 0,      s = |alpha_E|)
    eta = sigma_0^2/lambda^2  (nonzero-mean prior, mu = alpha_E, s = |alpha_E|)

Two solver paths are provided:

* ``"direct"``: assemble and Cholesky-solve the M x M system -- the paper's
  conventional solver used as the Fig. 5 / Fig. 8 baseline;
* ``"fast"``: the dual (kernel) form of the Woodbury identity (Section IV-C),
  which only ever factors a K x K matrix:

      c = (eta I + G diag(s^2) G^T)^{-1} (f - G mu)
      alpha = mu + diag(s^2) G^T c

  exact, no approximation, ``O(K^2 M)`` instead of ``O(M^3)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..faults import failpoint
from ..linalg import (
    extend_gram_kernel,
    gram_kernel,
    solve_diag_plus_gram_direct,
    solve_spd,
)
from .priors import GaussianCoefficientPrior

__all__ = ["map_estimate", "KernelMapSolver"]

#: Fires before each dual-system solve (the K x K kernel solve at the
#: heart of every MAP fit and cross-validation fold); armed plans here
#: model a solver failure mid-refit.
_FP_MAP_SOLVE = failpoint("solver.map")


def map_estimate(
    design: np.ndarray,
    target: np.ndarray,
    prior: GaussianCoefficientPrior,
    eta: float,
    solver: str = "fast",
    missing_scale: Optional[float] = None,
) -> np.ndarray:
    """Solve the MAP system for the late-stage coefficients.

    Parameters
    ----------
    design:
        Late-stage design matrix ``G`` of shape ``(K, M)`` (eq. 9).
    target:
        Late-stage simulated performance values ``f_L`` of shape ``(K,)``.
    prior:
        Per-coefficient Gaussian prior (Section III-A / IV-B).
    eta:
        Positive prior-strength hyper-parameter (see module docstring).
    solver:
        ``"fast"`` (Woodbury/kernel, default) or ``"direct"`` (Cholesky on
        the M x M system).
    missing_scale:
        Finite stand-in scale for coefficients with missing prior knowledge;
        defaults to ``1e3`` x the largest finite prior scale.  Resolved to a
        concrete value once, up front, so every internal sub-solve (and both
        solver paths) substitutes the *same* scale.

    Returns
    -------
    numpy.ndarray
        MAP coefficients ``alpha_L`` of shape ``(M,)``.
    """
    if solver not in ("fast", "direct"):
        raise ValueError(f"solver must be 'fast' or 'direct', got {solver!r}")
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    if design.ndim != 2:
        raise ValueError(f"design must be 2-D, got shape {design.shape}")
    num_samples, num_terms = design.shape
    if target.shape != (num_samples,):
        raise ValueError(
            f"target must have shape ({num_samples},), got {target.shape}"
        )
    if prior.size != num_terms:
        raise ValueError(
            f"prior covers {prior.size} coefficients but design has {num_terms}"
        )

    # Resolve the missing-scale default against the FULL prior before any
    # recursion: the pinned-coefficient sub-solve below sees a prior with a
    # different set of finite scales, so letting it re-derive the default
    # would substitute a different value than the fast path uses.
    missing_scale = prior.resolve_missing_scale(missing_scale)
    scale = prior.effective_scale(missing_scale)
    pinned = scale == 0.0  # repro: noqa[REP003] -- exact pinned-prior sentinel
    if np.all(pinned):
        return prior.mean.copy()

    if solver == "direct":
        if np.any(pinned):
            # Pinned coefficients contribute a fixed offset; solve the rest.
            free = ~pinned
            offset = design[:, pinned] @ prior.mean[pinned]
            sub_prior = GaussianCoefficientPrior(
                prior.mean[free], scale[free], prior.name
            )
            sub = map_estimate(
                design[:, free],
                target - offset,
                sub_prior,
                eta,
                solver,
                missing_scale,
            )
            out = prior.mean.copy()
            out[free] = sub
            return out
        inv_var = eta / scale**2
        rhs = inv_var * prior.mean + design.T @ target
        return solve_diag_plus_gram_direct(inv_var, design, rhs, scale=1.0)

    # The kernel (dual) form handles pinned coefficients natively: a zero
    # prior scale drops the column from the kernel and the MAP solution
    # returns the prior mean for it exactly.
    return KernelMapSolver(design, target, prior, missing_scale).solve(eta)


class KernelMapSolver:
    """Dual-form MAP solver with precomputed kernel matrix.

    Precomputes ``B = G diag(s^2) G^T`` (the ``O(K^2 M)`` part) once, after
    which every call to :meth:`solve` for a new ``eta`` -- and every
    prediction on held-out rows via :meth:`predict_submatrix` -- costs only
    ``O(K^3)`` / ``O(K^2)``.  This is what makes the cross-validation sweep
    over hyper-parameter grids (Section IV-D) affordable: fold kernels are
    submatrices of the full-sample kernel.
    """

    def __init__(
        self,
        design: np.ndarray,
        target: np.ndarray,
        prior: GaussianCoefficientPrior,
        missing_scale: Optional[float] = None,
        deterministic: bool = False,
    ):
        design = np.asarray(design, dtype=float)
        target = np.asarray(target, dtype=float)
        missing_scale = prior.resolve_missing_scale(missing_scale)
        scale = prior.effective_scale(missing_scale)
        self.design = design
        self.target = target
        self.prior = prior
        self.deterministic = bool(deterministic)
        self._scale_sq = scale**2
        # B = G diag(s^2) G^T, shape (K, K).  In deterministic mode the
        # contraction is blocking-independent, so a solver grown through
        # :meth:`extended` is bitwise identical to one built from scratch
        # on the stacked design (see repro.linalg.gram_kernel).
        self.kernel = gram_kernel(design, self._scale_sq, self.deterministic)
        self.prior_prediction = self._prior_prediction(design)  # G mu
        self.centered_target = target - self.prior_prediction

    def _prior_prediction(self, design: np.ndarray) -> np.ndarray:
        if self.deterministic:
            return np.einsum("km,m->k", design, self.prior.mean, optimize=False)
        return design @ self.prior.mean

    def extended(
        self,
        new_design: np.ndarray,
        new_target: np.ndarray,
        full_design: Optional[np.ndarray] = None,
        full_target: Optional[np.ndarray] = None,
    ) -> "KernelMapSolver":
        """New solver with ``Delta-K`` appended rows, reusing the cached kernel.

        This is the streaming-refit entry point (Section IV-C used
        incrementally): only the new kernel border is computed, costing
        ``O(K * Delta-K * M)`` instead of the ``O(K^2 M)`` from-scratch
        rebuild.  The returned solver is exact -- and, when the solver was
        built with ``deterministic=True``, bitwise identical to a fresh
        :class:`KernelMapSolver` on the stacked data.

        Parameters
        ----------
        new_design, new_target:
            The appended design rows ``(Delta-K, M)`` and targets.
        full_design, full_target:
            Optional pre-stacked arrays equal to ``[old; new]``.  Callers
            that already maintain an accumulation buffer (e.g.
            :class:`repro.bmf.SequentialBmf`) pass views here so the grown
            solver shares their storage instead of re-concatenating.
        """
        new_design = np.asarray(new_design, dtype=float)
        new_target = np.asarray(new_target, dtype=float)
        if new_design.ndim != 2 or new_design.shape[1] != self.design.shape[1]:
            raise ValueError(
                f"new_design must have shape (dK, {self.design.shape[1]}), "
                f"got {new_design.shape}"
            )
        if new_target.shape != (new_design.shape[0],):
            raise ValueError(
                f"new_target must have shape ({new_design.shape[0]},), "
                f"got {new_target.shape}"
            )
        total = self.design.shape[0] + new_design.shape[0]
        grown = object.__new__(KernelMapSolver)
        grown.prior = self.prior
        grown.deterministic = self.deterministic
        grown._scale_sq = self._scale_sq
        grown.kernel = extend_gram_kernel(
            self.kernel,
            self.design,
            new_design,
            self._scale_sq,
            self.deterministic,
        )
        if full_design is None:
            grown.design = np.concatenate([self.design, new_design], axis=0)
        else:
            full_design = np.asarray(full_design, dtype=float)
            if full_design.shape != (total, self.design.shape[1]):
                raise ValueError(
                    f"full_design must have shape "
                    f"({total}, {self.design.shape[1]}), got {full_design.shape}"
                )
            grown.design = full_design
        if full_target is None:
            grown.target = np.concatenate([self.target, new_target])
        else:
            full_target = np.asarray(full_target, dtype=float)
            if full_target.shape != (total,):
                raise ValueError(
                    f"full_target must have shape ({total},), "
                    f"got {full_target.shape}"
                )
            grown.target = full_target
        new_prior_prediction = grown._prior_prediction(new_design)
        grown.prior_prediction = np.concatenate(
            [self.prior_prediction, new_prior_prediction]
        )
        grown.centered_target = np.concatenate(
            [self.centered_target, new_target - new_prior_prediction]
        )
        return grown

    def dual_weights(self, eta: float, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Solve ``(eta I + B[rows, rows]) c = (f - G mu)[rows]``."""
        if eta <= 0:
            raise ValueError(f"eta must be positive, got {eta}")
        _FP_MAP_SOLVE.hit()
        if rows is None:
            kernel = self.kernel
            residual = self.centered_target
        else:
            kernel = self.kernel[np.ix_(rows, rows)]
            residual = self.centered_target[rows]
        system = kernel.copy()
        system[np.diag_indices_from(system)] += eta
        return solve_spd(system, residual)

    def solve(self, eta: float) -> np.ndarray:
        """Full MAP coefficient vector for the given ``eta``."""
        weights = self.dual_weights(eta)
        return self.prior.mean + self._scale_sq * (self.design.T @ weights)

    def predict_submatrix(
        self, train_rows: np.ndarray, eval_rows: np.ndarray, eta: float
    ) -> np.ndarray:
        """Predict at ``eval_rows`` from a model trained on ``train_rows``.

        Uses only kernel submatrices, never forming coefficients -- this is
        the O(K^2) inner loop of hyper-parameter cross-validation.
        """
        weights = self.dual_weights(eta, train_rows)
        cross = self.kernel[np.ix_(eval_rows, train_rows)]
        return self.prior_prediction[eval_rows] + cross @ weights
