"""Bayesian model fusion: priors, MAP estimation, CV selection, mapping."""

from .cross_validation import (
    CrossValidationReport,
    cross_validate_eta,
    default_eta_grid,
    select_prior_and_eta,
    select_prior_and_eta_from_solvers,
)
from .evidence import (
    EvidenceReport,
    log_evidence,
    select_prior_and_eta_by_evidence,
)
from .map_estimation import KernelMapSolver, map_estimate
from .model import BmfRegressor, fuse
from .prior_mapping import FingerMap, PriorMapping, map_prior_coefficients
from .sequential import (
    RefitOutcome,
    SequentialBmf,
    SequentialBmfConfig,
    SequentialFitterState,
)
from .uncertainty import coefficient_posterior_variance, predictive_variance
from .priors import (
    GaussianCoefficientPrior,
    nonzero_mean_prior,
    uninformative_prior,
    zero_mean_prior,
)

__all__ = [
    "BmfRegressor",
    "RefitOutcome",
    "SequentialBmf",
    "SequentialBmfConfig",
    "SequentialFitterState",
    "coefficient_posterior_variance",
    "predictive_variance",
    "CrossValidationReport",
    "EvidenceReport",
    "log_evidence",
    "select_prior_and_eta_by_evidence",
    "FingerMap",
    "GaussianCoefficientPrior",
    "KernelMapSolver",
    "PriorMapping",
    "cross_validate_eta",
    "default_eta_grid",
    "fuse",
    "map_estimate",
    "map_prior_coefficients",
    "nonzero_mean_prior",
    "select_prior_and_eta",
    "select_prior_and_eta_from_solvers",
    "uninformative_prior",
    "zero_mean_prior",
]
