"""Evidence-based (type-II maximum likelihood) hyper-parameter selection.

Section IV-D selects the prior and its strength by N-fold cross-validation.
The fully Bayesian alternative maximizes the *marginal likelihood* of the
late-stage data instead: under prior ``alpha ~ N(mu, tau^2 diag(s^2))`` and
noise ``sigma_0^2``, the observations are jointly Gaussian,

    f ~ N(G mu,  tau^2 * (B + eta I)),   B = G diag(s^2) G^T,
    eta = sigma_0^2 / tau^2,

so with the overall scale ``tau^2`` profiled out in closed form the
log-evidence of each ``eta`` costs O(K) after one eigendecomposition of
the K x K kernel:

    tau^2*(eta)  = r^T (B + eta I)^{-1} r / K
    log L*(eta)  = -K/2 (log(2 pi tau^2*) + 1) - 1/2 log det(B + eta I)

No folds, no refits -- and it uses all K samples for both "fitting" and
"selection".  The ablation benchmark compares it against the paper's CV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from .cross_validation import default_eta_grid
from .map_estimation import KernelMapSolver
from .priors import GaussianCoefficientPrior

__all__ = ["EvidenceReport", "log_evidence", "select_prior_and_eta_by_evidence"]


def log_evidence(solver: KernelMapSolver, etas: Sequence[float]) -> np.ndarray:
    """Profiled log marginal likelihood for each eta in the grid.

    Parameters
    ----------
    solver:
        A :class:`KernelMapSolver` built on the training data (its kernel
        and prior-mean residual are reused).
    etas:
        Positive candidate values of ``eta = sigma_0^2 / tau^2``.

    Returns
    -------
    numpy.ndarray
        ``log L*(eta)`` up to the common additive constant, one entry per
        candidate.
    """
    etas = np.asarray(list(etas), dtype=float)
    if np.any(etas <= 0):
        raise ValueError("all eta values must be positive")
    eigenvalues, eigenvectors = np.linalg.eigh(solver.kernel)
    eigenvalues = np.maximum(eigenvalues, 0.0)
    projected = eigenvectors.T @ solver.centered_target
    num_samples = projected.shape[0]

    out = np.empty(len(etas))
    for i, eta in enumerate(etas):
        shifted = eigenvalues + eta
        tau_sq = float(np.sum(projected**2 / shifted)) / num_samples
        tau_sq = max(tau_sq, 1e-300)
        log_det = float(np.sum(np.log(shifted)))
        out[i] = (
            -0.5 * num_samples * (np.log(2.0 * np.pi * tau_sq) + 1.0)
            - 0.5 * log_det
        )
    return out


@dataclass
class EvidenceReport:
    """Outcome of an evidence-based prior/eta selection run."""

    prior: GaussianCoefficientPrior
    eta: float
    log_evidence: float
    per_prior_log_evidence: Dict[str, np.ndarray] = field(default_factory=dict)
    per_prior_grids: Dict[str, np.ndarray] = field(default_factory=dict)


def select_prior_and_eta_by_evidence(
    design: np.ndarray,
    target: np.ndarray,
    priors: Sequence[GaussianCoefficientPrior],
    eta_grids: Optional[Dict[str, Sequence[float]]] = None,
    missing_scale: Optional[float] = None,
) -> EvidenceReport:
    """Pick the (prior, eta) pair maximizing the marginal likelihood.

    Same call shape as
    :func:`repro.bmf.cross_validation.select_prior_and_eta`, so the two
    selection strategies are drop-in interchangeable.
    """
    if not priors:
        raise ValueError("at least one candidate prior is required")
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    num_samples = design.shape[0]

    report = EvidenceReport(prior=priors[0], eta=np.nan, log_evidence=-np.inf)
    for prior in priors:
        if eta_grids is not None and prior.name in eta_grids:
            grid = np.asarray(list(eta_grids[prior.name]), dtype=float)
        else:
            grid = default_eta_grid(prior, num_samples)
        solver = KernelMapSolver(design, target, prior, missing_scale)
        values = log_evidence(solver, grid)
        report.per_prior_log_evidence[prior.name] = values
        report.per_prior_grids[prior.name] = grid
        best = int(np.argmax(values))
        if values[best] > report.log_evidence:
            report.prior = prior
            report.eta = float(grid[best])
            report.log_evidence = float(values[best])
    return report
