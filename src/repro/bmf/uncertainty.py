"""Posterior uncertainty of the fused model.

MAP estimation (Section III-B) computes the posterior *mean* of the
late-stage coefficients; the same Gaussian posterior also carries a
covariance (eqs. 28 / 31) that quantifies how much each coefficient -- and
each prediction -- is still uncertain after observing the K late-stage
samples.  This module exposes both without ever forming the M x M
covariance, using the same dual/kernel identities as the fast solver:

* coefficient variances: diagonal of ``(eta diag(s^-2) + G^T G)^{-1} sigma_0^2``
  via the Woodbury diagonal identity;
* predictive variances at new points: the kernel-regression form
  ``sigma_0^2/eta * (k(x,x) - k(x,X)(eta I + K)^{-1} k(X,x))``.

These are the quantities a practitioner uses to decide whether the K
samples collected so far are *enough* -- see
:class:`repro.bmf.sequential.SequentialBmf`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..linalg import posterior_variance_diagonal, solve_spd
from .priors import GaussianCoefficientPrior

__all__ = ["coefficient_posterior_variance", "predictive_variance"]


def coefficient_posterior_variance(
    design: np.ndarray,
    prior: GaussianCoefficientPrior,
    eta: float,
    noise_variance: Optional[float] = None,
    missing_scale: Optional[float] = None,
) -> np.ndarray:
    """Marginal posterior variance of each late-stage coefficient.

    Parameters
    ----------
    design:
        Late-stage design matrix ``G`` of shape ``(K, M)``.
    prior:
        The coefficient prior used for the MAP fit.
    eta:
        The prior-strength hyper-parameter of the fit.
    noise_variance:
        Likelihood noise ``sigma_0^2``.  For the zero-mean prior
        ``eta = sigma_0^2`` exactly; if omitted, ``eta`` is used (which for
        the nonzero-mean prior rescales the variances by ``lambda^2``).
    missing_scale:
        Finite stand-in scale for missing-prior coefficients.

    Returns
    -------
    numpy.ndarray
        Posterior variances of shape ``(M,)``.  Pinned coefficients
        (``scale == 0``) have exactly zero variance.
    """
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    design = np.asarray(design, dtype=float)
    if design.shape[1] != prior.size:
        raise ValueError(
            f"design has {design.shape[1]} columns but the prior covers "
            f"{prior.size} coefficients"
        )
    if noise_variance is None:
        noise_variance = eta
    scale = prior.effective_scale(missing_scale)
    pinned = scale == 0.0  # repro: noqa[REP003] -- exact pinned-prior sentinel
    out = np.zeros(prior.size)
    if np.all(pinned):
        return out
    free = ~pinned
    inv_var = eta / scale[free] ** 2
    out[free] = noise_variance * posterior_variance_diagonal(
        inv_var, design[:, free], scale=1.0
    )
    return out


def predictive_variance(
    design_train: np.ndarray,
    design_eval: np.ndarray,
    prior: GaussianCoefficientPrior,
    eta: float,
    noise_variance: Optional[float] = None,
    missing_scale: Optional[float] = None,
    include_noise: bool = False,
) -> np.ndarray:
    """Posterior predictive variance of the model at new sample points.

    Computed in the dual form -- cost ``O(K^2 M + K^3)``, independent of
    how many evaluation points are requested (each costs ``O(K M)``).

    Parameters
    ----------
    design_train / design_eval:
        Design matrices of the training and evaluation points.
    prior / eta / noise_variance / missing_scale:
        As in :func:`coefficient_posterior_variance`.
    include_noise:
        Add ``sigma_0^2`` to every point (predict *observations* rather
        than the noise-free model value).

    Returns
    -------
    numpy.ndarray
        Variances of shape ``(design_eval.shape[0],)``.
    """
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    design_train = np.asarray(design_train, dtype=float)
    design_eval = np.asarray(design_eval, dtype=float)
    if noise_variance is None:
        noise_variance = eta
    scale_sq = prior.effective_scale(missing_scale) ** 2

    # Prior covariance of coefficients is (noise/eta) * diag(scale^2);
    # kernel k(x, y) = g(x)^T diag(scale^2) g(y) carries the shape.
    scaled_eval = design_eval * scale_sq  # (E, M)
    prior_var = np.einsum("em,em->e", scaled_eval, design_eval)
    cross = scaled_eval @ design_train.T  # (E, K)
    kernel = (design_train * scale_sq) @ design_train.T
    system = kernel.copy()
    system[np.diag_indices_from(system)] += eta
    solved = solve_spd(system, cross.T)  # (K, E)
    reduction = np.einsum("ek,ke->e", cross, solved)
    variance = (noise_variance / eta) * np.maximum(prior_var - reduction, 0.0)
    if include_noise:
        variance = variance + noise_variance
    return variance
