"""Hyper-parameter and prior selection by N-fold cross-validation (§IV-D).

The modeling error of a candidate (prior, eta) pair is estimated by
partitioning the late-stage samples into N non-overlapping folds, fitting on
N-1 of them and measuring the relative error (eq. 59) on the held-out fold,
then averaging over folds.  BMF-PS picks the (prior, eta) pair with minimal
cross-validation error -- this is what lets it track the better of
BMF-ZM/BMF-NZM in every experiment of Section V.

The sweep is made cheap by the dual-form solver: the fold kernels are
submatrices of one precomputed K x K kernel, so evaluating a whole eta grid
across all folds costs ``O(K^2 M)`` once plus ``O(N * len(grid) * K^3)``
small solves (see :class:`repro.bmf.map_estimation.KernelMapSolver`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..runtime.metrics import metrics as runtime_metrics
from .map_estimation import KernelMapSolver
from .priors import GaussianCoefficientPrior

__all__ = [
    "CrossValidationReport",
    "default_eta_grid",
    "cross_validate_eta",
    "select_prior_and_eta",
    "select_prior_and_eta_from_solvers",
]


def default_eta_grid(
    prior: GaussianCoefficientPrior,
    num_samples: int,
    num_points: int = 13,
    decades_below: float = 5.0,
    decades_above: float = 3.0,
) -> np.ndarray:
    """Geometric eta grid centered on the natural problem scale.

    The prior term ``eta * s_m^{-2}`` competes with the Gram diagonal
    ``(G^T G)_{mm} ~= K`` (the basis is orthonormal in distribution), so the
    interesting regime is ``eta ~ K * s^2``.  The grid spans several decades
    around ``K * median(s^2)`` to cover strongly- and weakly-weighted priors.
    """
    finite = prior.scale[np.isfinite(prior.scale) & (prior.scale > 0)]
    reference_scale_sq = float(np.median(finite**2)) if finite.size else 1.0
    reference = max(num_samples, 1) * reference_scale_sq
    return np.geomspace(
        reference * 10.0**-decades_below,
        reference * 10.0**decades_above,
        num_points,
    )


@dataclass
class CrossValidationReport:
    """Outcome of a prior/eta selection run.

    Attributes
    ----------
    prior:
        The winning prior object.
    eta:
        The winning hyper-parameter value.
    error:
        Mean cross-validation relative error of the winner.
    per_prior_errors:
        For each candidate prior name, the CV error curve over its eta grid.
    per_prior_grids:
        The eta grid evaluated for each candidate prior.
    """

    prior: GaussianCoefficientPrior
    eta: float
    error: float
    per_prior_errors: Dict[str, np.ndarray] = field(default_factory=dict)
    per_prior_grids: Dict[str, np.ndarray] = field(default_factory=dict)


def _fold_masks(num_samples: int, n_folds: int):
    """Deterministic interleaved fold assignment (samples are i.i.d. anyway)."""
    fold_ids = np.arange(num_samples) % n_folds
    for fold in range(n_folds):
        yield np.flatnonzero(fold_ids != fold), np.flatnonzero(fold_ids == fold)


def cross_validate_eta(
    solver: KernelMapSolver,
    etas: Sequence[float],
    n_folds: int = 5,
) -> np.ndarray:
    """Mean relative validation error for each eta in the grid.

    Parameters
    ----------
    solver:
        A :class:`KernelMapSolver` built on the *training* data.
    etas:
        Candidate hyper-parameter values (all positive).
    n_folds:
        Number of cross-validation folds (``N`` in Section IV-D).

    Returns
    -------
    numpy.ndarray
        ``errors[i]`` is the N-fold mean of eq. (59) for ``etas[i]``.
    """
    etas = np.asarray(list(etas), dtype=float)
    if np.any(etas <= 0):
        raise ValueError("all eta values must be positive")
    num_samples = solver.target.shape[0]
    if n_folds < 2 or n_folds > num_samples:
        raise ValueError(
            f"n_folds must be in [2, {num_samples}], got {n_folds}"
        )
    errors = np.zeros(len(etas))
    with runtime_metrics.timer("bmf.cross_validation"):
        for train_rows, val_rows in _fold_masks(num_samples, n_folds):
            actual = solver.target[val_rows]
            norm = float(np.linalg.norm(actual))
            scale = norm if norm > 0 else 1.0
            for i, eta in enumerate(etas):
                predicted = solver.predict_submatrix(train_rows, val_rows, eta)
                errors[i] += float(np.linalg.norm(predicted - actual)) / scale
    runtime_metrics.increment("bmf.cv_evaluations", n_folds * len(etas))
    return errors / n_folds


def select_prior_and_eta(
    design: np.ndarray,
    target: np.ndarray,
    priors: Sequence[GaussianCoefficientPrior],
    eta_grids: Optional[Dict[str, Sequence[float]]] = None,
    n_folds: int = 5,
    missing_scale: Optional[float] = None,
) -> CrossValidationReport:
    """Pick the best (prior, eta) pair by N-fold cross-validation.

    This is the full BMF-PS selection step: it evaluates every candidate
    prior with its own eta grid and returns the minimizer together with the
    full error surfaces (useful for the hyper-parameter ablation bench).
    """
    if not priors:
        raise ValueError("at least one candidate prior is required")
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    solvers = [
        KernelMapSolver(design, target, prior, missing_scale) for prior in priors
    ]
    return select_prior_and_eta_from_solvers(solvers, eta_grids, n_folds)


def select_prior_and_eta_from_solvers(
    solvers: Sequence[KernelMapSolver],
    eta_grids: Optional[Dict[str, Sequence[float]]] = None,
    n_folds: int = 5,
) -> CrossValidationReport:
    """Prior/eta selection over *prebuilt* kernel solvers.

    Identical selection semantics to :func:`select_prior_and_eta` (same
    candidate order, same default grids, same fold layout), but the caller
    supplies the :class:`~repro.bmf.map_estimation.KernelMapSolver` per
    candidate prior.  This is the streaming entry point: a sequential fit
    keeps one solver per candidate and *extends* it with each new batch of
    samples (``O(K * Delta-K * M)``), so re-running the full selection does
    not pay the ``O(K^2 M)`` kernel rebuild.
    """
    if not solvers:
        raise ValueError("at least one solver is required")
    num_samples = solvers[0].target.shape[0]
    report = CrossValidationReport(prior=solvers[0].prior, eta=np.nan, error=np.inf)
    for solver in solvers:
        prior = solver.prior
        if eta_grids is not None and prior.name in eta_grids:
            grid = np.asarray(list(eta_grids[prior.name]), dtype=float)
        else:
            grid = default_eta_grid(prior, num_samples)
        errors = cross_validate_eta(solver, grid, n_folds)
        report.per_prior_errors[prior.name] = errors
        report.per_prior_grids[prior.name] = grid
        best = int(np.argmin(errors))
        if errors[best] < report.error:
            report.prior = prior
            report.eta = float(grid[best])
            report.error = float(errors[best])
    return report
