"""Prior distributions on late-stage model coefficients (Section III-A).

A BMF prior is a per-coefficient independent Gaussian

    alpha_L,m ~ N(mean_m, t^2 * scale_m^2)

where ``t`` is the scalar hyper-parameter left to cross-validation
(``sigma_0`` for the zero-mean prior, ``lambda`` for the nonzero-mean one --
both enter the MAP equations only through ``eta``, see
:mod:`repro.bmf.map_estimation`).  The two priors of the paper are:

* zero-mean (eq. 12, 16, 17):  ``mean = 0``, ``scale_m = |alpha_E,m|``;
* nonzero-mean (eq. 19, 20):   ``mean = alpha_E``, ``scale_m = |alpha_E,m|``.

Missing prior knowledge (Section IV-B) is encoded by ``scale_m = inf``
(an uninformative prior); a ``scale_m = 0`` pins the coefficient exactly to
its prior mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = [
    "GaussianCoefficientPrior",
    "zero_mean_prior",
    "nonzero_mean_prior",
    "uninformative_prior",
]


@dataclass(frozen=True)
class GaussianCoefficientPrior:
    """Independent Gaussian prior ``alpha_m ~ N(mean_m, t^2 scale_m^2)``.

    Attributes
    ----------
    mean:
        Prior means, shape ``(M,)``.
    scale:
        Non-negative relative standard deviations, shape ``(M,)``.
        ``inf`` marks a coefficient with missing prior knowledge; ``0`` pins
        the coefficient to its mean.
    name:
        Human-readable tag (``"zero-mean"`` / ``"nonzero-mean"`` / ...).
    """

    mean: np.ndarray
    scale: np.ndarray
    name: str = "custom"

    def __post_init__(self):
        mean = np.asarray(self.mean, dtype=float)
        scale = np.asarray(self.scale, dtype=float)
        if mean.ndim != 1 or scale.shape != mean.shape:
            raise ValueError(
                f"mean and scale must be 1-D and matching, got {mean.shape} "
                f"and {scale.shape}"
            )
        if np.any(scale < 0) or np.any(np.isnan(scale)):
            raise ValueError("prior scales must be non-negative (inf allowed)")
        if np.any(~np.isfinite(mean)):
            raise ValueError("prior means must be finite")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "scale", scale)

    @property
    def size(self) -> int:
        """Number of coefficients ``M``."""
        return self.mean.shape[0]

    def missing_mask(self) -> np.ndarray:
        """Boolean mask of coefficients with missing (infinite-scale) prior."""
        return np.isinf(self.scale)

    def pinned_mask(self) -> np.ndarray:
        """Boolean mask of coefficients pinned exactly to their prior mean."""
        # Exact zero is the pinned-coefficient sentinel, never a computed
        # quantity, so literal equality is the correct test here.
        return self.scale == 0.0  # repro: noqa[REP003]

    def with_missing(self, indices: Iterable[int]) -> "GaussianCoefficientPrior":
        """Return a copy with the given coefficients marked prior-free.

        This implements Section IV-B: late-stage basis functions (e.g. for
        layout-parasitic variables) for which the early-stage model carries
        no information get ``scale = inf`` and ``mean = 0``.
        """
        mean = self.mean.copy()
        scale = self.scale.copy()
        for index in indices:
            mean[index] = 0.0
            scale[index] = np.inf
        return GaussianCoefficientPrior(mean, scale, self.name)

    def extended(self, extra_terms: int) -> "GaussianCoefficientPrior":
        """Append ``extra_terms`` prior-free coefficients at the end.

        Convenience for the common missing-prior layout where all new
        late-stage basis functions are appended after the shared ones.
        """
        if extra_terms < 0:
            raise ValueError(f"extra_terms must be non-negative, got {extra_terms}")
        mean = np.concatenate([self.mean, np.zeros(extra_terms)])
        scale = np.concatenate([self.scale, np.full(extra_terms, np.inf)])
        return GaussianCoefficientPrior(mean, scale, self.name)

    def resolve_missing_scale(
        self, missing_scale: Optional[float] = None
    ) -> Optional[float]:
        """Concrete stand-in scale for the ``inf`` (prior-free) entries.

        Returns ``None`` when the prior has no missing entries (nothing to
        substitute).  Otherwise returns ``missing_scale`` itself when given,
        else the default: ``1e3`` times the largest finite nonzero scale
        (or ``1e3`` when every scale is zero or missing).

        Solvers should resolve this **once** at their entry point and thread
        the concrete value everywhere -- re-deriving the default on a
        sub-problem (e.g. after dropping pinned coefficients) could pick a
        different reference scale and silently disagree with the full
        problem.
        """
        missing = np.isinf(self.scale)
        if not np.any(missing):
            return None
        if missing_scale is not None:
            return float(missing_scale)
        finite = self.scale[~missing & (self.scale > 0)]
        reference = float(finite.max()) if finite.size else 1.0
        return 1e3 * reference

    def effective_scale(self, missing_scale: Optional[float] = None) -> np.ndarray:
        """Scales with ``inf`` entries replaced by a large finite value.

        The fast (Woodbury / kernel) solver needs finite prior variances.
        The paper handles ``sigma = inf`` by noting only ``sigma^{-1}`` enters
        the direct M x M equations; we instead use a very wide but proper
        prior -- ``missing_scale`` defaulting per
        :meth:`resolve_missing_scale` -- which is numerically equivalent for
        prediction and keeps the posterior proper even when the number of
        prior-free coefficients exceeds the sample count.  (Substitution
        documented in DESIGN.md.)
        """
        resolved = self.resolve_missing_scale(missing_scale)
        if resolved is None:
            return self.scale
        out = self.scale.copy()
        out[np.isinf(self.scale)] = resolved
        return out


def zero_mean_prior(alpha_early: np.ndarray) -> GaussianCoefficientPrior:
    """Zero-mean prior of eqs. (12)-(17): ``alpha_L,m ~ N(0, sigma_m^2)``.

    The maximum-likelihood choice of the standard deviation (eq. 16) is
    ``sigma_m = |alpha_E,m|``; the early-stage coefficients thus fix the
    per-coefficient *magnitude* profile while the overall prior strength is
    tuned through the hyper-parameter in the MAP step.
    """
    alpha_early = np.asarray(alpha_early, dtype=float)
    return GaussianCoefficientPrior(
        mean=np.zeros_like(alpha_early),
        scale=np.abs(alpha_early),
        name="zero-mean",
    )


def nonzero_mean_prior(alpha_early: np.ndarray) -> GaussianCoefficientPrior:
    """Nonzero-mean prior of eqs. (19)-(20).

    ``alpha_L,m ~ N(alpha_E,m, lambda^2 alpha_E,m^2)`` -- encodes both sign
    and magnitude of the early-stage coefficients; ``lambda`` enters the MAP
    equations only through ``eta = sigma_0^2 / lambda^2``.
    """
    alpha_early = np.asarray(alpha_early, dtype=float)
    return GaussianCoefficientPrior(
        mean=alpha_early.copy(),
        scale=np.abs(alpha_early),
        name="nonzero-mean",
    )


def uninformative_prior(num_terms: int) -> GaussianCoefficientPrior:
    """A fully prior-free model (every coefficient has missing knowledge).

    BMF with this prior reduces to (weakly regularized) least squares; used
    in tests and ablations as the "no early-stage data" control.
    """
    return GaussianCoefficientPrior(
        mean=np.zeros(num_terms),
        scale=np.full(num_terms, np.inf),
        name="uninformative",
    )
