"""Prior mapping for multifinger devices (Section IV-A).

After layout, a schematic device is drawn with ``W`` fingers and each finger
gets its own mismatch random variable.  A schematic basis function
``g_m(x)`` therefore maps to a *set* of ``T_m`` post-layout basis functions
``{g_{m,t}(x*)}`` over the finger variables, and the schematic coefficient
must be distributed over them.  Matching performance variability (eq. 45-46)
under the paper's equal-impact and permutation-invariance assumptions
(eqs. 47-49) gives the equal split

    beta_{E,m,t} = alpha_{E,m} / sqrt(T_m).

For a degree-``d`` factor in a variable with ``W`` fingers, the mapped set
consists of all finger-degree assignments summing to ``d`` (so ``W`` terms
for a linear factor, ``W (W + 1) / 2`` for a quadratic one, ...); mapped
sets of distinct factors combine as Cartesian products.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Tuple

import math

import numpy as np

from ..basis import MultiIndex, OrthonormalBasis

__all__ = ["FingerMap", "PriorMapping", "map_prior_coefficients"]


@dataclass(frozen=True)
class FingerMap:
    """Mapping from schematic variables to post-layout finger variables.

    Parameters
    ----------
    finger_counts:
        ``finger_counts[r]`` is the number of fingers ``W_r`` of schematic
        variable ``r``; a count of 1 means the variable is unchanged.
    """

    finger_counts: Tuple[int, ...]

    def __post_init__(self):
        counts = tuple(int(w) for w in self.finger_counts)
        if any(w < 1 for w in counts):
            raise ValueError(f"finger counts must be >= 1, got {counts}")
        object.__setattr__(self, "finger_counts", counts)

    @property
    def num_early_vars(self) -> int:
        return len(self.finger_counts)

    @property
    def num_late_vars(self) -> int:
        return sum(self.finger_counts)

    def offsets(self) -> np.ndarray:
        """Start index of each variable's finger block in the late space."""
        return np.concatenate(([0], np.cumsum(self.finger_counts)[:-1]))

    def fingers_of(self, var: int) -> range:
        """Late-stage variable indices of schematic variable ``var``."""
        offset = int(self.offsets()[var])
        return range(offset, offset + self.finger_counts[var])

    def project_samples(self, late_samples: np.ndarray) -> np.ndarray:
        """Collapse late finger samples back to schematic variables.

        Each schematic variable is the normalized sum of its fingers
        ``x_r = sum_t x_{r,t} / sqrt(W_r)``, which keeps it standard normal;
        useful for evaluating a schematic model at post-layout sample points
        in tests and examples.
        """
        late_samples = np.asarray(late_samples, dtype=float)
        if late_samples.ndim == 1:
            late_samples = late_samples[np.newaxis, :]
        if late_samples.shape[1] != self.num_late_vars:
            raise ValueError(
                f"expected {self.num_late_vars} late variables, "
                f"got {late_samples.shape[1]}"
            )
        out = np.empty((late_samples.shape[0], self.num_early_vars))
        for var, offset in enumerate(self.offsets()):
            count = self.finger_counts[var]
            block = late_samples[:, offset : offset + count]
            out[:, var] = block.sum(axis=1) / math.sqrt(count)
        return out


@dataclass
class PriorMapping:
    """Result of mapping an early-stage model into the finger space.

    Attributes
    ----------
    late_basis:
        Orthonormal basis over the post-layout finger variables containing
        all mapped basis functions, in early-function-major order.
    beta:
        Mapped coefficients ``beta_{E,m,t} = alpha_{E,m} / sqrt(T_m)``
        aligned with ``late_basis.indices``.
    groups:
        ``groups[m]`` lists the positions in ``late_basis`` of the functions
        mapped from early basis function ``m``.
    """

    late_basis: OrthonormalBasis
    beta: np.ndarray
    groups: List[List[int]]


def _weak_compositions(total: int, parts: int):
    """Yield all assignments of ``total`` into ``parts`` non-negative ints."""
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _weak_compositions(total - first, parts - 1):
            yield (first,) + rest


def _mapped_factor(var: int, degree: int, fmap: FingerMap) -> List[MultiIndex]:
    """All late multi-index fragments a single ``(var, degree)`` factor maps to."""
    fingers = list(fmap.fingers_of(var))
    fragments: List[MultiIndex] = []
    for degrees in _weak_compositions(degree, len(fingers)):
        fragment = tuple(
            (finger, d) for finger, d in zip(fingers, degrees) if d > 0
        )
        fragments.append(fragment)
    return fragments


def map_prior_coefficients(
    early_basis: OrthonormalBasis,
    alpha_early: np.ndarray,
    finger_map: FingerMap,
) -> PriorMapping:
    """Map a schematic model onto the post-layout finger basis (eq. 49).

    Parameters
    ----------
    early_basis:
        The schematic-stage basis (any orthonormal polynomial basis).
    alpha_early:
        Schematic coefficients ``alpha_E`` aligned with ``early_basis``.
    finger_map:
        Finger multiplicities of every schematic variable.

    Returns
    -------
    PriorMapping
        Late basis, mapped coefficients ``beta`` (ready to feed to
        :func:`repro.bmf.priors.zero_mean_prior` or
        :func:`~repro.bmf.priors.nonzero_mean_prior`), and the early-to-late
        index groups.
    """
    alpha_early = np.asarray(alpha_early, dtype=float)
    if alpha_early.shape != (early_basis.size,):
        raise ValueError(
            f"expected {early_basis.size} early coefficients, "
            f"got shape {alpha_early.shape}"
        )
    if finger_map.num_early_vars != early_basis.num_vars:
        raise ValueError(
            f"finger map covers {finger_map.num_early_vars} variables but "
            f"the basis has {early_basis.num_vars}"
        )

    late_indices: List[MultiIndex] = []
    beta_values: List[float] = []
    groups: List[List[int]] = []
    seen = {}

    for m, early_index in enumerate(early_basis.indices):
        if not early_index:
            mapped = [()]  # the constant maps to itself
        else:
            factor_sets = [
                _mapped_factor(var, degree, finger_map)
                for var, degree in early_index
            ]
            mapped = [
                tuple(sorted(sum(combo, ())))
                for combo in product(*factor_sets)
            ]
        multiplicity = len(mapped)
        split = alpha_early[m] / math.sqrt(multiplicity)
        group: List[int] = []
        for late_index in mapped:
            if late_index in seen:
                raise ValueError(
                    f"early basis functions map to overlapping late function "
                    f"{late_index}; the early basis is not finger-separable"
                )
            seen[late_index] = len(late_indices)
            group.append(len(late_indices))
            late_indices.append(late_index)
            beta_values.append(split)
        groups.append(group)

    late_basis = OrthonormalBasis(finger_map.num_late_vars, late_indices)
    return PriorMapping(late_basis, np.array(beta_values), groups)
