"""Error-vs-sample-count table runner (Tables I, II, III, V of the paper).

One table sweeps the number of post-layout training samples ``K`` and
reports the relative modeling error (eq. 59, on an independent 300-sample
test set) of four methods:

* ``OMP``      -- sparse regression on the late-stage data alone [13];
* ``BMF-ZM``   -- BMF with the zero-mean prior;
* ``BMF-NZM``  -- BMF with the nonzero-mean prior;
* ``BMF-PS``   -- BMF with cross-validated prior selection.

Errors are averaged over ``repeats`` independent train/test draws, as in
the paper's 50-run averages.  The early-stage model is fitted once per
table from schematic Monte Carlo data (OMP on 3000 samples by default,
matching Section V).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..bmf import BmfRegressor
from ..circuits.base import Stage, Testbench
from ..circuits.modeling import FusionProblem
from ..montecarlo import simulate_dataset
from ..regression import OrthogonalMatchingPursuit, relative_error

__all__ = ["ErrorTable", "run_error_table", "METHODS"]

METHODS = ("OMP", "BMF-ZM", "BMF-NZM", "BMF-PS")


@dataclass
class ErrorTable:
    """Result of one error-vs-samples sweep.

    Attributes
    ----------
    testbench_name / metric:
        What was modeled.
    sample_counts:
        The ``K`` values swept (paper: 100 .. 900).
    errors:
        Method name -> mean relative error per ``K``, shape ``(len(counts),)``.
    stds:
        Method name -> standard deviation over repeats.
    fit_seconds:
        Method name -> mean fitting wall-clock per ``K``.
    repeats:
        Number of independent train/test draws averaged.
    """

    testbench_name: str
    metric: str
    sample_counts: Tuple[int, ...]
    errors: Dict[str, np.ndarray]
    stds: Dict[str, np.ndarray]
    fit_seconds: Dict[str, np.ndarray]
    repeats: int
    early_error: float = float("nan")

    def format(self, percent: bool = True) -> str:
        """Render the table in the paper's layout."""
        methods = list(self.errors)
        header = ["Number of samples"] + methods
        widths = [max(len(header[0]), 6)] + [max(len(m), 8) for m in methods]
        lines = [
            f"Relative modeling error ({'%' if percent else 'fraction'}) of "
            f"{self.metric} for {self.testbench_name} "
            f"(mean of {self.repeats} runs)"
        ]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(header, widths))
        )
        lines.append("-+-".join("-" * w for w in widths))
        scale = 100.0 if percent else 1.0
        for i, count in enumerate(self.sample_counts):
            cells = [str(count).ljust(widths[0])]
            for m, w in zip(methods, widths[1:]):
                cells.append(f"{self.errors[m][i] * scale:.4f}".ljust(w))
            lines.append(" | ".join(cells))
        return "\n".join(lines)

    def best_method_at(self, sample_count: int) -> str:
        """Lowest-error method at a given ``K``."""
        i = self.sample_counts.index(sample_count)
        return min(self.errors, key=lambda m: self.errors[m][i])

    def to_csv(self) -> str:
        """CSV rendering (fractional errors) for downstream plotting."""
        methods = list(self.errors)
        lines = ["samples," + ",".join(methods)]
        for i, count in enumerate(self.sample_counts):
            cells = [str(count)] + [
                f"{self.errors[m][i]:.6e}" for m in methods
            ]
            lines.append(",".join(cells))
        return "\n".join(lines)


def run_error_table(
    testbench: Testbench,
    metric: str,
    sample_counts: Sequence[int] = (100, 200, 300, 400, 500, 600, 700, 800, 900),
    repeats: int = 3,
    rng: Optional[np.random.Generator] = None,
    test_size: int = 300,
    early_samples: int = 3000,
    early_method: str = "omp",
    early_max_terms: Optional[int] = None,
    methods: Sequence[str] = METHODS,
    omp_max_terms: Optional[int] = None,
    n_folds: int = 5,
    alpha_early: Optional[np.ndarray] = None,
) -> ErrorTable:
    """Run one Table-I-style sweep.

    Parameters mirror Section V's setup; see the module docstring.  The
    BMF-PS column reuses the BMF-ZM / BMF-NZM cross-validation results
    (prior selection *is* picking the better CV error of the two, so no
    third fit is needed), which keeps the sweep affordable.
    """
    for method in methods:
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; known: {METHODS}")
    if rng is None:
        rng = np.random.default_rng(0)
    sample_counts = tuple(int(k) for k in sample_counts)
    max_count = max(sample_counts)

    problem = FusionProblem(testbench, metric)
    if alpha_early is None:
        alpha_early = problem.fit_early_model(
            early_samples, rng, method=early_method, max_terms=early_max_terms
        )
    aligned = problem.align_early_coefficients(alpha_early)
    missing = problem.missing_indices()
    late_basis = problem.late_basis

    per_run: Dict[str, list] = {m: [] for m in methods}
    per_run_time: Dict[str, list] = {m: [] for m in methods}
    early_errors = []

    for _run in range(repeats):
        pool = simulate_dataset(
            testbench, Stage.POST_LAYOUT, max_count, rng, [metric]
        )
        test = simulate_dataset(
            testbench, Stage.POST_LAYOUT, test_size, rng, [metric]
        )
        design_pool = late_basis.design_matrix(pool.x)
        design_test = late_basis.design_matrix(test.x)
        target_pool = pool.metric(metric)
        target_test = test.metric(metric)
        early_errors.append(
            relative_error(design_test[:, : len(aligned)] @ aligned, target_test)
        )

        run_errors = {m: np.empty(len(sample_counts)) for m in methods}
        run_times = {m: np.empty(len(sample_counts)) for m in methods}
        for i, count in enumerate(sample_counts):
            design = design_pool[:count]
            target = target_pool[:count]
            results = _fit_all(
                methods,
                design,
                target,
                late_basis,
                aligned,
                missing,
                omp_max_terms,
                n_folds,
            )
            for m in methods:
                coefficients, elapsed = results[m]
                prediction = design_test @ coefficients
                run_errors[m][i] = relative_error(prediction, target_test)
                run_times[m][i] = elapsed
        for m in methods:
            per_run[m].append(run_errors[m])
            per_run_time[m].append(run_times[m])

    errors = {m: np.mean(per_run[m], axis=0) for m in methods}
    stds = {m: np.std(per_run[m], axis=0) for m in methods}
    fit_seconds = {m: np.mean(per_run_time[m], axis=0) for m in methods}
    return ErrorTable(
        testbench.name,
        metric,
        sample_counts,
        errors,
        stds,
        fit_seconds,
        repeats,
        early_error=float(np.mean(early_errors)),
    )


def _fit_all(
    methods,
    design,
    target,
    late_basis,
    aligned,
    missing,
    omp_max_terms,
    n_folds,
) -> Dict[str, Tuple[np.ndarray, float]]:
    """Fit every requested method on one (design, target) pair."""
    results: Dict[str, Tuple[np.ndarray, float]] = {}

    if "OMP" in methods:
        start = time.perf_counter()
        omp = OrthogonalMatchingPursuit(late_basis, max_terms=omp_max_terms)
        coefficients = omp.fit_design(design, target)
        results["OMP"] = (coefficients, time.perf_counter() - start)

    bmf_variants = {}
    for method, kind in (("BMF-ZM", "zero-mean"), ("BMF-NZM", "nonzero-mean")):
        wanted = method in methods or "BMF-PS" in methods
        if not wanted:
            continue
        start = time.perf_counter()
        regressor = BmfRegressor(
            late_basis,
            aligned,
            prior_kind=kind,
            missing_indices=missing,
            n_folds=n_folds,
        )
        coefficients = regressor.fit_design(design, target)
        elapsed = time.perf_counter() - start
        bmf_variants[method] = (coefficients, elapsed, regressor.cv_report_.error)
        if method in methods:
            results[method] = (coefficients, elapsed)

    if "BMF-PS" in methods:
        # Prior selection: the winner of the two cross-validation errors.
        winner = min(bmf_variants.values(), key=lambda item: item[2])
        # PS pays both CV sweeps; its fitting time is the sum.
        total_time = sum(item[1] for item in bmf_variants.values())
        results["BMF-PS"] = (winner[0], total_time)
    return results
