"""Experiment harness: per-table/figure runners and cost accounting."""

from .config import (
    early_samples,
    make_ring_oscillator,
    make_sram,
    repeats,
    scale,
    table_sample_counts,
)
from .cost import RO_COST_MODEL, SRAM_COST_MODEL, CostReport, SimulationCostModel
from .figures import (
    FittingCostCurve,
    Histogram,
    metric_histogram,
    run_fitting_cost,
    solver_speedup,
)
from .runners import (
    ChaosStreamReport,
    CostComparison,
    CrashRecoveryReport,
    RollingRestartReport,
    ServingStreamReport,
    run_chaos_stream,
    run_cost_comparison,
    run_crash_recovery_stream,
    run_rolling_restart_drill,
    run_serving_stream,
)
from .tables import METHODS, ErrorTable, run_error_table

__all__ = [
    "METHODS",
    "RO_COST_MODEL",
    "SRAM_COST_MODEL",
    "ChaosStreamReport",
    "CostComparison",
    "CostReport",
    "CrashRecoveryReport",
    "RollingRestartReport",
    "ErrorTable",
    "FittingCostCurve",
    "ServingStreamReport",
    "Histogram",
    "SimulationCostModel",
    "early_samples",
    "make_ring_oscillator",
    "make_sram",
    "metric_histogram",
    "repeats",
    "run_chaos_stream",
    "run_cost_comparison",
    "run_crash_recovery_stream",
    "run_rolling_restart_drill",
    "run_error_table",
    "run_fitting_cost",
    "run_serving_stream",
    "scale",
    "solver_speedup",
    "table_sample_counts",
]
