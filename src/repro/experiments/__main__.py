"""Command-line regeneration of the paper's tables and figures.

Usage::

    python -m repro.experiments table1          # RO power error table
    python -m repro.experiments table5 --repeats 5
    python -m repro.experiments fig4            # RO histograms
    python -m repro.experiments all             # everything (slow)

Equivalent to the pytest benchmarks but without the benchmarking harness;
respects the same ``REPRO_SCALE`` / ``REPRO_REPEATS`` environment knobs
unless overridden by flags.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

import numpy as np

from .config import (
    make_ring_oscillator,
    make_sram,
    repeats,
    scale,
    table_sample_counts,
)
from .cost import RO_COST_MODEL, SRAM_COST_MODEL
from .figures import metric_histogram, run_fitting_cost
from .runners import run_cost_comparison
from .tables import run_error_table


def _error_table(testbench_factory, metric: str, seed: int, args) -> str:
    testbench = testbench_factory()
    table = run_error_table(
        testbench,
        metric,
        sample_counts=table_sample_counts(),
        repeats=args.repeats,
        rng=np.random.default_rng(seed),
        omp_max_terms=300,
        early_max_terms=300,
    )
    return table.format()

def _table1(args):
    return _error_table(make_ring_oscillator, "power", 101, args)


def _table2(args):
    return _error_table(make_ring_oscillator, "phase_noise", 102, args)


def _table3(args):
    return _error_table(make_ring_oscillator, "frequency", 103, args)


def _table4(args):
    comparison = run_cost_comparison(
        make_ring_oscillator(),
        ("power", "phase_noise", "frequency"),
        RO_COST_MODEL,
        baseline_samples=900,
        fused_samples=100,
        rng=np.random.default_rng(104),
        omp_max_terms=300,
    )
    return comparison.format()


def _table5(args):
    return _error_table(make_sram, "read_delay", 105, args)


def _table6(args):
    comparison = run_cost_comparison(
        make_sram(),
        ("read_delay",),
        SRAM_COST_MODEL,
        baseline_samples=400,
        fused_samples=100,
        rng=np.random.default_rng(106),
        omp_max_terms=400,
    )
    return comparison.format()


def _fig4(args):
    testbench = make_ring_oscillator()
    rng = np.random.default_rng(107)
    parts = [
        metric_histogram(testbench, metric, 3000, rng).format()
        for metric in testbench.metrics
    ]
    return "\n\n".join(parts)


def _fig5(args):
    curve = run_fitting_cost(
        make_ring_oscillator(),
        "frequency",
        rng=np.random.default_rng(109),
        include_conventional=scale() in ("small", "medium"),
        omp_max_terms=300,
    )
    return curve.format()


def _fig7(args):
    return metric_histogram(
        make_sram(), "read_delay", 3000, np.random.default_rng(108)
    ).format()


def _fig8(args):
    curve = run_fitting_cost(
        make_sram(),
        "read_delay",
        rng=np.random.default_rng(111),
        include_conventional=False,
        omp_max_terms=300,
    )
    return curve.format()


EXPERIMENTS: Dict[str, Callable] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig7": _fig7,
    "fig8": _fig8,
}


def _report(args) -> str:
    """Concatenate every saved benchmark result into one report."""
    import pathlib

    # __main__.py lives at <repo>/src/repro/experiments/; parents[3] = <repo>.
    results = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    if not results.is_dir():
        # Fall back to the working directory layout.
        results = pathlib.Path("benchmarks/results")
    if not results.is_dir():
        return (
            "no saved results found; run `pytest benchmarks/ "
            "--benchmark-only` first"
        )
    parts = []
    for path in sorted(results.glob("*.txt")):
        parts.append(f"### {path.stem}\n\n{path.read_text().rstrip()}")
    return "\n\n".join(parts) if parts else f"no .txt results in {results}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report"],
        help="which table/figure to regenerate ('report' prints every "
        "saved benchmark result)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="repeated runs per error table (default: REPRO_REPEATS or 3)",
    )
    args = parser.parse_args(argv)
    if args.repeats is None:
        args.repeats = repeats()

    if args.experiment == "report":
        print(_report(args))
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} (scale={scale()}, repeats={args.repeats}) ===")
        print(EXPERIMENTS[name](args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
